/root/repo/target/release/deps/serde-70b50806c7ab19fd.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-70b50806c7ab19fd.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-70b50806c7ab19fd.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
