/root/repo/target/release/deps/topogen-5bc93ec70350da5c.d: src/bin/topogen.rs

/root/repo/target/release/deps/topogen-5bc93ec70350da5c: src/bin/topogen.rs

src/bin/topogen.rs:
