/root/repo/target/release/deps/topogen-a619d39331d3d676.d: src/lib.rs

/root/repo/target/release/deps/libtopogen-a619d39331d3d676.rlib: src/lib.rs

/root/repo/target/release/deps/libtopogen-a619d39331d3d676.rmeta: src/lib.rs

src/lib.rs:
