/root/repo/target/release/deps/topogen_linalg-825b8ea4201003b6.d: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs

/root/repo/target/release/deps/libtopogen_linalg-825b8ea4201003b6.rlib: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs

/root/repo/target/release/deps/libtopogen_linalg-825b8ea4201003b6.rmeta: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs

crates/linalg/src/lib.rs:
crates/linalg/src/dense.rs:
crates/linalg/src/lanczos.rs:
crates/linalg/src/sparse.rs:
