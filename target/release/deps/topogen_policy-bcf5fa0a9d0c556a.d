/root/repo/target/release/deps/topogen_policy-bcf5fa0a9d0c556a.d: crates/policy/src/lib.rs crates/policy/src/balls.rs crates/policy/src/bgp.rs crates/policy/src/bgp_sim.rs crates/policy/src/gao.rs crates/policy/src/overlay.rs crates/policy/src/rel.rs crates/policy/src/valley.rs

/root/repo/target/release/deps/libtopogen_policy-bcf5fa0a9d0c556a.rlib: crates/policy/src/lib.rs crates/policy/src/balls.rs crates/policy/src/bgp.rs crates/policy/src/bgp_sim.rs crates/policy/src/gao.rs crates/policy/src/overlay.rs crates/policy/src/rel.rs crates/policy/src/valley.rs

/root/repo/target/release/deps/libtopogen_policy-bcf5fa0a9d0c556a.rmeta: crates/policy/src/lib.rs crates/policy/src/balls.rs crates/policy/src/bgp.rs crates/policy/src/bgp_sim.rs crates/policy/src/gao.rs crates/policy/src/overlay.rs crates/policy/src/rel.rs crates/policy/src/valley.rs

crates/policy/src/lib.rs:
crates/policy/src/balls.rs:
crates/policy/src/bgp.rs:
crates/policy/src/bgp_sim.rs:
crates/policy/src/gao.rs:
crates/policy/src/overlay.rs:
crates/policy/src/rel.rs:
crates/policy/src/valley.rs:
