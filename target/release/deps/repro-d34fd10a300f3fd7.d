/root/repo/target/release/deps/repro-d34fd10a300f3fd7.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-d34fd10a300f3fd7: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
