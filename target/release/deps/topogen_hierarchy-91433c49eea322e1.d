/root/repo/target/release/deps/topogen_hierarchy-91433c49eea322e1.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/classify.rs crates/hierarchy/src/correlation.rs crates/hierarchy/src/cover.rs crates/hierarchy/src/dag.rs crates/hierarchy/src/linkvalue.rs crates/hierarchy/src/traversal.rs

/root/repo/target/release/deps/libtopogen_hierarchy-91433c49eea322e1.rlib: crates/hierarchy/src/lib.rs crates/hierarchy/src/classify.rs crates/hierarchy/src/correlation.rs crates/hierarchy/src/cover.rs crates/hierarchy/src/dag.rs crates/hierarchy/src/linkvalue.rs crates/hierarchy/src/traversal.rs

/root/repo/target/release/deps/libtopogen_hierarchy-91433c49eea322e1.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/classify.rs crates/hierarchy/src/correlation.rs crates/hierarchy/src/cover.rs crates/hierarchy/src/dag.rs crates/hierarchy/src/linkvalue.rs crates/hierarchy/src/traversal.rs

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/classify.rs:
crates/hierarchy/src/correlation.rs:
crates/hierarchy/src/cover.rs:
crates/hierarchy/src/dag.rs:
crates/hierarchy/src/linkvalue.rs:
crates/hierarchy/src/traversal.rs:
