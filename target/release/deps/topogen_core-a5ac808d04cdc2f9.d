/root/repo/target/release/deps/topogen_core-a5ac808d04cdc2f9.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/hier.rs crates/core/src/report.rs crates/core/src/suite.rs crates/core/src/zoo.rs

/root/repo/target/release/deps/libtopogen_core-a5ac808d04cdc2f9.rlib: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/hier.rs crates/core/src/report.rs crates/core/src/suite.rs crates/core/src/zoo.rs

/root/repo/target/release/deps/libtopogen_core-a5ac808d04cdc2f9.rmeta: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/hier.rs crates/core/src/report.rs crates/core/src/suite.rs crates/core/src/zoo.rs

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/hier.rs:
crates/core/src/report.rs:
crates/core/src/suite.rs:
crates/core/src/zoo.rs:
