/root/repo/target/release/deps/topogen_measured-fbbd968ef23c353f.d: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs

/root/repo/target/release/deps/libtopogen_measured-fbbd968ef23c353f.rlib: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs

/root/repo/target/release/deps/libtopogen_measured-fbbd968ef23c353f.rmeta: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs

crates/measured/src/lib.rs:
crates/measured/src/as_graph.rs:
crates/measured/src/observe.rs:
crates/measured/src/rl_graph.rs:
