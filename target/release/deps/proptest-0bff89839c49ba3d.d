/root/repo/target/release/deps/proptest-0bff89839c49ba3d.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0bff89839c49ba3d.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0bff89839c49ba3d.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
