/root/repo/target/release/deps/serde_json-39295d767ff69acf.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-39295d767ff69acf.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-39295d767ff69acf.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
