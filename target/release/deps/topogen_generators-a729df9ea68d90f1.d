/root/repo/target/release/deps/topogen_generators-a729df9ea68d90f1.d: crates/generators/src/lib.rs crates/generators/src/ba.rs crates/generators/src/brite.rs crates/generators/src/canonical.rs crates/generators/src/connectivity.rs crates/generators/src/degseq.rs crates/generators/src/flat.rs crates/generators/src/generate.rs crates/generators/src/glp.rs crates/generators/src/inet.rs crates/generators/src/nlevel.rs crates/generators/src/plrg.rs crates/generators/src/tiers.rs crates/generators/src/transit_stub.rs crates/generators/src/waxman.rs

/root/repo/target/release/deps/libtopogen_generators-a729df9ea68d90f1.rlib: crates/generators/src/lib.rs crates/generators/src/ba.rs crates/generators/src/brite.rs crates/generators/src/canonical.rs crates/generators/src/connectivity.rs crates/generators/src/degseq.rs crates/generators/src/flat.rs crates/generators/src/generate.rs crates/generators/src/glp.rs crates/generators/src/inet.rs crates/generators/src/nlevel.rs crates/generators/src/plrg.rs crates/generators/src/tiers.rs crates/generators/src/transit_stub.rs crates/generators/src/waxman.rs

/root/repo/target/release/deps/libtopogen_generators-a729df9ea68d90f1.rmeta: crates/generators/src/lib.rs crates/generators/src/ba.rs crates/generators/src/brite.rs crates/generators/src/canonical.rs crates/generators/src/connectivity.rs crates/generators/src/degseq.rs crates/generators/src/flat.rs crates/generators/src/generate.rs crates/generators/src/glp.rs crates/generators/src/inet.rs crates/generators/src/nlevel.rs crates/generators/src/plrg.rs crates/generators/src/tiers.rs crates/generators/src/transit_stub.rs crates/generators/src/waxman.rs

crates/generators/src/lib.rs:
crates/generators/src/ba.rs:
crates/generators/src/brite.rs:
crates/generators/src/canonical.rs:
crates/generators/src/connectivity.rs:
crates/generators/src/degseq.rs:
crates/generators/src/flat.rs:
crates/generators/src/generate.rs:
crates/generators/src/glp.rs:
crates/generators/src/inet.rs:
crates/generators/src/nlevel.rs:
crates/generators/src/plrg.rs:
crates/generators/src/tiers.rs:
crates/generators/src/transit_stub.rs:
crates/generators/src/waxman.rs:
