/root/repo/target/release/deps/topogen_metrics-57d9d00ade4e66e0.d: crates/metrics/src/lib.rs crates/metrics/src/balls.rs crates/metrics/src/bicon_metric.rs crates/metrics/src/clustering.rs crates/metrics/src/cover.rs crates/metrics/src/distortion.rs crates/metrics/src/eccentricity.rs crates/metrics/src/engine.rs crates/metrics/src/expansion.rs crates/metrics/src/extra.rs crates/metrics/src/instrument.rs crates/metrics/src/par.rs crates/metrics/src/partition.rs crates/metrics/src/resilience.rs crates/metrics/src/spectrum.rs crates/metrics/src/tolerance.rs

/root/repo/target/release/deps/libtopogen_metrics-57d9d00ade4e66e0.rlib: crates/metrics/src/lib.rs crates/metrics/src/balls.rs crates/metrics/src/bicon_metric.rs crates/metrics/src/clustering.rs crates/metrics/src/cover.rs crates/metrics/src/distortion.rs crates/metrics/src/eccentricity.rs crates/metrics/src/engine.rs crates/metrics/src/expansion.rs crates/metrics/src/extra.rs crates/metrics/src/instrument.rs crates/metrics/src/par.rs crates/metrics/src/partition.rs crates/metrics/src/resilience.rs crates/metrics/src/spectrum.rs crates/metrics/src/tolerance.rs

/root/repo/target/release/deps/libtopogen_metrics-57d9d00ade4e66e0.rmeta: crates/metrics/src/lib.rs crates/metrics/src/balls.rs crates/metrics/src/bicon_metric.rs crates/metrics/src/clustering.rs crates/metrics/src/cover.rs crates/metrics/src/distortion.rs crates/metrics/src/eccentricity.rs crates/metrics/src/engine.rs crates/metrics/src/expansion.rs crates/metrics/src/extra.rs crates/metrics/src/instrument.rs crates/metrics/src/par.rs crates/metrics/src/partition.rs crates/metrics/src/resilience.rs crates/metrics/src/spectrum.rs crates/metrics/src/tolerance.rs

crates/metrics/src/lib.rs:
crates/metrics/src/balls.rs:
crates/metrics/src/bicon_metric.rs:
crates/metrics/src/clustering.rs:
crates/metrics/src/cover.rs:
crates/metrics/src/distortion.rs:
crates/metrics/src/eccentricity.rs:
crates/metrics/src/engine.rs:
crates/metrics/src/expansion.rs:
crates/metrics/src/extra.rs:
crates/metrics/src/instrument.rs:
crates/metrics/src/par.rs:
crates/metrics/src/partition.rs:
crates/metrics/src/resilience.rs:
crates/metrics/src/spectrum.rs:
crates/metrics/src/tolerance.rs:
