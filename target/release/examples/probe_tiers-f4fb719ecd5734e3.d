/root/repo/target/release/examples/probe_tiers-f4fb719ecd5734e3.d: examples/probe_tiers.rs

/root/repo/target/release/examples/probe_tiers-f4fb719ecd5734e3: examples/probe_tiers.rs

examples/probe_tiers.rs:
