/root/repo/target/debug/examples/probe_tiers-15cb9856ef0d07c6.d: crates/core/examples/probe_tiers.rs

/root/repo/target/debug/examples/probe_tiers-15cb9856ef0d07c6: crates/core/examples/probe_tiers.rs

crates/core/examples/probe_tiers.rs:
