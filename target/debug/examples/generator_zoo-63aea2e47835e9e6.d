/root/repo/target/debug/examples/generator_zoo-63aea2e47835e9e6.d: examples/generator_zoo.rs

/root/repo/target/debug/examples/generator_zoo-63aea2e47835e9e6: examples/generator_zoo.rs

examples/generator_zoo.rs:
