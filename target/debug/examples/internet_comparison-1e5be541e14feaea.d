/root/repo/target/debug/examples/internet_comparison-1e5be541e14feaea.d: examples/internet_comparison.rs

/root/repo/target/debug/examples/internet_comparison-1e5be541e14feaea: examples/internet_comparison.rs

examples/internet_comparison.rs:
