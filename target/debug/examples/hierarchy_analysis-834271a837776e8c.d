/root/repo/target/debug/examples/hierarchy_analysis-834271a837776e8c.d: examples/hierarchy_analysis.rs

/root/repo/target/debug/examples/hierarchy_analysis-834271a837776e8c: examples/hierarchy_analysis.rs

examples/hierarchy_analysis.rs:
