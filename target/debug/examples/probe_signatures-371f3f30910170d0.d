/root/repo/target/debug/examples/probe_signatures-371f3f30910170d0.d: crates/core/examples/probe_signatures.rs

/root/repo/target/debug/examples/probe_signatures-371f3f30910170d0: crates/core/examples/probe_signatures.rs

crates/core/examples/probe_signatures.rs:
