/root/repo/target/debug/examples/generator_zoo-55bd94eda7593d30.d: examples/generator_zoo.rs Cargo.toml

/root/repo/target/debug/examples/libgenerator_zoo-55bd94eda7593d30.rmeta: examples/generator_zoo.rs Cargo.toml

examples/generator_zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
