/root/repo/target/debug/examples/internet_comparison-e0066398537eacf0.d: examples/internet_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libinternet_comparison-e0066398537eacf0.rmeta: examples/internet_comparison.rs Cargo.toml

examples/internet_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
