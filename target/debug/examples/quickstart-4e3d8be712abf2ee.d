/root/repo/target/debug/examples/quickstart-4e3d8be712abf2ee.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-4e3d8be712abf2ee.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
