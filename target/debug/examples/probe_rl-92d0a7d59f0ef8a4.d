/root/repo/target/debug/examples/probe_rl-92d0a7d59f0ef8a4.d: crates/core/examples/probe_rl.rs

/root/repo/target/debug/examples/probe_rl-92d0a7d59f0ef8a4: crates/core/examples/probe_rl.rs

crates/core/examples/probe_rl.rs:
