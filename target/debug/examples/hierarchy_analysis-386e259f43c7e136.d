/root/repo/target/debug/examples/hierarchy_analysis-386e259f43c7e136.d: examples/hierarchy_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libhierarchy_analysis-386e259f43c7e136.rmeta: examples/hierarchy_analysis.rs Cargo.toml

examples/hierarchy_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
