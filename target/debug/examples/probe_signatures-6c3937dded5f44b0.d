/root/repo/target/debug/examples/probe_signatures-6c3937dded5f44b0.d: crates/core/examples/probe_signatures.rs Cargo.toml

/root/repo/target/debug/examples/libprobe_signatures-6c3937dded5f44b0.rmeta: crates/core/examples/probe_signatures.rs Cargo.toml

crates/core/examples/probe_signatures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
