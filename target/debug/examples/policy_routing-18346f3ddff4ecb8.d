/root/repo/target/debug/examples/policy_routing-18346f3ddff4ecb8.d: examples/policy_routing.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_routing-18346f3ddff4ecb8.rmeta: examples/policy_routing.rs Cargo.toml

examples/policy_routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
