/root/repo/target/debug/examples/policy_routing-f6bbd254cc20f802.d: examples/policy_routing.rs

/root/repo/target/debug/examples/policy_routing-f6bbd254cc20f802: examples/policy_routing.rs

examples/policy_routing.rs:
