/root/repo/target/debug/examples/quickstart-680c99da427ec550.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-680c99da427ec550: examples/quickstart.rs

examples/quickstart.rs:
