/root/repo/target/debug/deps/topogen_metrics-53d5404d93380534.d: crates/metrics/src/lib.rs crates/metrics/src/balls.rs crates/metrics/src/bicon_metric.rs crates/metrics/src/clustering.rs crates/metrics/src/cover.rs crates/metrics/src/distortion.rs crates/metrics/src/eccentricity.rs crates/metrics/src/engine.rs crates/metrics/src/expansion.rs crates/metrics/src/extra.rs crates/metrics/src/instrument.rs crates/metrics/src/par.rs crates/metrics/src/partition.rs crates/metrics/src/resilience.rs crates/metrics/src/spectrum.rs crates/metrics/src/tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen_metrics-53d5404d93380534.rmeta: crates/metrics/src/lib.rs crates/metrics/src/balls.rs crates/metrics/src/bicon_metric.rs crates/metrics/src/clustering.rs crates/metrics/src/cover.rs crates/metrics/src/distortion.rs crates/metrics/src/eccentricity.rs crates/metrics/src/engine.rs crates/metrics/src/expansion.rs crates/metrics/src/extra.rs crates/metrics/src/instrument.rs crates/metrics/src/par.rs crates/metrics/src/partition.rs crates/metrics/src/resilience.rs crates/metrics/src/spectrum.rs crates/metrics/src/tolerance.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/balls.rs:
crates/metrics/src/bicon_metric.rs:
crates/metrics/src/clustering.rs:
crates/metrics/src/cover.rs:
crates/metrics/src/distortion.rs:
crates/metrics/src/eccentricity.rs:
crates/metrics/src/engine.rs:
crates/metrics/src/expansion.rs:
crates/metrics/src/extra.rs:
crates/metrics/src/instrument.rs:
crates/metrics/src/par.rs:
crates/metrics/src/partition.rs:
crates/metrics/src/resilience.rs:
crates/metrics/src/spectrum.rs:
crates/metrics/src/tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
