/root/repo/target/debug/deps/topogen_core-60c4de0f5fbc3510.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/hier.rs crates/core/src/report.rs crates/core/src/suite.rs crates/core/src/zoo.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen_core-60c4de0f5fbc3510.rmeta: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/hier.rs crates/core/src/report.rs crates/core/src/suite.rs crates/core/src/zoo.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/hier.rs:
crates/core/src/report.rs:
crates/core/src/suite.rs:
crates/core/src/zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
