/root/repo/target/debug/deps/bench_hierarchy-25f767ae85857bb3.d: crates/bench/benches/bench_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libbench_hierarchy-25f767ae85857bb3.rmeta: crates/bench/benches/bench_hierarchy.rs Cargo.toml

crates/bench/benches/bench_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
