/root/repo/target/debug/deps/topogen-0819ac049ce8973d.d: src/bin/topogen.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen-0819ac049ce8973d.rmeta: src/bin/topogen.rs Cargo.toml

src/bin/topogen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
