/root/repo/target/debug/deps/topogen_policy-08edf6570f4c93b8.d: crates/policy/src/lib.rs crates/policy/src/balls.rs crates/policy/src/bgp.rs crates/policy/src/bgp_sim.rs crates/policy/src/gao.rs crates/policy/src/overlay.rs crates/policy/src/rel.rs crates/policy/src/valley.rs

/root/repo/target/debug/deps/topogen_policy-08edf6570f4c93b8: crates/policy/src/lib.rs crates/policy/src/balls.rs crates/policy/src/bgp.rs crates/policy/src/bgp_sim.rs crates/policy/src/gao.rs crates/policy/src/overlay.rs crates/policy/src/rel.rs crates/policy/src/valley.rs

crates/policy/src/lib.rs:
crates/policy/src/balls.rs:
crates/policy/src/bgp.rs:
crates/policy/src/bgp_sim.rs:
crates/policy/src/gao.rs:
crates/policy/src/overlay.rs:
crates/policy/src/rel.rs:
crates/policy/src/valley.rs:
