/root/repo/target/debug/deps/topogen_linalg-d0bff95309d50d64.d: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs

/root/repo/target/debug/deps/libtopogen_linalg-d0bff95309d50d64.rmeta: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs

crates/linalg/src/lib.rs:
crates/linalg/src/dense.rs:
crates/linalg/src/lanczos.rs:
crates/linalg/src/sparse.rs:
