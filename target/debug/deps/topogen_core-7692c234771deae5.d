/root/repo/target/debug/deps/topogen_core-7692c234771deae5.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/hier.rs crates/core/src/report.rs crates/core/src/suite.rs crates/core/src/zoo.rs

/root/repo/target/debug/deps/libtopogen_core-7692c234771deae5.rlib: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/hier.rs crates/core/src/report.rs crates/core/src/suite.rs crates/core/src/zoo.rs

/root/repo/target/debug/deps/libtopogen_core-7692c234771deae5.rmeta: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/hier.rs crates/core/src/report.rs crates/core/src/suite.rs crates/core/src/zoo.rs

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/hier.rs:
crates/core/src/report.rs:
crates/core/src/suite.rs:
crates/core/src/zoo.rs:
