/root/repo/target/debug/deps/topogen_graph-4cd7c2cffffe22d5.d: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/bicon.rs crates/graph/src/components.rs crates/graph/src/flow.rs crates/graph/src/geometry.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/prune.rs crates/graph/src/subgraph.rs crates/graph/src/tree.rs crates/graph/src/unionfind.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen_graph-4cd7c2cffffe22d5.rmeta: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/bicon.rs crates/graph/src/components.rs crates/graph/src/flow.rs crates/graph/src/geometry.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/prune.rs crates/graph/src/subgraph.rs crates/graph/src/tree.rs crates/graph/src/unionfind.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/apsp.rs:
crates/graph/src/bfs.rs:
crates/graph/src/bicon.rs:
crates/graph/src/components.rs:
crates/graph/src/flow.rs:
crates/graph/src/geometry.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/prune.rs:
crates/graph/src/subgraph.rs:
crates/graph/src/tree.rs:
crates/graph/src/unionfind.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
