/root/repo/target/debug/deps/integration_headline-88a4697fc95fbb10.d: tests/integration_headline.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_headline-88a4697fc95fbb10.rmeta: tests/integration_headline.rs Cargo.toml

tests/integration_headline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
