/root/repo/target/debug/deps/topogen_bench-e2aa2b2497734455.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/bgp.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/robustness.rs crates/bench/src/experiments/signatures.rs crates/bench/src/experiments/tab1.rs

/root/repo/target/debug/deps/topogen_bench-e2aa2b2497734455: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/bgp.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/robustness.rs crates/bench/src/experiments/signatures.rs crates/bench/src/experiments/tab1.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/bgp.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/fig12.rs:
crates/bench/src/experiments/fig15.rs:
crates/bench/src/experiments/fig2.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/robustness.rs:
crates/bench/src/experiments/signatures.rs:
crates/bench/src/experiments/tab1.rs:
