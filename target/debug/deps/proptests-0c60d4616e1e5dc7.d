/root/repo/target/debug/deps/proptests-0c60d4616e1e5dc7.d: crates/hierarchy/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-0c60d4616e1e5dc7.rmeta: crates/hierarchy/tests/proptests.rs Cargo.toml

crates/hierarchy/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
