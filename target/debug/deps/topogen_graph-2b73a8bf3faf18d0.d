/root/repo/target/debug/deps/topogen_graph-2b73a8bf3faf18d0.d: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/bicon.rs crates/graph/src/components.rs crates/graph/src/flow.rs crates/graph/src/geometry.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/prune.rs crates/graph/src/subgraph.rs crates/graph/src/tree.rs crates/graph/src/unionfind.rs

/root/repo/target/debug/deps/topogen_graph-2b73a8bf3faf18d0: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/bicon.rs crates/graph/src/components.rs crates/graph/src/flow.rs crates/graph/src/geometry.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/prune.rs crates/graph/src/subgraph.rs crates/graph/src/tree.rs crates/graph/src/unionfind.rs

crates/graph/src/lib.rs:
crates/graph/src/apsp.rs:
crates/graph/src/bfs.rs:
crates/graph/src/bicon.rs:
crates/graph/src/components.rs:
crates/graph/src/flow.rs:
crates/graph/src/geometry.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/prune.rs:
crates/graph/src/subgraph.rs:
crates/graph/src/tree.rs:
crates/graph/src/unionfind.rs:
