/root/repo/target/debug/deps/topogen-c133728cb25e2bf9.d: src/lib.rs

/root/repo/target/debug/deps/libtopogen-c133728cb25e2bf9.rmeta: src/lib.rs

src/lib.rs:
