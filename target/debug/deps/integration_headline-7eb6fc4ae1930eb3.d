/root/repo/target/debug/deps/integration_headline-7eb6fc4ae1930eb3.d: tests/integration_headline.rs

/root/repo/target/debug/deps/integration_headline-7eb6fc4ae1930eb3: tests/integration_headline.rs

tests/integration_headline.rs:
