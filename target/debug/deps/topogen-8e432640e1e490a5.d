/root/repo/target/debug/deps/topogen-8e432640e1e490a5.d: src/lib.rs

/root/repo/target/debug/deps/libtopogen-8e432640e1e490a5.rlib: src/lib.rs

/root/repo/target/debug/deps/libtopogen-8e432640e1e490a5.rmeta: src/lib.rs

src/lib.rs:
