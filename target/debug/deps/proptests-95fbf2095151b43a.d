/root/repo/target/debug/deps/proptests-95fbf2095151b43a.d: crates/graph/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-95fbf2095151b43a.rmeta: crates/graph/tests/proptests.rs Cargo.toml

crates/graph/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
