/root/repo/target/debug/deps/proptests-9026840aeed1e391.d: crates/linalg/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9026840aeed1e391: crates/linalg/tests/proptests.rs

crates/linalg/tests/proptests.rs:
