/root/repo/target/debug/deps/repro-7cb7a7a594d34b25.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-7cb7a7a594d34b25.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
