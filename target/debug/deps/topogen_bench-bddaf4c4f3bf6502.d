/root/repo/target/debug/deps/topogen_bench-bddaf4c4f3bf6502.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/bgp.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/robustness.rs crates/bench/src/experiments/signatures.rs crates/bench/src/experiments/tab1.rs

/root/repo/target/debug/deps/libtopogen_bench-bddaf4c4f3bf6502.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/bgp.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/robustness.rs crates/bench/src/experiments/signatures.rs crates/bench/src/experiments/tab1.rs

/root/repo/target/debug/deps/libtopogen_bench-bddaf4c4f3bf6502.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/bgp.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/robustness.rs crates/bench/src/experiments/signatures.rs crates/bench/src/experiments/tab1.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/bgp.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/fig12.rs:
crates/bench/src/experiments/fig15.rs:
crates/bench/src/experiments/fig2.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/robustness.rs:
crates/bench/src/experiments/signatures.rs:
crates/bench/src/experiments/tab1.rs:
