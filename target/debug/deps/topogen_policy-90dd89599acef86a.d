/root/repo/target/debug/deps/topogen_policy-90dd89599acef86a.d: crates/policy/src/lib.rs crates/policy/src/balls.rs crates/policy/src/bgp.rs crates/policy/src/bgp_sim.rs crates/policy/src/gao.rs crates/policy/src/overlay.rs crates/policy/src/rel.rs crates/policy/src/valley.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen_policy-90dd89599acef86a.rmeta: crates/policy/src/lib.rs crates/policy/src/balls.rs crates/policy/src/bgp.rs crates/policy/src/bgp_sim.rs crates/policy/src/gao.rs crates/policy/src/overlay.rs crates/policy/src/rel.rs crates/policy/src/valley.rs Cargo.toml

crates/policy/src/lib.rs:
crates/policy/src/balls.rs:
crates/policy/src/bgp.rs:
crates/policy/src/bgp_sim.rs:
crates/policy/src/gao.rs:
crates/policy/src/overlay.rs:
crates/policy/src/rel.rs:
crates/policy/src/valley.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
