/root/repo/target/debug/deps/repro-7e9798958e940ed2.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-7e9798958e940ed2.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
