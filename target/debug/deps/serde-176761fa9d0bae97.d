/root/repo/target/debug/deps/serde-176761fa9d0bae97.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-176761fa9d0bae97.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
