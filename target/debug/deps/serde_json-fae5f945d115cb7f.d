/root/repo/target/debug/deps/serde_json-fae5f945d115cb7f.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-fae5f945d115cb7f.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
