/root/repo/target/debug/deps/bench_metrics-e0a5249f4ad29964.d: crates/bench/benches/bench_metrics.rs Cargo.toml

/root/repo/target/debug/deps/libbench_metrics-e0a5249f4ad29964.rmeta: crates/bench/benches/bench_metrics.rs Cargo.toml

crates/bench/benches/bench_metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
