/root/repo/target/debug/deps/topogen_linalg-cbbfe7b0087e214d.d: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen_linalg-cbbfe7b0087e214d.rmeta: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/dense.rs:
crates/linalg/src/lanczos.rs:
crates/linalg/src/sparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
