/root/repo/target/debug/deps/topogen_hierarchy-f176aa17ebe49481.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/classify.rs crates/hierarchy/src/correlation.rs crates/hierarchy/src/cover.rs crates/hierarchy/src/dag.rs crates/hierarchy/src/linkvalue.rs crates/hierarchy/src/traversal.rs

/root/repo/target/debug/deps/libtopogen_hierarchy-f176aa17ebe49481.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/classify.rs crates/hierarchy/src/correlation.rs crates/hierarchy/src/cover.rs crates/hierarchy/src/dag.rs crates/hierarchy/src/linkvalue.rs crates/hierarchy/src/traversal.rs

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/classify.rs:
crates/hierarchy/src/correlation.rs:
crates/hierarchy/src/cover.rs:
crates/hierarchy/src/dag.rs:
crates/hierarchy/src/linkvalue.rs:
crates/hierarchy/src/traversal.rs:
