/root/repo/target/debug/deps/proptests-c8633309c5308137.d: crates/policy/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c8633309c5308137.rmeta: crates/policy/tests/proptests.rs Cargo.toml

crates/policy/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
