/root/repo/target/debug/deps/topogen_hierarchy-62ba8a56ddbf5fed.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/classify.rs crates/hierarchy/src/correlation.rs crates/hierarchy/src/cover.rs crates/hierarchy/src/dag.rs crates/hierarchy/src/linkvalue.rs crates/hierarchy/src/traversal.rs

/root/repo/target/debug/deps/libtopogen_hierarchy-62ba8a56ddbf5fed.rlib: crates/hierarchy/src/lib.rs crates/hierarchy/src/classify.rs crates/hierarchy/src/correlation.rs crates/hierarchy/src/cover.rs crates/hierarchy/src/dag.rs crates/hierarchy/src/linkvalue.rs crates/hierarchy/src/traversal.rs

/root/repo/target/debug/deps/libtopogen_hierarchy-62ba8a56ddbf5fed.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/classify.rs crates/hierarchy/src/correlation.rs crates/hierarchy/src/cover.rs crates/hierarchy/src/dag.rs crates/hierarchy/src/linkvalue.rs crates/hierarchy/src/traversal.rs

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/classify.rs:
crates/hierarchy/src/correlation.rs:
crates/hierarchy/src/cover.rs:
crates/hierarchy/src/dag.rs:
crates/hierarchy/src/linkvalue.rs:
crates/hierarchy/src/traversal.rs:
