/root/repo/target/debug/deps/topogen_core-c20f1e9c7be99a7e.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/hier.rs crates/core/src/report.rs crates/core/src/suite.rs crates/core/src/zoo.rs

/root/repo/target/debug/deps/topogen_core-c20f1e9c7be99a7e: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/hier.rs crates/core/src/report.rs crates/core/src/suite.rs crates/core/src/zoo.rs

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/hier.rs:
crates/core/src/report.rs:
crates/core/src/suite.rs:
crates/core/src/zoo.rs:
