/root/repo/target/debug/deps/bench_policy-ae954a45ed2143de.d: crates/bench/benches/bench_policy.rs

/root/repo/target/debug/deps/bench_policy-ae954a45ed2143de: crates/bench/benches/bench_policy.rs

crates/bench/benches/bench_policy.rs:
