/root/repo/target/debug/deps/topogen-0cc2a09a0d326de8.d: src/bin/topogen.rs

/root/repo/target/debug/deps/libtopogen-0cc2a09a0d326de8.rmeta: src/bin/topogen.rs

src/bin/topogen.rs:
