/root/repo/target/debug/deps/proptests-1ce86e7f354213f2.d: crates/hierarchy/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1ce86e7f354213f2: crates/hierarchy/tests/proptests.rs

crates/hierarchy/tests/proptests.rs:
