/root/repo/target/debug/deps/repro-03559be541e5e5cd.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-03559be541e5e5cd: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
