/root/repo/target/debug/deps/topogen_bench-36a03c15aebf5466.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/bgp.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/robustness.rs crates/bench/src/experiments/signatures.rs crates/bench/src/experiments/tab1.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen_bench-36a03c15aebf5466.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/bgp.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/robustness.rs crates/bench/src/experiments/signatures.rs crates/bench/src/experiments/tab1.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/bgp.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/fig12.rs:
crates/bench/src/experiments/fig15.rs:
crates/bench/src/experiments/fig2.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/robustness.rs:
crates/bench/src/experiments/signatures.rs:
crates/bench/src/experiments/tab1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
