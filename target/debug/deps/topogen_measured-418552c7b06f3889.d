/root/repo/target/debug/deps/topogen_measured-418552c7b06f3889.d: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs

/root/repo/target/debug/deps/libtopogen_measured-418552c7b06f3889.rmeta: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs

crates/measured/src/lib.rs:
crates/measured/src/as_graph.rs:
crates/measured/src/observe.rs:
crates/measured/src/rl_graph.rs:
