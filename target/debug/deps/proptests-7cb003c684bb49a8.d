/root/repo/target/debug/deps/proptests-7cb003c684bb49a8.d: crates/measured/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7cb003c684bb49a8: crates/measured/tests/proptests.rs

crates/measured/tests/proptests.rs:
