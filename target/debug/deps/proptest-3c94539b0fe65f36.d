/root/repo/target/debug/deps/proptest-3c94539b0fe65f36.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3c94539b0fe65f36.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3c94539b0fe65f36.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
