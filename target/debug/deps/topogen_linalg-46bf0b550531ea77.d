/root/repo/target/debug/deps/topogen_linalg-46bf0b550531ea77.d: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs

/root/repo/target/debug/deps/libtopogen_linalg-46bf0b550531ea77.rlib: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs

/root/repo/target/debug/deps/libtopogen_linalg-46bf0b550531ea77.rmeta: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs

crates/linalg/src/lib.rs:
crates/linalg/src/dense.rs:
crates/linalg/src/lanczos.rs:
crates/linalg/src/sparse.rs:
