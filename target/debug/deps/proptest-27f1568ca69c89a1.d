/root/repo/target/debug/deps/proptest-27f1568ca69c89a1.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-27f1568ca69c89a1.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
