/root/repo/target/debug/deps/topogen-e04bb85592cc99c1.d: src/bin/topogen.rs

/root/repo/target/debug/deps/topogen-e04bb85592cc99c1: src/bin/topogen.rs

src/bin/topogen.rs:
