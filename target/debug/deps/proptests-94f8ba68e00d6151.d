/root/repo/target/debug/deps/proptests-94f8ba68e00d6151.d: crates/policy/tests/proptests.rs

/root/repo/target/debug/deps/proptests-94f8ba68e00d6151: crates/policy/tests/proptests.rs

crates/policy/tests/proptests.rs:
