/root/repo/target/debug/deps/bench_generators-00c1c612d411095c.d: crates/bench/benches/bench_generators.rs

/root/repo/target/debug/deps/bench_generators-00c1c612d411095c: crates/bench/benches/bench_generators.rs

crates/bench/benches/bench_generators.rs:
