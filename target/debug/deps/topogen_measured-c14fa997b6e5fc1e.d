/root/repo/target/debug/deps/topogen_measured-c14fa997b6e5fc1e.d: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs

/root/repo/target/debug/deps/topogen_measured-c14fa997b6e5fc1e: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs

crates/measured/src/lib.rs:
crates/measured/src/as_graph.rs:
crates/measured/src/observe.rs:
crates/measured/src/rl_graph.rs:
