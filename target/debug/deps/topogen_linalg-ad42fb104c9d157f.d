/root/repo/target/debug/deps/topogen_linalg-ad42fb104c9d157f.d: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs

/root/repo/target/debug/deps/topogen_linalg-ad42fb104c9d157f: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs

crates/linalg/src/lib.rs:
crates/linalg/src/dense.rs:
crates/linalg/src/lanczos.rs:
crates/linalg/src/sparse.rs:
