/root/repo/target/debug/deps/integration_properties-e66926b1d87319de.d: tests/integration_properties.rs

/root/repo/target/debug/deps/integration_properties-e66926b1d87319de: tests/integration_properties.rs

tests/integration_properties.rs:
