/root/repo/target/debug/deps/bench_metrics-1180c2bd7f0f11fe.d: crates/bench/benches/bench_metrics.rs

/root/repo/target/debug/deps/bench_metrics-1180c2bd7f0f11fe: crates/bench/benches/bench_metrics.rs

crates/bench/benches/bench_metrics.rs:
