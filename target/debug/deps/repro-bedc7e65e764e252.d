/root/repo/target/debug/deps/repro-bedc7e65e764e252.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-bedc7e65e764e252: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
