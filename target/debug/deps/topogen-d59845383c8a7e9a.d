/root/repo/target/debug/deps/topogen-d59845383c8a7e9a.d: src/bin/topogen.rs

/root/repo/target/debug/deps/topogen-d59845383c8a7e9a: src/bin/topogen.rs

src/bin/topogen.rs:
