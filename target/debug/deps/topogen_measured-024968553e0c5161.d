/root/repo/target/debug/deps/topogen_measured-024968553e0c5161.d: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs

/root/repo/target/debug/deps/libtopogen_measured-024968553e0c5161.rlib: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs

/root/repo/target/debug/deps/libtopogen_measured-024968553e0c5161.rmeta: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs

crates/measured/src/lib.rs:
crates/measured/src/as_graph.rs:
crates/measured/src/observe.rs:
crates/measured/src/rl_graph.rs:
