/root/repo/target/debug/deps/bench_appendix_b-7c4ae739b3cbab18.d: crates/bench/benches/bench_appendix_b.rs

/root/repo/target/debug/deps/bench_appendix_b-7c4ae739b3cbab18: crates/bench/benches/bench_appendix_b.rs

crates/bench/benches/bench_appendix_b.rs:
