/root/repo/target/debug/deps/bench_appendix_b-b9620b867dae9668.d: crates/bench/benches/bench_appendix_b.rs Cargo.toml

/root/repo/target/debug/deps/libbench_appendix_b-b9620b867dae9668.rmeta: crates/bench/benches/bench_appendix_b.rs Cargo.toml

crates/bench/benches/bench_appendix_b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
