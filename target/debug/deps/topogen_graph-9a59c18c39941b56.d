/root/repo/target/debug/deps/topogen_graph-9a59c18c39941b56.d: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/bicon.rs crates/graph/src/components.rs crates/graph/src/flow.rs crates/graph/src/geometry.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/prune.rs crates/graph/src/subgraph.rs crates/graph/src/tree.rs crates/graph/src/unionfind.rs

/root/repo/target/debug/deps/libtopogen_graph-9a59c18c39941b56.rlib: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/bicon.rs crates/graph/src/components.rs crates/graph/src/flow.rs crates/graph/src/geometry.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/prune.rs crates/graph/src/subgraph.rs crates/graph/src/tree.rs crates/graph/src/unionfind.rs

/root/repo/target/debug/deps/libtopogen_graph-9a59c18c39941b56.rmeta: crates/graph/src/lib.rs crates/graph/src/apsp.rs crates/graph/src/bfs.rs crates/graph/src/bicon.rs crates/graph/src/components.rs crates/graph/src/flow.rs crates/graph/src/geometry.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/prune.rs crates/graph/src/subgraph.rs crates/graph/src/tree.rs crates/graph/src/unionfind.rs

crates/graph/src/lib.rs:
crates/graph/src/apsp.rs:
crates/graph/src/bfs.rs:
crates/graph/src/bicon.rs:
crates/graph/src/components.rs:
crates/graph/src/flow.rs:
crates/graph/src/geometry.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/prune.rs:
crates/graph/src/subgraph.rs:
crates/graph/src/tree.rs:
crates/graph/src/unionfind.rs:
