/root/repo/target/debug/deps/topogen_generators-58eeb8382e65e4e9.d: crates/generators/src/lib.rs crates/generators/src/ba.rs crates/generators/src/brite.rs crates/generators/src/canonical.rs crates/generators/src/connectivity.rs crates/generators/src/degseq.rs crates/generators/src/flat.rs crates/generators/src/generate.rs crates/generators/src/glp.rs crates/generators/src/inet.rs crates/generators/src/nlevel.rs crates/generators/src/plrg.rs crates/generators/src/tiers.rs crates/generators/src/transit_stub.rs crates/generators/src/waxman.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen_generators-58eeb8382e65e4e9.rmeta: crates/generators/src/lib.rs crates/generators/src/ba.rs crates/generators/src/brite.rs crates/generators/src/canonical.rs crates/generators/src/connectivity.rs crates/generators/src/degseq.rs crates/generators/src/flat.rs crates/generators/src/generate.rs crates/generators/src/glp.rs crates/generators/src/inet.rs crates/generators/src/nlevel.rs crates/generators/src/plrg.rs crates/generators/src/tiers.rs crates/generators/src/transit_stub.rs crates/generators/src/waxman.rs Cargo.toml

crates/generators/src/lib.rs:
crates/generators/src/ba.rs:
crates/generators/src/brite.rs:
crates/generators/src/canonical.rs:
crates/generators/src/connectivity.rs:
crates/generators/src/degseq.rs:
crates/generators/src/flat.rs:
crates/generators/src/generate.rs:
crates/generators/src/glp.rs:
crates/generators/src/inet.rs:
crates/generators/src/nlevel.rs:
crates/generators/src/plrg.rs:
crates/generators/src/tiers.rs:
crates/generators/src/transit_stub.rs:
crates/generators/src/waxman.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
