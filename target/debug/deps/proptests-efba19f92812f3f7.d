/root/repo/target/debug/deps/proptests-efba19f92812f3f7.d: crates/graph/tests/proptests.rs

/root/repo/target/debug/deps/proptests-efba19f92812f3f7: crates/graph/tests/proptests.rs

crates/graph/tests/proptests.rs:
