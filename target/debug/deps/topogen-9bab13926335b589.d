/root/repo/target/debug/deps/topogen-9bab13926335b589.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen-9bab13926335b589.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
