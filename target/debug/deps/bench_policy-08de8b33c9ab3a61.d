/root/repo/target/debug/deps/bench_policy-08de8b33c9ab3a61.d: crates/bench/benches/bench_policy.rs Cargo.toml

/root/repo/target/debug/deps/libbench_policy-08de8b33c9ab3a61.rmeta: crates/bench/benches/bench_policy.rs Cargo.toml

crates/bench/benches/bench_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
