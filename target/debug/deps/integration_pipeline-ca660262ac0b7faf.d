/root/repo/target/debug/deps/integration_pipeline-ca660262ac0b7faf.d: tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-ca660262ac0b7faf: tests/integration_pipeline.rs

tests/integration_pipeline.rs:
