/root/repo/target/debug/deps/topogen_hierarchy-450f34c1f3cd01ca.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/classify.rs crates/hierarchy/src/correlation.rs crates/hierarchy/src/cover.rs crates/hierarchy/src/dag.rs crates/hierarchy/src/linkvalue.rs crates/hierarchy/src/traversal.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen_hierarchy-450f34c1f3cd01ca.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/classify.rs crates/hierarchy/src/correlation.rs crates/hierarchy/src/cover.rs crates/hierarchy/src/dag.rs crates/hierarchy/src/linkvalue.rs crates/hierarchy/src/traversal.rs Cargo.toml

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/classify.rs:
crates/hierarchy/src/correlation.rs:
crates/hierarchy/src/cover.rs:
crates/hierarchy/src/dag.rs:
crates/hierarchy/src/linkvalue.rs:
crates/hierarchy/src/traversal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
