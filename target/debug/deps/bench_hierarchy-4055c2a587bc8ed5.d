/root/repo/target/debug/deps/bench_hierarchy-4055c2a587bc8ed5.d: crates/bench/benches/bench_hierarchy.rs

/root/repo/target/debug/deps/bench_hierarchy-4055c2a587bc8ed5: crates/bench/benches/bench_hierarchy.rs

crates/bench/benches/bench_hierarchy.rs:
