/root/repo/target/debug/deps/proptests-ab9a26a1d2c8787a.d: crates/generators/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-ab9a26a1d2c8787a.rmeta: crates/generators/tests/proptests.rs Cargo.toml

crates/generators/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
