/root/repo/target/debug/deps/topogen-4f4847552055d8f8.d: src/lib.rs

/root/repo/target/debug/deps/topogen-4f4847552055d8f8: src/lib.rs

src/lib.rs:
