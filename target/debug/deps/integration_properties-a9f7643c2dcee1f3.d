/root/repo/target/debug/deps/integration_properties-a9f7643c2dcee1f3.d: tests/integration_properties.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_properties-a9f7643c2dcee1f3.rmeta: tests/integration_properties.rs Cargo.toml

tests/integration_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
