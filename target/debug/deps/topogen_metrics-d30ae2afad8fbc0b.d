/root/repo/target/debug/deps/topogen_metrics-d30ae2afad8fbc0b.d: crates/metrics/src/lib.rs crates/metrics/src/balls.rs crates/metrics/src/bicon_metric.rs crates/metrics/src/clustering.rs crates/metrics/src/cover.rs crates/metrics/src/distortion.rs crates/metrics/src/eccentricity.rs crates/metrics/src/expansion.rs crates/metrics/src/extra.rs crates/metrics/src/par.rs crates/metrics/src/partition.rs crates/metrics/src/resilience.rs crates/metrics/src/spectrum.rs crates/metrics/src/tolerance.rs

/root/repo/target/debug/deps/libtopogen_metrics-d30ae2afad8fbc0b.rmeta: crates/metrics/src/lib.rs crates/metrics/src/balls.rs crates/metrics/src/bicon_metric.rs crates/metrics/src/clustering.rs crates/metrics/src/cover.rs crates/metrics/src/distortion.rs crates/metrics/src/eccentricity.rs crates/metrics/src/expansion.rs crates/metrics/src/extra.rs crates/metrics/src/par.rs crates/metrics/src/partition.rs crates/metrics/src/resilience.rs crates/metrics/src/spectrum.rs crates/metrics/src/tolerance.rs

crates/metrics/src/lib.rs:
crates/metrics/src/balls.rs:
crates/metrics/src/bicon_metric.rs:
crates/metrics/src/clustering.rs:
crates/metrics/src/cover.rs:
crates/metrics/src/distortion.rs:
crates/metrics/src/eccentricity.rs:
crates/metrics/src/expansion.rs:
crates/metrics/src/extra.rs:
crates/metrics/src/par.rs:
crates/metrics/src/partition.rs:
crates/metrics/src/resilience.rs:
crates/metrics/src/spectrum.rs:
crates/metrics/src/tolerance.rs:
