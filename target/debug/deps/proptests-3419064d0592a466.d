/root/repo/target/debug/deps/proptests-3419064d0592a466.d: crates/metrics/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3419064d0592a466: crates/metrics/tests/proptests.rs

crates/metrics/tests/proptests.rs:
