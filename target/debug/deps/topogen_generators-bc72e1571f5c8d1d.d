/root/repo/target/debug/deps/topogen_generators-bc72e1571f5c8d1d.d: crates/generators/src/lib.rs crates/generators/src/ba.rs crates/generators/src/brite.rs crates/generators/src/canonical.rs crates/generators/src/connectivity.rs crates/generators/src/degseq.rs crates/generators/src/flat.rs crates/generators/src/generate.rs crates/generators/src/glp.rs crates/generators/src/inet.rs crates/generators/src/nlevel.rs crates/generators/src/plrg.rs crates/generators/src/tiers.rs crates/generators/src/transit_stub.rs crates/generators/src/waxman.rs

/root/repo/target/debug/deps/libtopogen_generators-bc72e1571f5c8d1d.rlib: crates/generators/src/lib.rs crates/generators/src/ba.rs crates/generators/src/brite.rs crates/generators/src/canonical.rs crates/generators/src/connectivity.rs crates/generators/src/degseq.rs crates/generators/src/flat.rs crates/generators/src/generate.rs crates/generators/src/glp.rs crates/generators/src/inet.rs crates/generators/src/nlevel.rs crates/generators/src/plrg.rs crates/generators/src/tiers.rs crates/generators/src/transit_stub.rs crates/generators/src/waxman.rs

/root/repo/target/debug/deps/libtopogen_generators-bc72e1571f5c8d1d.rmeta: crates/generators/src/lib.rs crates/generators/src/ba.rs crates/generators/src/brite.rs crates/generators/src/canonical.rs crates/generators/src/connectivity.rs crates/generators/src/degseq.rs crates/generators/src/flat.rs crates/generators/src/generate.rs crates/generators/src/glp.rs crates/generators/src/inet.rs crates/generators/src/nlevel.rs crates/generators/src/plrg.rs crates/generators/src/tiers.rs crates/generators/src/transit_stub.rs crates/generators/src/waxman.rs

crates/generators/src/lib.rs:
crates/generators/src/ba.rs:
crates/generators/src/brite.rs:
crates/generators/src/canonical.rs:
crates/generators/src/connectivity.rs:
crates/generators/src/degseq.rs:
crates/generators/src/flat.rs:
crates/generators/src/generate.rs:
crates/generators/src/glp.rs:
crates/generators/src/inet.rs:
crates/generators/src/nlevel.rs:
crates/generators/src/plrg.rs:
crates/generators/src/tiers.rs:
crates/generators/src/transit_stub.rs:
crates/generators/src/waxman.rs:
