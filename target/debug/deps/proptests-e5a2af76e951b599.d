/root/repo/target/debug/deps/proptests-e5a2af76e951b599.d: crates/linalg/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e5a2af76e951b599.rmeta: crates/linalg/tests/proptests.rs Cargo.toml

crates/linalg/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
