/root/repo/target/debug/deps/topogen-4bf3569a9a17a505.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen-4bf3569a9a17a505.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
