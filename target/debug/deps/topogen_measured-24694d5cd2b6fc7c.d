/root/repo/target/debug/deps/topogen_measured-24694d5cd2b6fc7c.d: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen_measured-24694d5cd2b6fc7c.rmeta: crates/measured/src/lib.rs crates/measured/src/as_graph.rs crates/measured/src/observe.rs crates/measured/src/rl_graph.rs Cargo.toml

crates/measured/src/lib.rs:
crates/measured/src/as_graph.rs:
crates/measured/src/observe.rs:
crates/measured/src/rl_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
