/root/repo/target/debug/deps/topogen_linalg-4549fec853163b06.d: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs Cargo.toml

/root/repo/target/debug/deps/libtopogen_linalg-4549fec853163b06.rmeta: crates/linalg/src/lib.rs crates/linalg/src/dense.rs crates/linalg/src/lanczos.rs crates/linalg/src/sparse.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/dense.rs:
crates/linalg/src/lanczos.rs:
crates/linalg/src/sparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
