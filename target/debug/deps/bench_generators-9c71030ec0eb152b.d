/root/repo/target/debug/deps/bench_generators-9c71030ec0eb152b.d: crates/bench/benches/bench_generators.rs Cargo.toml

/root/repo/target/debug/deps/libbench_generators-9c71030ec0eb152b.rmeta: crates/bench/benches/bench_generators.rs Cargo.toml

crates/bench/benches/bench_generators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
