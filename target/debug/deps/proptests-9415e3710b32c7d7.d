/root/repo/target/debug/deps/proptests-9415e3710b32c7d7.d: crates/generators/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9415e3710b32c7d7: crates/generators/tests/proptests.rs

crates/generators/tests/proptests.rs:
