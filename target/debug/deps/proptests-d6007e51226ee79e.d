/root/repo/target/debug/deps/proptests-d6007e51226ee79e.d: crates/measured/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d6007e51226ee79e.rmeta: crates/measured/tests/proptests.rs Cargo.toml

crates/measured/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
