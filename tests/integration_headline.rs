//! The paper's headline results as cross-crate integration tests: the
//! §4.4 signature table and the §5.1/§5.2 hierarchy results.

use topogen::core::hier::{hierarchy_report, HierOptions};
use topogen::core::suite::{run_suite, run_suite_policy, SuiteParams};
use topogen::core::zoo::{build, Scale, TopologySpec};
use topogen::generators::plrg::PlrgParams;
use topogen::generators::tiers::TiersParams;
use topogen::generators::transit_stub::TransitStubParams;

fn sig(spec: &TopologySpec) -> String {
    let t = build(spec, Scale::Small, 42);
    run_suite(&t, &SuiteParams::quick()).signature.to_string()
}

#[test]
fn question_one_only_plrg_matches_the_internet() {
    // §4.4: "Tiers has low expansion, TS has low resilience, and Waxman
    // has high distortion. Only the PLRG matches the measured graphs in
    // all three metrics."
    let zoo = TopologySpec::figure1_zoo(Scale::Small);
    let mut results = std::collections::HashMap::new();
    for spec in zoo {
        results.insert(spec.name(), sig(&spec));
    }
    assert_eq!(results["AS"], "HHL");
    assert_eq!(results["RL"], "HHL");
    assert_eq!(results["PLRG"], "HHL");
    assert_eq!(results["TS"], "HLL", "TS must miss on resilience");
    assert_eq!(results["Tiers"], "LHL", "Tiers must miss on expansion");
    assert_eq!(results["Waxman"], "HHH", "Waxman must miss on distortion");
}

#[test]
fn policy_routing_does_not_change_the_classification() {
    let t = build(&TopologySpec::MeasuredAs, Scale::Small, 42);
    let plain = run_suite(&t, &SuiteParams::quick()).signature;
    let policy = run_suite_policy(&t, &SuiteParams::quick()).signature;
    assert_eq!(plain, policy);
}

#[test]
fn question_two_hierarchy_classes() {
    // §5.1's grouping, on the smaller link-value instances.
    let cases = vec![
        (TopologySpec::Tree { k: 3, depth: 4 }, "strict"),
        (
            TopologySpec::TransitStub(TransitStubParams {
                transit_domains: 3,
                stubs_per_transit_node: 2,
                stub_nodes_per_domain: 6,
                ..TransitStubParams::paper_default()
            }),
            "strict",
        ),
        (
            TopologySpec::Tiers(TiersParams {
                mans_per_wan: 6,
                lans_per_man: 4,
                wan_nodes: 150,
                man_nodes: 12,
                lan_nodes: 4,
                ..TiersParams::paper_default()
            }),
            "strict",
        ),
        (TopologySpec::Mesh { side: 16 }, "loose"),
        (TopologySpec::Random { n: 450, p: 0.009 }, "loose"),
        (TopologySpec::MeasuredAs, "moderate"),
    ];
    for (spec, want) in cases {
        let t = build(&spec, Scale::Small, 42);
        let r = hierarchy_report(&t, &HierOptions::default());
        assert_eq!(r.class, want, "{}", t.name);
    }
}

#[test]
fn hierarchy_correlation_story() {
    // §5.2: PLRG's hierarchy is degree-driven (high correlation), the
    // structural generators' is not.
    let plrg = build(
        &TopologySpec::Plrg(PlrgParams {
            n: 900,
            alpha: 2.246,
            max_degree: None,
        }),
        Scale::Small,
        42,
    );
    let rp = hierarchy_report(&plrg, &HierOptions::default());
    let tiers = build(
        &TopologySpec::Tiers(TiersParams {
            mans_per_wan: 6,
            lans_per_man: 4,
            wan_nodes: 150,
            man_nodes: 12,
            lan_nodes: 4,
            ..TiersParams::paper_default()
        }),
        Scale::Small,
        42,
    );
    let rt = hierarchy_report(&tiers, &HierOptions::default());
    let cp = rp.degree_correlation.unwrap();
    let ct = rt.degree_correlation.unwrap();
    assert!(cp > 0.7, "PLRG correlation {cp}");
    assert!(cp > ct + 0.3, "PLRG {cp} vs Tiers {ct}");
}

#[test]
fn as_and_rl_have_similar_properties() {
    // The paper's first finding: despite 15× different scales, AS and RL
    // share the metric signature.
    let a = sig(&TopologySpec::MeasuredAs);
    let r = sig(&TopologySpec::MeasuredRl);
    assert_eq!(a, r);
}
