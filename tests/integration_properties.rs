//! Property-based cross-crate invariants (proptest): the structural
//! facts every experiment silently relies on, checked over arbitrary
//! random graphs and annotated topologies.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen::graph::{bfs, Graph, NodeId, UNREACHED};
use topogen::hierarchy::linkvalue::{link_values, PathMode};
use topogen::hierarchy::traversal::link_traversals;
use topogen::measured::as_graph::{internet_as, InternetAsParams};
use topogen::metrics::partition::min_balanced_bisection;
use topogen::policy::valley::policy_distances;

/// Strategy: a random connected-ish graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..40, any::<u64>()).prop_map(|(n, seed)| {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = topogen::graph::GraphBuilder::new(n);
        // A random spanning tree keeps it connected…
        for v in 1..n {
            let p = rng.gen_range(0..v);
            b.add_edge(p as NodeId, v as NodeId);
        }
        // …plus random extra edges.
        for _ in 0..n {
            let u = rng.gen_range(0..n) as NodeId;
            let v = rng.gen_range(0..n) as NodeId;
            if u != v {
                b.add_edge(u, v);
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn balls_are_nested_and_cover(g in arb_graph()) {
        let n = g.node_count();
        let center = 0 as NodeId;
        let mut prev = 0usize;
        for h in 0..(n as u32) {
            let nodes = bfs::ball_nodes(&g, center, h);
            prop_assert!(nodes.len() >= prev, "ball shrank at h={h}");
            prev = nodes.len();
        }
        // Connected by construction → the big ball covers everything.
        prop_assert_eq!(prev, n);
    }

    #[test]
    fn bisection_cut_bounded_by_edges(g in arb_graph()) {
        if let Some(b) = min_balanced_bisection(&g, 2, 9) {
            prop_assert!(b.cut <= g.edge_count() as u64);
            // Sides nonempty.
            let t = b.side.iter().filter(|&&s| s).count();
            prop_assert!(t > 0 && t < g.node_count());
            // Reported cut matches the side assignment.
            let real: u64 = g
                .edges()
                .iter()
                .filter(|e| b.side[e.a as usize] != b.side[e.b as usize])
                .count() as u64;
            prop_assert_eq!(b.cut, real);
        }
    }

    #[test]
    fn traversal_weights_conserve_path_length(g in arb_graph()) {
        let t = link_traversals(&g, &PathMode::Shortest);
        let mut per_pair: std::collections::HashMap<(NodeId, NodeId), f64> =
            Default::default();
        for link in t.iter_links() {
            for pw in link {
                *per_pair.entry((pw.u, pw.v)).or_insert(0.0) += pw.w;
                prop_assert!(pw.w > 0.0 && pw.w <= 1.0 + 1e-9);
            }
        }
        for ((u, v), total) in per_pair {
            let d = bfs::distances(&g, u)[v as usize] as f64;
            prop_assert!((total - d).abs() < 1e-6, "pair ({u},{v}): {total} vs {d}");
        }
    }

    #[test]
    fn link_values_are_normalized(g in arb_graph()) {
        let values = link_values(&g, &PathMode::Shortest);
        prop_assert_eq!(values.len(), g.edge_count());
        for v in values {
            // A cover never weighs more than all nodes (normalized ≤ 1,
            // with slack for the 2-approximation).
            prop_assert!((0.0..=2.0).contains(&v), "link value {v}");
        }
    }

    #[test]
    fn eccentricity_triangle_inequality(g in arb_graph()) {
        // ecc(u) ≤ ecc(v) + d(u, v) for connected graphs.
        let e0 = bfs::eccentricity(&g, 0);
        let d = bfs::distances(&g, 0);
        for v in 1..g.node_count() as NodeId {
            let ev = bfs::eccentricity(&g, v);
            prop_assert!(e0 <= ev + d[v as usize]);
            prop_assert!(ev <= e0 + d[v as usize]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn synthetic_internet_invariants(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = internet_as(
            &InternetAsParams { n: 150, ..InternetAsParams::default_scaled() },
            &mut rng,
        );
        // Connected and annotation-aligned.
        prop_assert!(topogen::graph::components::is_connected(&m.graph));
        let (pc, peer, sib) = m.annotations.counts();
        prop_assert_eq!(pc + peer + sib, m.graph.edge_count());
        // Policy reachability is total (peered core covers the world),
        // and never beats plain shortest paths.
        let plain = bfs::distances(&m.graph, 0);
        let pol = policy_distances(&m.graph, &m.annotations, 0);
        for v in 0..m.graph.node_count() {
            prop_assert!(pol[v] != UNREACHED, "AS {v} policy-unreachable");
            prop_assert!(pol[v] >= plain[v]);
        }
    }
}
