//! Cross-crate integration: the full measured-Internet pipeline —
//! generate the annotated AS graph, expand to routers, simulate BGP,
//! infer relationships, and route with policy — end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen::graph::{bfs, NodeId, UNREACHED};
use topogen::measured::as_graph::{internet_as, InternetAsParams};
use topogen::measured::rl_graph::{expand_to_routers, RouterExpansionParams};
use topogen::policy::bgp::{routing_tables, top_degree_nodes};
use topogen::policy::gao::{infer_relationships, GaoConfig};
use topogen::policy::overlay::RouterOverlay;
use topogen::policy::valley::policy_distances;

fn small_internet() -> topogen::measured::as_graph::InternetAs {
    let mut rng = StdRng::seed_from_u64(77);
    internet_as(
        &InternetAsParams {
            n: 400,
            ..InternetAsParams::default_scaled()
        },
        &mut rng,
    )
}

#[test]
fn bgp_to_gao_roundtrip_recovers_most_relationships() {
    let m = small_internet();
    let vantages = top_degree_nodes(&m.graph, 8);
    let tables = routing_tables(&m.graph, &m.annotations, &vantages);
    let inferred = infer_relationships(&m.graph, &tables, &GaoConfig::default());
    let agreement = inferred.agreement(&m.annotations);
    assert!(
        agreement > 0.85,
        "Gao inference agreement {agreement} too low"
    );
}

#[test]
fn policy_never_shortens_paths() {
    let m = small_internet();
    for src in [0u32, 50, 399] {
        let plain = bfs::distances(&m.graph, src);
        let pol = policy_distances(&m.graph, &m.annotations, src);
        for v in 0..m.graph.node_count() {
            if pol[v] != UNREACHED {
                assert!(
                    pol[v] >= plain[v],
                    "policy shortened {src}→{v}: {} < {}",
                    pol[v],
                    plain[v]
                );
            }
        }
    }
}

#[test]
fn policy_distances_are_symmetric() {
    // Valley-free validity is direction-symmetric, so distances must be.
    let m = small_internet();
    let sources: Vec<NodeId> = vec![0, 17, 200, 399];
    let fields: Vec<Vec<u32>> = sources
        .iter()
        .map(|&s| policy_distances(&m.graph, &m.annotations, s))
        .collect();
    for (i, &a) in sources.iter().enumerate() {
        for (j, &b) in sources.iter().enumerate() {
            assert_eq!(
                fields[i][b as usize], fields[j][a as usize],
                "policy distance asymmetry between {a} and {b}"
            );
        }
    }
}

#[test]
fn router_overlay_consistent_with_as_policy() {
    let mut rng = StdRng::seed_from_u64(77);
    let m = internet_as(
        &InternetAsParams {
            n: 200,
            ..InternetAsParams::default_scaled()
        },
        &mut rng,
    );
    let rl = expand_to_routers(&m, &RouterExpansionParams::default(), &mut rng);
    let ov = RouterOverlay::new(&rl.graph, &rl.router_as, &m.graph, &m.annotations);
    // Pick a router in the last AS (a stub).
    let (s, _) = rl.as_router_range[m.graph.node_count() - 1];
    let rd = ov.policy_router_distances(s);
    let ad = policy_distances(
        &m.graph,
        &m.annotations,
        (m.graph.node_count() - 1) as NodeId,
    );
    // Router-level policy reachability implies AS-level reachability,
    // and the router path is at least as long as the AS path.
    for (r, &dr) in rd.iter().enumerate() {
        if dr != UNREACHED {
            let a = rl.router_as[r] as usize;
            assert_ne!(ad[a], UNREACHED, "router {r} reachable but AS {a} is not");
            assert!(
                dr >= ad[a],
                "router distance {dr} below AS distance {} for AS {a}",
                ad[a]
            );
        }
    }
    // And AS-level reachability is realized at the router level for the
    // AS's border routers (at least one router per reachable AS).
    let mut reached_as = vec![false; m.graph.node_count()];
    for (r, &d) in rd.iter().enumerate() {
        if d != UNREACHED {
            reached_as[rl.router_as[r] as usize] = true;
        }
    }
    for a in 0..m.graph.node_count() {
        if ad[a] != UNREACHED {
            assert!(
                reached_as[a],
                "AS {a} policy-reachable but no router reached"
            );
        }
    }
}

#[test]
fn router_expansion_preserves_reachability() {
    let mut rng = StdRng::seed_from_u64(3);
    let m = internet_as(
        &InternetAsParams {
            n: 300,
            ..InternetAsParams::default_scaled()
        },
        &mut rng,
    );
    let rl = expand_to_routers(&m, &RouterExpansionParams::default(), &mut rng);
    assert!(topogen::graph::components::is_connected(&rl.graph));
    // AS-level diameter lower-bounds the router-level diameter.
    let as_ecc = bfs::eccentricity(&m.graph, 0);
    let (r0, _) = rl.as_router_range[0];
    let rl_ecc = bfs::eccentricity(&rl.graph, r0);
    assert!(rl_ecc >= as_ecc, "RL ecc {rl_ecc} < AS ecc {as_ecc}");
}
