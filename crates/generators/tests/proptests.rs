//! Property-based tests over the generators: every generator must
//! produce a simple graph of the requested shape for arbitrary valid
//! parameters and seeds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_generators::ba::{barabasi_albert, BaParams};
use topogen_generators::canonical::{kary_tree, mesh, random_gnm, random_gnp};
use topogen_generators::connectivity::{match_deterministic, match_plrg};
use topogen_generators::degseq::{degree_ccdf, evenize, is_graphical, power_law_degrees};
use topogen_generators::glp::{glp, GlpParams};
use topogen_generators::inet::inet_from_degrees;
use topogen_generators::plrg::{plrg, PlrgParams};
use topogen_generators::waxman::{waxman, WaxmanParams};
use topogen_graph::components::is_connected;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_node_count_formula(k in 2usize..5, depth in 0usize..6) {
        let g = kary_tree(k, depth);
        let mut want = 1usize;
        let mut level = 1usize;
        for _ in 0..depth {
            level *= k;
            want += level;
        }
        prop_assert_eq!(g.node_count(), want);
        prop_assert_eq!(g.edge_count(), want - 1);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn mesh_edge_count_formula(r in 1usize..12, c in 1usize..12) {
        let g = mesh(r, c);
        prop_assert_eq!(g.edge_count(), r * (c - 1) + c * (r - 1));
    }

    #[test]
    fn gnp_edges_within_support(n in 2usize..60, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_gnp(n, p, &mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.edge_count() <= n * (n - 1) / 2);
        prop_assert!(g.nodes().all(|v| g.degree(v) < n));
    }

    #[test]
    fn gnm_exact(n in 2usize..40, seed in any::<u64>()) {
        let max = n * (n - 1) / 2;
        let m = seed as usize % (max + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_gnm(n, m, &mut rng);
        prop_assert_eq!(g.edge_count(), m);
    }

    #[test]
    fn power_law_degrees_in_range(
        n in 1usize..500,
        alpha in 1.5f64..3.5,
        cutoff in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = power_law_degrees(n, alpha, cutoff, &mut rng);
        prop_assert_eq!(d.len(), n);
        prop_assert!(d.iter().all(|&x| x >= 1 && x <= cutoff));
    }

    #[test]
    fn evenize_makes_even(mut d in proptest::collection::vec(0usize..20, 1..50)) {
        evenize(&mut d);
        prop_assert_eq!(d.iter().sum::<usize>() % 2, 0);
    }

    #[test]
    fn plrg_degrees_bounded(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let degrees = power_law_degrees(60, 2.3, 20, &mut rng);
        let mut d = degrees.clone();
        evenize(&mut d);
        let g = match_plrg(&d, &mut rng);
        for (v, &want) in d.iter().enumerate() {
            prop_assert!(g.degree(v as u32) <= want);
        }
    }

    #[test]
    fn deterministic_realizes_graphical_exactly(seed in any::<u64>()) {
        // Build a graphical sequence via an actual graph's degrees.
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_gnp(25, 0.2, &mut rng);
        let degrees = base.degrees();
        prop_assert!(is_graphical(&degrees));
        let g = match_deterministic(&degrees);
        // Havel–Hakimi-style greedy realizes any graphical sequence.
        prop_assert_eq!(g.degrees(), degrees);
    }

    #[test]
    fn inet_connected_when_core_exists(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut degrees = power_law_degrees(80, 2.2, 20, &mut rng);
        if !degrees.iter().any(|&d| d > 1) {
            degrees[0] = 3;
        }
        evenize(&mut degrees);
        let g = inet_from_degrees(&degrees, &mut rng);
        prop_assert!(is_connected(&g), "Inet must connect everything");
    }

    #[test]
    fn ba_always_connected(n in 3usize..200, m in 1usize..4, seed in any::<u64>()) {
        prop_assume!(n > m);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(&BaParams { n, m }, &mut rng);
        prop_assert!(is_connected(&g));
        prop_assert_eq!(g.node_count(), n);
    }

    #[test]
    fn glp_shape(seed in any::<u64>(), p in 0.0f64..0.7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = glp(&GlpParams { n: 120, m: 1, p, beta: 0.6 }, &mut rng);
        prop_assert_eq!(g.node_count(), 120);
        prop_assert!(g.edge_count() >= 100, "at least the growth edges");
    }

    #[test]
    fn waxman_simple(seed in any::<u64>(), alpha in 0.01f64..0.3, beta in 0.05f64..0.9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = waxman(&WaxmanParams { n: 60, alpha, beta }, &mut rng);
        prop_assert_eq!(g.node_count(), 60);
        // Simple graph: degree < n.
        prop_assert!(g.nodes().all(|v| g.degree(v) < 60));
    }

    #[test]
    fn ccdf_is_valid_distribution(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = plrg(&PlrgParams { n: 150, alpha: 2.4, max_degree: None }, &mut rng);
        let c = degree_ccdf(&g);
        prop_assert!(c.windows(2).all(|w| w[0].fraction >= w[1].fraction));
        prop_assert!(c.iter().all(|p| p.fraction > 0.0 && p.fraction <= 1.0));
        if let Some(first) = c.first() {
            prop_assert_eq!(first.fraction, 1.0);
        }
    }
}
