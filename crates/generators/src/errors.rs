//! Typed generation errors for the fallible generator entry points.
//!
//! The original tools (GT-ITM, the PLRG samplers) guarantee feasibility
//! by resampling until a draw works — an unbounded loop that, at
//! adversarial parameters (a two-node power law with a degree cap of
//! five, a zero-probability random block), never terminates. The `try_*`
//! entry points bound those loops and surface the exhaustion as a typed
//! [`GenError`] the suite runner can record and retry with a new seed,
//! instead of hanging or panicking.

/// Why a fallible generator entry point could not produce a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenError {
    /// The stochastic feasibility loop exhausted its attempt budget —
    /// e.g. no graphical degree sequence or no connected block was drawn.
    Infeasible {
        /// Which stage of the construction gave up.
        stage: &'static str,
        /// How many attempts were made before giving up.
        attempts: u64,
    },
    /// A parameter is structurally invalid (zero counts, probabilities
    /// outside `[0, 1]`, non-normalizable exponents).
    BadParam {
        /// Human-readable description of the offending parameter.
        what: String,
    },
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::Infeasible { stage, attempts } => {
                write!(f, "{stage}: infeasible after {attempts} attempt(s)")
            }
            GenError::BadParam { what } => write!(f, "bad parameter: {what}"),
        }
    }
}

impl std::error::Error for GenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_line_messages() {
        let e = GenError::Infeasible {
            stage: "power-law degree sequence",
            attempts: 32,
        };
        assert_eq!(
            e.to_string(),
            "power-law degree sequence: infeasible after 32 attempt(s)"
        );
        let b = GenError::BadParam {
            what: "alpha must exceed 1".into(),
        };
        assert!(!b.to_string().contains('\n'));
    }
}
