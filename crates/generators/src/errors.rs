//! Typed generation errors for the fallible generator entry points.
//!
//! The original tools (GT-ITM, the PLRG samplers) guarantee feasibility
//! by resampling until a draw works — an unbounded loop that, at
//! adversarial parameters (a two-node power law with a degree cap of
//! five, a zero-probability random block), never terminates. The `try_*`
//! entry points bound those loops and surface the exhaustion as a typed
//! [`GenError`] the suite runner can record and retry with a new seed,
//! instead of hanging or panicking.

/// Why a fallible generator entry point could not produce a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenError {
    /// The stochastic feasibility loop exhausted its attempt budget —
    /// e.g. no graphical degree sequence or no connected block was drawn.
    Infeasible {
        /// Which stage of the construction gave up.
        stage: &'static str,
        /// How many attempts were made before giving up.
        attempts: u64,
    },
    /// A parameter is structurally invalid (zero counts, probabilities
    /// outside `[0, 1]`, non-normalizable exponents).
    BadParam {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// No graphical degree sequence was drawn within the attempt
    /// budget. Unlike the generic [`GenError::Infeasible`], this
    /// carries the Erdős–Gallai witness of the last rejected draw: the
    /// first prefix length `k` whose `k` largest degrees demand more
    /// edge endpoints than the inequality's bound allows.
    NotGraphical {
        /// Which stage of the construction gave up.
        stage: &'static str,
        /// How many draws were rejected before giving up.
        attempts: u64,
        /// 1-based prefix length of the first violated inequality.
        k: usize,
        /// Left-hand side: sum of the `k` largest degrees.
        prefix_sum: usize,
        /// Right-hand side: `k(k-1) + Σ_{i>k} min(d_i, k)`.
        bound: usize,
    },
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::Infeasible { stage, attempts } => {
                write!(f, "{stage}: infeasible after {attempts} attempt(s)")
            }
            GenError::BadParam { what } => write!(f, "bad parameter: {what}"),
            GenError::NotGraphical {
                stage,
                attempts,
                k,
                prefix_sum,
                bound,
            } => {
                write!(
                    f,
                    "{stage}: no graphical draw in {attempts} attempt(s); \
                     last draw violates Erdős–Gallai at k={k} \
                     (prefix sum {prefix_sum} > bound {bound})"
                )
            }
        }
    }
}

impl std::error::Error for GenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_line_messages() {
        let e = GenError::Infeasible {
            stage: "power-law degree sequence",
            attempts: 32,
        };
        assert_eq!(
            e.to_string(),
            "power-law degree sequence: infeasible after 32 attempt(s)"
        );
        let b = GenError::BadParam {
            what: "alpha must exceed 1".into(),
        };
        assert!(!b.to_string().contains('\n'));
        let g = GenError::NotGraphical {
            stage: "power-law degree sequence",
            attempts: 1,
            k: 1,
            prefix_sum: 5,
            bound: 1,
        };
        let msg = g.to_string();
        assert!(msg.contains("k=1") && msg.contains("5") && msg.contains("1"));
        assert!(!msg.contains('\n'));
    }
}
