//! The Power-Law Random Graph (PLRG) generator of Aiello, Chung and Lu
//! \[1\] — the paper's primary degree-based generator (§3.1.2).
//!
//! Given `n` and an exponent α, degrees are drawn from a power law; each
//! node is then *cloned* once per unit of degree, and clones are paired
//! uniformly at random until none remain. Self-loops and duplicate links
//! are discarded (footnote 6), which slightly lowers realized degrees of
//! the largest hubs. The graph may be disconnected; the paper (and our
//! harness) analyzes the largest connected component.

use crate::connectivity::match_plrg;
use crate::degseq::{evenize, natural_cutoff, power_law_degrees};
use rand::Rng;
use topogen_graph::Graph;

/// Parameters for the PLRG generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlrgParams {
    /// Number of nodes to draw degrees for (the final largest component
    /// is somewhat smaller).
    pub n: usize,
    /// Power-law exponent α (Figure 1 uses 2.246; Appendix C explores
    /// 2.25–2.55).
    pub alpha: f64,
    /// Optional cap on sampled degrees; `None` uses the natural cutoff
    /// `n^(1/(α-1))`.
    pub max_degree: Option<usize>,
}

impl PlrgParams {
    /// The paper's Figure 1 instance: 9230 nodes (largest component) at
    /// α = 2.246, average degree 4.46.
    pub fn paper_default() -> Self {
        PlrgParams {
            n: 10_000,
            alpha: 2.246,
            max_degree: None,
        }
    }
}

/// Generate a PLRG. Returns the *whole* graph (possibly disconnected);
/// use [`topogen_graph::components::largest_component`] for the paper's
/// analysis graph.
///
/// ```
/// use rand::SeedableRng;
/// use topogen_generators::plrg::{plrg, PlrgParams};
/// use topogen_graph::components::largest_component;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let g = plrg(&PlrgParams { n: 500, alpha: 2.246, max_degree: None }, &mut rng);
/// let (lcc, _) = largest_component(&g);
/// // Heavy tail: the biggest hub dwarfs the average node.
/// assert!(lcc.max_degree() as f64 > 5.0 * lcc.average_degree());
/// ```
pub fn plrg<R: Rng>(params: &PlrgParams, rng: &mut R) -> Graph {
    let mut b = topogen_graph::GraphBuilder::new(0);
    plrg_into(params, rng, &mut b);
    b.build()
}

/// [`plrg`] emitting the raw matching through an arbitrary
/// [`EdgeSink`](topogen_graph::stream::EdgeSink) — the memory-budgeted
/// build path for the xl tier. Shares one body (and RNG order) with
/// [`plrg`], so the streamed graph is identical by construction.
pub fn plrg_into<S: topogen_graph::stream::EdgeSink, R: Rng>(
    params: &PlrgParams,
    rng: &mut R,
    sink: &mut S,
) {
    let cutoff = params
        .max_degree
        .unwrap_or_else(|| natural_cutoff(params.n, params.alpha));
    let mut degrees = power_law_degrees(params.n, params.alpha, cutoff, rng);
    evenize(&mut degrees);
    crate::connectivity::match_plrg_into(&degrees, rng, sink);
}

/// Fallible PLRG: draws the degree sequence through the bounded
/// Erdős–Gallai feasibility loop
/// ([`power_law_degrees_graphical`](crate::degseq::power_law_degrees_graphical))
/// and returns a typed error instead of panicking on adversarial
/// parameters. `max_attempts` bounds the resampling loop; the suite
/// runner retries exhausted draws with a fresh seed.
pub fn try_plrg<R: Rng>(
    params: &PlrgParams,
    max_attempts: u64,
    rng: &mut R,
) -> Result<Graph, crate::errors::GenError> {
    if params.n == 0 {
        return Err(crate::errors::GenError::BadParam {
            what: "PLRG needs at least one node".into(),
        });
    }
    let cutoff = params
        .max_degree
        .unwrap_or_else(|| natural_cutoff(params.n, params.alpha));
    let degrees = crate::degseq::power_law_degrees_graphical(
        params.n,
        params.alpha,
        cutoff,
        max_attempts,
        rng,
    )?;
    Ok(match_plrg(&degrees, rng))
}

/// Generate a PLRG from an explicit degree sequence (used by the
/// "Modified B-A"/"Modified Brite" reconnection experiments of Figure 13).
pub fn plrg_from_degrees<R: Rng>(degrees: &[usize], rng: &mut R) -> Graph {
    let mut d = degrees.to_vec();
    evenize(&mut d);
    match_plrg(&d, rng)
}

impl crate::generate::Generate for PlrgParams {
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph {
        // Random matching leaves a fringe of small components; the paper
        // analyzes the giant component.
        topogen_graph::components::largest_component(&plrg(self, rng)).0
    }

    fn canonical_params(&self) -> String {
        let max_degree = match self.max_degree {
            None => "none".to_string(),
            Some(d) => d.to_string(),
        };
        format!(
            "n={},alpha={:?},max_degree={max_degree}",
            self.n, self.alpha
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::largest_component;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn node_and_degree_scale_matches_paper() {
        // Figure 1: PLRG with α=2.246 → largest component ≈ 92% of draws,
        // average degree ≈ 4.5.
        let g = plrg(&PlrgParams::paper_default(), &mut rng());
        let (lcc, _) = largest_component(&g);
        let frac = lcc.node_count() as f64 / 10_000.0;
        assert!(frac > 0.75, "largest component fraction {frac}");
        assert!(
            (2.0..8.0).contains(&lcc.average_degree()),
            "avg degree {}",
            lcc.average_degree()
        );
    }

    #[test]
    fn heavy_tail_present() {
        let g = plrg(&PlrgParams::paper_default(), &mut rng());
        // Hubs must be an order of magnitude above the mean.
        assert!(g.max_degree() as f64 > 15.0 * g.average_degree());
    }

    #[test]
    fn deterministic_under_seed() {
        let p = PlrgParams {
            n: 500,
            alpha: 2.3,
            max_degree: None,
        };
        let g1 = plrg(&p, &mut StdRng::seed_from_u64(1));
        let g2 = plrg(&p, &mut StdRng::seed_from_u64(1));
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn from_degrees_respects_bound() {
        // Realized degree can only be <= requested (self-loop/dup removal).
        let degrees = vec![5, 3, 3, 2, 2, 1, 1, 1];
        let g = plrg_from_degrees(&degrees, &mut rng());
        for (v, &want) in degrees.iter().enumerate() {
            assert!(g.degree(v as u32) <= want);
        }
    }

    #[test]
    fn try_plrg_succeeds_at_paper_scale() {
        let g = try_plrg(
            &PlrgParams {
                n: 500,
                alpha: 2.246,
                max_degree: None,
            },
            32,
            &mut rng(),
        )
        .unwrap();
        assert!(g.node_count() == 500);
        assert!(g.edge_count() > 100);
    }

    #[test]
    fn try_plrg_typed_error_at_adversarial_scale() {
        use crate::errors::GenError;
        // Degree cap far above n: most draws are non-graphical. With a
        // one-attempt budget some seed in a small scan must exhaust,
        // surfacing the Erdős–Gallai witness of the rejected draw.
        let saw_not_graphical = (0..64).any(|seed| {
            matches!(
                try_plrg(
                    &PlrgParams {
                        n: 2,
                        alpha: 1.1,
                        max_degree: Some(10),
                    },
                    1,
                    &mut StdRng::seed_from_u64(seed),
                ),
                Err(GenError::NotGraphical { .. })
            )
        });
        assert!(saw_not_graphical, "no seed in 0..64 exhausted the budget");
        assert!(matches!(
            try_plrg(
                &PlrgParams {
                    n: 0,
                    alpha: 2.2,
                    max_degree: None
                },
                8,
                &mut rng()
            ),
            Err(GenError::BadParam { .. })
        ));
    }

    #[test]
    fn higher_alpha_means_sparser() {
        let lo = plrg(
            &PlrgParams {
                n: 3000,
                alpha: 2.1,
                max_degree: None,
            },
            &mut StdRng::seed_from_u64(5),
        );
        let hi = plrg(
            &PlrgParams {
                n: 3000,
                alpha: 2.9,
                max_degree: None,
            },
            &mut StdRng::seed_from_u64(5),
        );
        assert!(lo.average_degree() > hi.average_degree());
    }
}
