//! GT-ITM's flat random-graph edge-probability methods.
//!
//! Besides the pure Erdős–Rényi and Waxman models, the GT-ITM toolkit
//! (and the Zegura et al. study the paper extends) ships several other
//! distance-dependent edge methods. They are all "random graphs with a
//! geography knob" and land in the Waxman/Random corner of the paper's
//! classification; we include them so the flat-random family is complete:
//!
//! * **Waxman 2** — `P(u,v) = α·exp(−d / (L − d)·β⁻¹·…)`; in GT-ITM's
//!   parameterization, `α·exp(−d/β·L)` with d replaced by a random value
//!   — equivalent in distribution to Erdős–Rényi; implemented as the
//!   randomized-distance variant.
//! * **Doar–Leslie** — Waxman scaled by `k·e/n` so the expected degree
//!   stays constant as `n` grows (Doar's fix used inside Tiers' lineage).
//! * **Exponential** — `P(u,v) = α·exp(−d / (L − d))`: probability falls
//!   to zero exactly at the maximum distance.
//! * **Locality** — `P(u,v) = α` if `d ≤ r`, else `β` (two-tier
//!   distance classes).

use rand::Rng;
use topogen_graph::geometry::Point;
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// The edge-probability method for [`flat_random`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeMethod {
    /// Waxman's second method: the distance term is replaced by a random
    /// draw, degenerating to distance-independent `α·exp(−U/β)`.
    Waxman2 {
        /// Scale α.
        alpha: f64,
        /// Decay β.
        beta: f64,
    },
    /// Doar–Leslie: Waxman with a `k·e/n` degree-stabilizing factor.
    DoarLeslie {
        /// Target mean-degree factor (their `k·e`).
        ke: f64,
        /// Waxman decay β.
        beta: f64,
    },
    /// Pure exponential-in-distance decay.
    Exponential {
        /// Scale α.
        alpha: f64,
    },
    /// Two-tier locality: probability `alpha` within radius `radius`,
    /// `beta` beyond it.
    Locality {
        /// Near probability.
        alpha: f64,
        /// Far probability.
        beta: f64,
        /// Distance threshold (unit-square units).
        radius: f64,
    },
}

/// A flat random-graph configuration: node count plus edge method — the
/// [`Generate`](crate::generate::Generate)-able form of [`flat_random`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlatParams {
    /// Number of nodes (uniformly placed in the unit square).
    pub n: usize,
    /// The edge-probability method.
    pub method: EdgeMethod,
}

impl crate::generate::Generate for FlatParams {
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph {
        // Like Waxman, flat random graphs are routinely disconnected;
        // the paper analyzes the largest component.
        topogen_graph::components::largest_component(&flat_random(self.n, self.method, rng)).0
    }

    fn canonical_params(&self) -> String {
        let method = match self.method {
            EdgeMethod::Waxman2 { alpha, beta } => format!("waxman2({alpha:?},{beta:?})"),
            EdgeMethod::DoarLeslie { ke, beta } => format!("doar-leslie({ke:?},{beta:?})"),
            EdgeMethod::Exponential { alpha } => format!("exponential({alpha:?})"),
            EdgeMethod::Locality {
                alpha,
                beta,
                radius,
            } => format!("locality({alpha:?},{beta:?},{radius:?})"),
        };
        format!("n={},method={method}", self.n)
    }
}

/// Generate a flat random graph with the given edge method over `n`
/// uniformly placed nodes. May be disconnected (analyze the largest
/// component, as the paper does for Waxman).
pub fn flat_random<R: Rng>(n: usize, method: EdgeMethod, rng: &mut R) -> Graph {
    let points: Vec<Point> = (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect();
    let l = 2f64.sqrt();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = points[i].dist(&points[j]);
            let p = match method {
                EdgeMethod::Waxman2 { alpha, beta } => {
                    let u: f64 = rng.gen();
                    alpha * (-u / beta).exp()
                }
                EdgeMethod::DoarLeslie { ke, beta } => (ke / n as f64) * (-d / (beta * l)).exp(),
                EdgeMethod::Exponential { alpha } => alpha * (-d / (l - d).max(1e-9)).exp(),
                EdgeMethod::Locality {
                    alpha,
                    beta,
                    radius,
                } => {
                    if d <= radius {
                        alpha
                    } else {
                        beta
                    }
                }
            };
            if rng.gen::<f64>() < p {
                b.add_edge(i as NodeId, j as NodeId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(33)
    }

    #[test]
    fn doar_leslie_degree_stable_across_sizes() {
        // The whole point of the ke/n factor: mean degree roughly
        // constant as n grows.
        let m = EdgeMethod::DoarLeslie {
            ke: 18.0,
            beta: 0.4,
        };
        let d300 = flat_random(300, m, &mut rng()).average_degree();
        let d900 = flat_random(900, m, &mut rng()).average_degree();
        assert!(
            (d300 - d900).abs() < 0.35 * d300.max(d900),
            "degree drifted: {d300} vs {d900}"
        );
    }

    #[test]
    fn locality_prefers_near_links() {
        let m = EdgeMethod::Locality {
            alpha: 0.5,
            beta: 0.005,
            radius: 0.15,
        };
        let g = flat_random(250, m, &mut rng());
        assert!(g.edge_count() > 100);
        // Mean degree dominated by the near tier: with ~7% of pairs near,
        // expected edges ≈ 250²/2 · (0.07·0.5 + 0.93·0.005) ≈ 1200.
        assert!(g.average_degree() > 3.0);
    }

    #[test]
    fn exponential_sparser_than_locality_near_tier() {
        let g = flat_random(250, EdgeMethod::Exponential { alpha: 0.05 }, &mut rng());
        assert!(g.nodes().all(|v| g.degree(v) < 250));
    }

    #[test]
    fn waxman2_is_distance_blind() {
        // Correlation between link probability and distance is gone: the
        // mean link length should approach the random-pair mean (~0.52).
        use topogen_graph::geometry::Point;
        let mut r = rng();
        let n = 300;
        let points: Vec<Point> = (0..n).map(|_| Point::new(r.gen(), r.gen())).collect();
        // Rebuild with the same placement by reusing flat_random's logic
        // indirectly: just measure edge lengths statistically over a
        // fresh graph + placement (both uniform, so the claim holds in
        // distribution).
        let g = flat_random(
            n,
            EdgeMethod::Waxman2 {
                alpha: 0.1,
                beta: 0.5,
            },
            &mut r,
        );
        let _ = points;
        assert!(g.edge_count() > 50);
    }

    #[test]
    fn deterministic() {
        let m = EdgeMethod::Locality {
            alpha: 0.3,
            beta: 0.01,
            radius: 0.2,
        };
        let a = flat_random(120, m, &mut StdRng::seed_from_u64(2));
        let b = flat_random(120, m, &mut StdRng::seed_from_u64(2));
        assert_eq!(a.edges(), b.edges());
    }
}
