//! An Inet-style generator (Jin, Chen, Jamin \[24\]).
//!
//! Inet assigns node degrees from a power law, verifies the sequence can
//! yield a connected graph, then connects in three phases (Appendix D.1):
//! build a spanning tree among the nodes of degree larger than one,
//! attach the degree-one nodes to the tree with degree-proportional
//! probability, and finally satisfy the remaining degrees in decreasing
//! degree order. The result is connected by construction.

use crate::degseq::{evenize, natural_cutoff, power_law_degrees};
use rand::Rng;
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// Parameters for the Inet-style generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InetParams {
    /// Number of nodes.
    pub n: usize,
    /// Power-law exponent for the degree sequence (Inet 2.x fits ≈ 2.2
    /// for AS graphs of this era).
    pub alpha: f64,
}

impl InetParams {
    /// An AS-graph-like instance.
    pub fn paper_default(n: usize) -> Self {
        InetParams { n, alpha: 2.2 }
    }
}

/// Generate an Inet-style graph from sampled power-law degrees.
pub fn inet<R: Rng>(params: &InetParams, rng: &mut R) -> Graph {
    let cutoff = natural_cutoff(params.n, params.alpha);
    let mut degrees = power_law_degrees(params.n, params.alpha, cutoff, rng);
    // Inet's feasibility step: ensure enough degree->1 nodes have
    // partners; we only need parity plus a nonempty tree core.
    if !degrees.iter().any(|&d| d > 1) {
        // Degenerate draw (tiny n): force one hub.
        if let Some(first) = degrees.first_mut() {
            *first = 2;
        }
    }
    evenize(&mut degrees);
    inet_from_degrees(&degrees, rng)
}

/// The Inet connection procedure over an explicit degree sequence.
pub fn inet_from_degrees<R: Rng>(degrees: &[usize], rng: &mut R) -> Graph {
    let n = degrees.len();
    let mut b = GraphBuilder::new(n);
    if n == 0 {
        return b.build();
    }
    let mut residual: Vec<i64> = degrees.iter().map(|&d| d as i64).collect();
    let mut adj: Vec<std::collections::HashSet<NodeId>> = vec![Default::default(); n];
    let connect = |b: &mut GraphBuilder,
                   adj: &mut Vec<std::collections::HashSet<NodeId>>,
                   residual: &mut Vec<i64>,
                   u: NodeId,
                   v: NodeId| {
        b.add_edge(u, v);
        adj[u as usize].insert(v);
        adj[v as usize].insert(u);
        residual[u as usize] -= 1;
        residual[v as usize] -= 1;
    };

    // Phase 1: spanning tree among degree > 1 nodes. Attach each new tree
    // node to an in-tree node picked with degree-proportional probability
    // ("proportional connectivity").
    let mut core: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| degrees[v as usize] > 1)
        .collect();
    // Highest-degree node first makes the tree hub-centric, as Inet does.
    core.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
    let mut in_tree: Vec<NodeId> = Vec::new();
    for &v in &core {
        if in_tree.is_empty() {
            in_tree.push(v);
            continue;
        }
        let t = pick_proportional_open(&in_tree, degrees, &residual, rng);
        connect(&mut b, &mut adj, &mut residual, v, t);
        in_tree.push(v);
    }

    // Phase 2: attach degree-1 nodes to the tree proportionally.
    let leaves: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| degrees[v as usize] == 1)
        .collect();
    for &v in &leaves {
        if in_tree.is_empty() {
            // No core at all (all degree <= 1): pair leaves up.
            continue;
        }
        let t = pick_proportional_open(&in_tree, degrees, &residual, rng);
        connect(&mut b, &mut adj, &mut residual, v, t);
    }
    if in_tree.is_empty() {
        // All-degree-1 corner case: pair consecutive leaves.
        for pair in leaves.chunks_exact(2) {
            connect(&mut b, &mut adj, &mut residual, pair[0], pair[1]);
        }
        return b.build();
    }

    // Phase 3: satisfy remaining degrees in decreasing degree order,
    // partners chosen proportionally to their assigned degree.
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
    for &v in &order {
        let mut guard = 0usize;
        while residual[v as usize] > 0 && guard < 100 + 20 * n {
            guard += 1;
            let candidates: Vec<NodeId> = (0..n as NodeId)
                .filter(|&w| w != v && residual[w as usize] > 0 && !adj[v as usize].contains(&w))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let t = pick_proportional(&candidates, degrees, rng);
            connect(&mut b, &mut adj, &mut residual, v, t);
        }
    }
    b.build()
}

/// Degree-proportional pick that prefers nodes with unsatisfied degree,
/// falling back to the whole set when every candidate is saturated (the
/// attachment must happen to keep the graph connected — this mirrors
/// Inet's behaviour when a degree sequence is slightly infeasible).
fn pick_proportional_open<R: Rng>(
    items: &[NodeId],
    degrees: &[usize],
    residual: &[i64],
    rng: &mut R,
) -> NodeId {
    let open: Vec<NodeId> = items
        .iter()
        .copied()
        .filter(|&v| residual[v as usize] > 0)
        .collect();
    if open.is_empty() {
        pick_proportional(items, degrees, rng)
    } else {
        pick_proportional(&open, degrees, rng)
    }
}

fn pick_proportional<R: Rng>(items: &[NodeId], degrees: &[usize], rng: &mut R) -> NodeId {
    let total: usize = items.iter().map(|&v| degrees[v as usize]).sum();
    if total == 0 {
        return items[rng.gen_range(0..items.len())];
    }
    let mut r = rng.gen_range(0..total);
    for &v in items {
        let w = degrees[v as usize];
        if r < w {
            return v;
        }
        r -= w;
    }
    *items.last().unwrap()
}

impl crate::generate::Generate for InetParams {
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph {
        topogen_graph::components::largest_component(&inet(self, rng)).0
    }

    fn canonical_params(&self) -> String {
        format!("n={},alpha={:?}", self.n, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::is_connected;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(13)
    }

    #[test]
    fn inet_is_connected() {
        let g = inet(&InetParams::paper_default(2000), &mut rng());
        assert_eq!(g.node_count(), 2000);
        assert!(
            is_connected(&g),
            "Inet graphs are connected by construction"
        );
    }

    #[test]
    fn inet_heavy_tail() {
        let g = inet(&InetParams::paper_default(5000), &mut rng());
        assert!(g.max_degree() as f64 > 10.0 * g.average_degree());
    }

    #[test]
    fn inet_degrees_bounded_by_request() {
        let degrees = vec![6, 4, 3, 2, 2, 1, 1, 1];
        let g = inet_from_degrees(&degrees, &mut rng());
        for (v, &d) in degrees.iter().enumerate() {
            // Spanning tree phase may exceed a node's budget by at most
            // the tree edge (residual can go negative only via tree
            // attach of nodes whose degree is already exhausted — which
            // phase 1 prevents by only attaching each node once).
            assert!(g.degree(v as u32) <= d + 1);
        }
    }

    #[test]
    fn inet_all_leaves_pairs_up() {
        let g = inet_from_degrees(&[1, 1, 1, 1], &mut rng());
        assert_eq!(g.edge_count(), 2);
        assert!(g.nodes().all(|v| g.degree(v) == 1));
    }

    #[test]
    fn inet_deterministic() {
        let p = InetParams { n: 500, alpha: 2.3 };
        let g1 = inet(&p, &mut StdRng::seed_from_u64(3));
        let g2 = inet(&p, &mut StdRng::seed_from_u64(3));
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn inet_empty() {
        let g = inet_from_degrees(&[], &mut rng());
        assert_eq!(g.node_count(), 0);
    }
}
