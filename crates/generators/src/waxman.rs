//! The Waxman random-graph generator \[47\] (§3.1.2).
//!
//! Nodes are scattered uniformly on a plane; each pair is linked with
//! probability `α · exp(−d / (β·L))` where `d` is their Euclidean
//! distance and `L` the maximum possible distance. `α` scales the overall
//! link probability; `β` controls the geographic bias (small `β` strongly
//! penalizes long links — the paper's §4.4 notes that extreme bias makes
//! the largest component resemble a Euclidean MST).
//!
//! The paper's Figure 1 instance: `n = 5000, α = 0.005 … `; Appendix C
//! sweeps both parameters. Waxman graphs are frequently disconnected —
//! analyze the largest component.

use rand::Rng;
use topogen_graph::geometry::Point;
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// Parameters for the Waxman generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaxmanParams {
    /// Number of nodes.
    pub n: usize,
    /// Link-probability scale α ∈ (0, 1].
    pub alpha: f64,
    /// Geographic-bias decay β ∈ (0, 1]; larger = weaker bias.
    pub beta: f64,
}

impl WaxmanParams {
    /// The paper's Figure 1 instance: n = 5000, α = 0.005, β = 0.30
    /// (avg degree ≈ 7.2).
    pub fn paper_default() -> Self {
        WaxmanParams {
            n: 5000,
            alpha: 0.005,
            beta: 0.30,
        }
    }
}

/// Generate a Waxman graph together with its node coordinates.
///
/// # Panics
/// Panics unless `0 < alpha <= 1` and `beta > 0`.
pub fn waxman_with_points<R: Rng>(params: &WaxmanParams, rng: &mut R) -> (Graph, Vec<Point>) {
    let WaxmanParams { n, alpha, beta } = *params;
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    assert!(beta > 0.0, "beta must be positive");
    let points: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let l = 2f64.sqrt(); // max distance in the unit square
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = points[i].dist(&points[j]);
            let p = alpha * (-d / (beta * l)).exp();
            if rng.gen::<f64>() < p {
                b.add_edge(i as NodeId, j as NodeId);
            }
        }
    }
    (b.build(), points)
}

/// Generate a Waxman graph (coordinates discarded). May be disconnected.
pub fn waxman<R: Rng>(params: &WaxmanParams, rng: &mut R) -> Graph {
    waxman_with_points(params, rng).0
}

impl crate::generate::Generate for WaxmanParams {
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph {
        // Sparse Waxman graphs are routinely disconnected; the paper
        // analyzes the largest component.
        topogen_graph::components::largest_component(&waxman(self, rng)).0
    }

    fn canonical_params(&self) -> String {
        format!("n={},alpha={:?},beta={:?}", self.n, self.alpha, self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::largest_component;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(55)
    }

    #[test]
    fn waxman_paper_instance_degree() {
        // Figure 1 reports avg degree 7.22 for n=5000, α=0.005, β=0.30;
        // our unit-square geometry lands slightly higher (≈ 8.6) — the
        // same order, which is what the qualitative comparison needs.
        let g = waxman(&WaxmanParams::paper_default(), &mut rng());
        assert!(
            (6.0..11.0).contains(&g.average_degree()),
            "avg degree {}",
            g.average_degree()
        );
    }

    #[test]
    fn waxman_appendix_sweep_beta_low() {
        // Appendix C explores β = 0.05 — the extreme-geographic-bias
        // regime of §4.4 where the graph fragments and its largest
        // component tends toward a Euclidean-MST shape. Our geometry
        // fragments at the same β (the paper's instance kept 1762 of
        // 5000 nodes; ours keeps fewer — same regime, stronger bias).
        let g = waxman(
            &WaxmanParams {
                n: 5000,
                alpha: 0.005,
                beta: 0.05,
            },
            &mut rng(),
        );
        assert!(g.average_degree() < 2.5, "avg {}", g.average_degree());
        let (lcc, _) = largest_component(&g);
        let frac = lcc.node_count() as f64 / 5000.0;
        assert!(frac < 0.7, "largest component fraction {frac}");
    }

    #[test]
    fn waxman_beta_increases_density() {
        let lo = waxman(
            &WaxmanParams {
                n: 800,
                alpha: 0.01,
                beta: 0.05,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let hi = waxman(
            &WaxmanParams {
                n: 800,
                alpha: 0.01,
                beta: 0.8,
            },
            &mut StdRng::seed_from_u64(1),
        );
        assert!(hi.edge_count() > lo.edge_count());
    }

    #[test]
    fn waxman_short_links_dominate_under_bias() {
        let (g, pts) = waxman_with_points(
            &WaxmanParams {
                n: 600,
                alpha: 0.05,
                beta: 0.05,
            },
            &mut rng(),
        );
        let mean_len: f64 = g
            .edges()
            .iter()
            .map(|e| pts[e.a as usize].dist(&pts[e.b as usize]))
            .sum::<f64>()
            / g.edge_count().max(1) as f64;
        // Mean random-pair distance in the unit square ≈ 0.52; strong
        // bias must pull link lengths well below that.
        assert!(mean_len < 0.25, "mean link length {mean_len}");
    }

    #[test]
    fn waxman_deterministic() {
        let p = WaxmanParams {
            n: 300,
            alpha: 0.02,
            beta: 0.3,
        };
        let g1 = waxman(&p, &mut StdRng::seed_from_u64(6));
        let g2 = waxman(&p, &mut StdRng::seed_from_u64(6));
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    #[should_panic]
    fn waxman_rejects_zero_alpha() {
        let _ = waxman(
            &WaxmanParams {
                n: 10,
                alpha: 0.0,
                beta: 0.3,
            },
            &mut rng(),
        );
    }
}
