//! Degree-sequence machinery shared by the degree-based generators.
//!
//! Power-law sampling (the PLRG's input, §3.1.2), Erdős–Gallai
//! feasibility (the "feasibility test" Inet performs, Appendix D.1),
//! complementary-cumulative degree distributions (Appendix A, Figure 6),
//! and power-law exponent estimation used to verify that generated graphs
//! really are heavy-tailed.

use rand::Rng;
use topogen_graph::Graph;

/// Draw `n` degrees from a discrete power law: `P(degree = k) ∝ k^(-alpha)`
/// for `k` in `1..=max_degree`. The PLRG instances of Figure 1 use
/// `alpha ≈ 2.25`, with the max degree naturally capped near `n^(1/(alpha-1))`.
///
/// Sampling inverts the CDF over the truncated support — O(max_degree)
/// setup, O(log max_degree) per draw.
///
/// # Panics
/// Panics if `alpha <= 1.0` (non-normalizable on unbounded support and
/// degenerate for our purposes) or `max_degree == 0`.
pub fn power_law_degrees<R: Rng>(
    n: usize,
    alpha: f64,
    max_degree: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    assert!(max_degree >= 1);
    // Truncated CDF.
    let mut cdf = Vec::with_capacity(max_degree);
    let mut acc = 0.0f64;
    for k in 1..=max_degree {
        acc += (k as f64).powf(-alpha);
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let r = rng.gen::<f64>() * total;
            // First index with cdf >= r.
            match cdf.binary_search_by(|c| c.partial_cmp(&r).unwrap()) {
                Ok(i) => i + 1,
                Err(i) => (i + 1).min(max_degree),
            }
        })
        .collect()
}

/// Draw a *graphical* power-law degree sequence: sample with
/// [`power_law_degrees`], fix parity with [`evenize`], and accept only
/// draws passing the Erdős–Gallai test ([`is_graphical`]) — the
/// "feasibility test" the original Inet tool performs (Appendix D.1).
/// The resampling loop is bounded at `max_attempts`; exhaustion (which
/// only happens at adversarial scales, e.g. `n = 2` with a degree cap
/// above `n`) returns [`GenError::NotGraphical`] carrying the
/// Erdős–Gallai witness of the last rejected draw — the prefix length
/// `k`, its degree sum, and the bound it exceeded — instead of
/// spinning or discarding the diagnosis.
///
/// [`GenError::NotGraphical`]: crate::errors::GenError::NotGraphical
pub fn power_law_degrees_graphical<R: Rng>(
    n: usize,
    alpha: f64,
    max_degree: usize,
    max_attempts: u64,
    rng: &mut R,
) -> Result<Vec<usize>, crate::errors::GenError> {
    if alpha <= 1.0 {
        return Err(crate::errors::GenError::BadParam {
            what: format!("power-law exponent must exceed 1, got {alpha}"),
        });
    }
    if max_degree == 0 {
        return Err(crate::errors::GenError::BadParam {
            what: "max_degree must be at least 1".into(),
        });
    }
    if max_attempts == 0 {
        return Err(crate::errors::GenError::BadParam {
            what: "max_attempts must be at least 1".into(),
        });
    }
    let mut last_witness = None;
    for _ in 0..max_attempts {
        let mut degrees = power_law_degrees(n, alpha, max_degree, rng);
        evenize(&mut degrees);
        match erdos_gallai_witness(&degrees) {
            None => return Ok(degrees),
            Some(w) => last_witness = Some(w),
        }
    }
    let (k, prefix_sum, bound) = match last_witness {
        Some(EgWitness::Prefix {
            k,
            prefix_sum,
            bound,
        }) => (k, prefix_sum, bound),
        // `evenize` guarantees an even sum, so a parity witness cannot
        // reach this path; degenerate fields keep the error total.
        Some(EgWitness::OddSum { sum }) => (0, sum, 0),
        None => unreachable!("max_attempts >= 1 and graphical draws return early"),
    };
    Err(crate::errors::GenError::NotGraphical {
        stage: "power-law degree sequence",
        attempts: max_attempts,
        k,
        prefix_sum,
        bound,
    })
}

/// Natural max-degree cutoff for an `n`-node power law with exponent
/// `alpha`: approximately `n^(1/(alpha-1))`, the expected maximum of `n`
/// i.i.d. Pareto draws.
pub fn natural_cutoff(n: usize, alpha: f64) -> usize {
    ((n as f64).powf(1.0 / (alpha - 1.0)).round() as usize).max(1)
}

/// Erdős–Gallai test: is the degree sequence realizable by some simple
/// graph? (Sum must be even and the k-prefix inequalities must hold.)
pub fn is_graphical(degrees: &[usize]) -> bool {
    erdos_gallai_witness(degrees).is_none()
}

/// Why a degree sequence fails the Erdős–Gallai test: the concrete
/// violated condition, suitable for error reports and for differential
/// checking against an independent realizability oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EgWitness {
    /// The degree sum is odd — no simple graph has an odd handshake
    /// total.
    OddSum {
        /// The offending (odd) degree sum.
        sum: usize,
    },
    /// The `k` largest degrees demand more edge endpoints than the
    /// `k`-clique plus the rest of the graph can supply:
    /// `Σ_{i≤k} d_i > k(k-1) + Σ_{i>k} min(d_i, k)`.
    Prefix {
        /// 1-based prefix length of the first failing inequality.
        k: usize,
        /// Sum of the `k` largest degrees (the left-hand side).
        prefix_sum: usize,
        /// The right-hand side the prefix sum exceeded.
        bound: usize,
    },
}

/// The first violated Erdős–Gallai condition of `degrees`, or `None`
/// when the sequence is graphical. A degree `≥ n` always surfaces as a
/// `k = 1` prefix violation (its bound tops out at `n - 1`).
pub fn erdos_gallai_witness(degrees: &[usize]) -> Option<EgWitness> {
    let n = degrees.len();
    if n == 0 {
        return None;
    }
    let mut d: Vec<usize> = degrees.to_vec();
    d.sort_unstable_by(|a, b| b.cmp(a));
    let sum: usize = d.iter().sum();
    if !sum.is_multiple_of(2) {
        return Some(EgWitness::OddSum { sum });
    }
    // Prefix sums for the left-hand side.
    let mut prefix = vec![0usize; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + d[i];
    }
    for k in 1..=n {
        let lhs = prefix[k];
        let mut rhs = k * (k - 1);
        for &di in &d[k..] {
            rhs += di.min(k);
        }
        if lhs > rhs {
            return Some(EgWitness::Prefix {
                k,
                prefix_sum: lhs,
                bound: rhs,
            });
        }
    }
    None
}

/// Make a degree sequence graphical by decrementing the largest degree
/// until the sum is even (the standard PLRG fix-up; changes at most one
/// entry by one). Degrees of zero are preserved.
pub fn evenize(degrees: &mut [usize]) {
    let sum: usize = degrees.iter().sum();
    if sum % 2 == 1 {
        if let Some(i) = (0..degrees.len()).max_by_key(|&i| degrees[i]) {
            if degrees[i] > 0 {
                degrees[i] -= 1;
            }
        }
    }
}

/// One point of a complementary cumulative distribution function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CcdfPoint {
    /// Degree value `k`.
    pub degree: usize,
    /// Fraction of nodes with degree ≥ `k`.
    pub fraction: f64,
}

/// Complementary cumulative degree distribution of a graph — the curves of
/// Appendix A (Figure 6): for each observed degree `k`, the fraction of
/// nodes with degree ≥ `k`. Sorted by degree ascending.
pub fn degree_ccdf(g: &Graph) -> Vec<CcdfPoint> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut degs: Vec<usize> = g.degrees();
    degs.sort_unstable();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        let k = degs[i];
        // Nodes with degree >= k are those from index i on... but we must
        // emit the fraction at each distinct k.
        out.push(CcdfPoint {
            degree: k,
            fraction: (n - i) as f64 / n as f64,
        });
        let mut j = i;
        while j < n && degs[j] == k {
            j += 1;
        }
        i = j;
    }
    out
}

/// Maximum-likelihood estimate of the power-law exponent `alpha` for a
/// discrete sample with `x >= x_min` (Clauset–Shalizi–Newman approximate
/// MLE: `1 + n / Σ ln(x_i / (x_min − ½))`). Returns `None` when fewer
/// than 10 samples qualify.
pub fn fit_power_law_exponent(degrees: &[usize], x_min: usize) -> Option<f64> {
    let xm = x_min.max(1) as f64;
    let tail: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d >= x_min.max(1))
        .map(|&d| d as f64)
        .collect();
    if tail.len() < 10 {
        return None;
    }
    let s: f64 = tail.iter().map(|&x| (x / (xm - 0.5)).ln()).sum();
    Some(1.0 + tail.len() as f64 / s)
}

/// Heavy-tail check used by the experiment harness: the ratio of the
/// maximum degree to the mean degree. Power-law graphs have ratios in the
/// tens-to-hundreds; exponential-tailed graphs (ER random, structural
/// generators) stay in single digits.
pub fn max_to_mean_degree_ratio(g: &Graph) -> f64 {
    let mean = g.average_degree();
    if mean == 0.0 {
        0.0
    } else {
        g.max_degree() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_sample_range_and_bias() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = power_law_degrees(20_000, 2.2, 100, &mut rng);
        assert!(d.iter().all(|&x| (1..=100).contains(&x)));
        // Degree 1 should dominate: for alpha=2.2, P(1)≈1/ζ(2.2)≈0.65.
        let ones = d.iter().filter(|&&x| x == 1).count() as f64 / d.len() as f64;
        assert!((0.55..0.80).contains(&ones), "P(deg=1) = {ones}");
        // And some mass must reach the tail.
        assert!(d.iter().any(|&x| x >= 20));
    }

    #[test]
    fn power_law_exponent_recovered() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = power_law_degrees(50_000, 2.5, 1000, &mut rng);
        let alpha = fit_power_law_exponent(&d, 2).unwrap();
        assert!((alpha - 2.5).abs() < 0.15, "fitted alpha = {alpha}");
    }

    #[test]
    #[should_panic]
    fn power_law_rejects_alpha_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = power_law_degrees(10, 1.0, 10, &mut rng);
    }

    #[test]
    fn graphical_sampling_accepts_reasonable_scales() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = power_law_degrees_graphical(500, 2.25, 50, 32, &mut rng).unwrap();
        assert!(is_graphical(&d));
        assert_eq!(d.len(), 500);
    }

    #[test]
    fn graphical_sampling_bounded_at_adversarial_scale() {
        // n = 2 with a degree cap of 5: any draw whose evenized max is
        // >= 2 fails Erdős–Gallai (degree >= n). With a budget of one
        // attempt, non-graphical draws must surface as a typed error
        // carrying the violated prefix inequality — scanning a handful
        // of seeds is guaranteed to hit one.
        let mut saw_not_graphical = false;
        for seed in 0..64 {
            let mut rng = StdRng::seed_from_u64(seed);
            match power_law_degrees_graphical(2, 1.1, 5, 1, &mut rng) {
                Ok(d) => assert!(is_graphical(&d)),
                Err(crate::errors::GenError::NotGraphical {
                    stage,
                    attempts,
                    k,
                    prefix_sum,
                    bound,
                }) => {
                    assert_eq!(stage, "power-law degree sequence");
                    assert_eq!(attempts, 1);
                    assert!(k >= 1, "witness must name a prefix, got k={k}");
                    assert!(
                        prefix_sum > bound,
                        "witness must be a genuine violation: {prefix_sum} <= {bound}"
                    );
                    saw_not_graphical = true;
                }
                Err(e) => panic!("unexpected error variant: {e}"),
            }
        }
        assert!(
            saw_not_graphical,
            "no seed in 0..64 produced a non-graphical draw"
        );
    }

    #[test]
    fn witness_agrees_with_is_graphical_and_recomputes() {
        // The witness is the reason `is_graphical` says no: absent iff
        // graphical, and its fields recompute from the sorted sequence.
        let cases: Vec<Vec<usize>> = vec![
            vec![],
            vec![0, 0],
            vec![1, 1],
            vec![3, 3, 3, 3],
            vec![1, 1, 1],          // odd sum
            vec![5, 1, 1, 1],       // k = 1 violation (degree >= n)
            vec![3, 3, 3, 1, 1, 1], // k = 3 violation
            vec![4, 4, 4, 4, 4],
        ];
        for d in cases {
            match erdos_gallai_witness(&d) {
                None => assert!(is_graphical(&d), "{d:?}"),
                Some(EgWitness::OddSum { sum }) => {
                    assert!(!is_graphical(&d));
                    assert_eq!(sum, d.iter().sum::<usize>());
                    assert!(sum % 2 == 1);
                }
                Some(EgWitness::Prefix {
                    k,
                    prefix_sum,
                    bound,
                }) => {
                    assert!(!is_graphical(&d));
                    let mut s = d.clone();
                    s.sort_unstable_by(|a, b| b.cmp(a));
                    let lhs: usize = s[..k].iter().sum();
                    let rhs: usize = k * (k - 1) + s[k..].iter().map(|&x| x.min(k)).sum::<usize>();
                    assert_eq!((prefix_sum, bound), (lhs, rhs), "{d:?} at k={k}");
                    assert!(prefix_sum > bound);
                }
            }
        }
    }

    #[test]
    fn graphical_sampling_rejects_bad_params() {
        use crate::errors::GenError;
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            power_law_degrees_graphical(10, 1.0, 5, 8, &mut rng),
            Err(GenError::BadParam { .. })
        ));
        assert!(matches!(
            power_law_degrees_graphical(10, 2.2, 0, 8, &mut rng),
            Err(GenError::BadParam { .. })
        ));
    }

    #[test]
    fn natural_cutoff_scales() {
        assert_eq!(natural_cutoff(10_000, 3.0), 100);
        assert!(natural_cutoff(10_000, 2.0) == 10_000);
        assert!(natural_cutoff(1, 2.5) >= 1);
    }

    #[test]
    fn graphical_known_cases() {
        assert!(is_graphical(&[])); // empty
        assert!(is_graphical(&[0, 0]));
        assert!(is_graphical(&[1, 1]));
        assert!(!is_graphical(&[1])); // odd sum
        assert!(is_graphical(&[2, 2, 2])); // triangle
        assert!(!is_graphical(&[3, 3])); // degree >= n
        assert!(is_graphical(&[3, 3, 3, 3])); // K4
        assert!(!is_graphical(&[4, 1, 1, 1])); // sum odd? 7 → odd, also infeasible
        assert!(is_graphical(&[4, 1, 1, 1, 1])); // star K_{1,4}
        assert!(!is_graphical(&[5, 5, 4, 1, 1])); // classic EG failure
    }

    #[test]
    fn evenize_fixes_parity() {
        let mut d = vec![3, 2, 2];
        evenize(&mut d);
        assert_eq!(d.iter().sum::<usize>() % 2, 0);
        assert_eq!(d, vec![2, 2, 2]);
        let mut e = vec![2, 2];
        evenize(&mut e);
        assert_eq!(e, vec![2, 2]); // untouched when already even
    }

    #[test]
    fn ccdf_star() {
        use topogen_graph::Graph;
        let g = Graph::from_edges(5, (1..5).map(|i| (0, i)));
        let c = degree_ccdf(&g);
        assert_eq!(
            c,
            vec![
                CcdfPoint {
                    degree: 1,
                    fraction: 1.0
                },
                CcdfPoint {
                    degree: 4,
                    fraction: 0.2
                },
            ]
        );
    }

    #[test]
    fn ccdf_monotone_nonincreasing() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = crate::canonical::random_gnp(300, 0.02, &mut rng);
        let c = degree_ccdf(&g);
        assert!(c.windows(2).all(|w| w[0].fraction >= w[1].fraction));
        assert!(c.windows(2).all(|w| w[0].degree < w[1].degree));
        assert_eq!(c.first().map(|p| p.fraction), Some(1.0));
    }

    #[test]
    fn ccdf_empty() {
        assert!(degree_ccdf(&Graph::empty(0)).is_empty());
    }

    #[test]
    fn fit_requires_samples() {
        assert_eq!(fit_power_law_exponent(&[5; 5], 1), None);
    }

    #[test]
    fn ratio_distinguishes_star_from_ring() {
        let star = Graph::from_edges(100, (1..100).map(|i| (0, i)));
        let ring = crate::canonical::ring(100);
        assert!(max_to_mean_degree_ratio(&star) > 10.0);
        assert!(max_to_mean_degree_ratio(&ring) < 2.0);
    }
}
