//! The Tiers structural generator (Doar \[14\]) — §3.1.2.
//!
//! Tiers models three levels of real network engineering: one WAN, a set
//! of MANs attached to it, and LANs hanging off each MAN. Every
//! non-LAN tier places its nodes in the plane, connects them with a
//! Euclidean *minimum spanning tree*, and then adds redundancy links "in
//! order of increasing inter-node Euclidean distance"; LANs are stars.
//! Inter-tier links attach each MAN to the WAN and each LAN to its MAN,
//! again with a configurable redundancy count.
//!
//! The geometric MST + nearest-neighbor redundancy is exactly why the
//! paper finds Tiers *mesh-like* in expansion (Figure 2(g)): its
//! connectivity is planar-geometric rather than random.
//!
//! Parameter vector order follows Appendix C: `W M L NW NM NL RW RM RL
//! RMW RLM` (number of WANs — fixed to 1 in the original tool — MANs per
//! WAN, LANs per MAN, nodes per tier, intra-network redundancies,
//! inter-network redundancies).

use rand::Rng;
use topogen_graph::geometry::{euclidean_mst, pairs_by_distance, Point};
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// Parameters for the Tiers generator, in the Appendix C order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TiersParams {
    /// Number of WANs (the original tool supports only 1).
    pub wans: usize,
    /// MANs per WAN.
    pub mans_per_wan: usize,
    /// LANs per MAN.
    pub lans_per_man: usize,
    /// Nodes per WAN.
    pub wan_nodes: usize,
    /// Nodes per MAN.
    pub man_nodes: usize,
    /// Nodes per LAN (including the LAN's hub).
    pub lan_nodes: usize,
    /// Intra-network redundancy for WAN nodes: each node is linked to its
    /// `RW` nearest neighbors (the MST provides the first links).
    pub wan_redundancy: usize,
    /// Intra-network redundancy for MAN nodes.
    pub man_redundancy: usize,
    /// Intra-network redundancy for LAN nodes (LANs are stars; values > 1
    /// add links between the star's leaves in distance order — rarely
    /// used).
    pub lan_redundancy: usize,
    /// Inter-network redundancy MAN→WAN: links from each MAN to the WAN.
    pub man_wan_redundancy: usize,
    /// Inter-network redundancy LAN→MAN: links from each LAN hub to its
    /// MAN.
    pub lan_man_redundancy: usize,
}

impl TiersParams {
    /// A 5000-node instance in the shape of the paper's Figure 1 row
    /// (1 WAN of 500 nodes, 50 MANs of 40 nodes, 10 LANs of 5 nodes per
    /// MAN; the printed redundancy values are not recoverable from the
    /// scan, so we use small redundancies that land on the reported
    /// average degree ≈ 2.8).
    pub fn paper_default() -> Self {
        TiersParams {
            wans: 1,
            mans_per_wan: 50,
            lans_per_man: 10,
            wan_nodes: 500,
            man_nodes: 40,
            lan_nodes: 5,
            wan_redundancy: 3,
            man_redundancy: 3,
            lan_redundancy: 1,
            man_wan_redundancy: 2,
            lan_man_redundancy: 1,
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.wans
            * (self.wan_nodes
                + self.mans_per_wan * (self.man_nodes + self.lans_per_man * self.lan_nodes))
    }
}

/// Tier of a node in a generated Tiers topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierRole {
    /// WAN backbone node.
    Wan,
    /// MAN node (with its MAN index).
    Man {
        /// MAN index.
        man: u32,
    },
    /// LAN node (hub or leaf) with its global LAN index.
    Lan {
        /// LAN index.
        lan: u32,
        /// Whether this node is the LAN's star hub.
        hub: bool,
    },
}

/// A Tiers topology plus annotations (§5's sanity check: "the highest
/// valued links in Tiers are in the WAN").
#[derive(Clone, Debug)]
pub struct TiersTopology {
    /// The generated graph (always connected).
    pub graph: Graph,
    /// Tier of each node.
    pub roles: Vec<TierRole>,
}

impl crate::generate::Generate for TiersParams {
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph {
        // Tiers is connected by construction (every network is an MST or
        // a star, every MAN/LAN uplinks at least once), so the full graph
        // is its own largest component — the paper's analysis graph.
        tiers_full(self, rng).graph
    }

    fn canonical_params(&self) -> String {
        format!(
            "wans={},mans_per_wan={},lans_per_man={},wan_nodes={},man_nodes={},lan_nodes={},\
             wan_redundancy={},man_redundancy={},lan_redundancy={},man_wan_redundancy={},\
             lan_man_redundancy={}",
            self.wans,
            self.mans_per_wan,
            self.lans_per_man,
            self.wan_nodes,
            self.man_nodes,
            self.lan_nodes,
            self.wan_redundancy,
            self.man_redundancy,
            self.lan_redundancy,
            self.man_wan_redundancy,
            self.lan_man_redundancy
        )
    }
}

/// Generate a Tiers *graph* — the analysis graph the paper measures.
///
/// This is the [`Generate`](crate::generate::Generate) entry point in
/// free-function form, consistent with the other generators. The richer
/// [`TiersTopology`] (graph plus per-node [`TierRole`] annotations, used
/// by the §5 hierarchy checks) remains available via [`tiers_full`].
///
/// # Panics
/// Panics if `wans != 1` (matching the original tool), or any count is 0.
pub fn tiers<R: Rng>(params: &TiersParams, rng: &mut R) -> Graph {
    use crate::generate::Generate as _;
    params.generate(rng)
}

/// Generate a full Tiers topology: the graph *and* the tier role of
/// every node.
///
/// # Panics
/// Panics if `wans != 1` (matching the original tool), or any count is 0.
pub fn tiers_full<R: Rng>(params: &TiersParams, rng: &mut R) -> TiersTopology {
    let p = *params;
    assert_eq!(p.wans, 1, "the Tiers tool supports exactly one WAN");
    assert!(p.wan_nodes >= 1 && p.man_nodes >= 1 && p.lan_nodes >= 1);
    let n = p.node_count();
    let mut b = GraphBuilder::new(n);
    let mut roles = Vec::with_capacity(n);

    // --- WAN ---
    let wan_pts: Vec<Point> = (0..p.wan_nodes)
        .map(|_| Point::new(rng.gen(), rng.gen()))
        .collect();
    let wan_ids: Vec<NodeId> = (0..p.wan_nodes as NodeId).collect();
    roles.extend(std::iter::repeat_n(TierRole::Wan, p.wan_nodes));
    mst_with_redundancy(&mut b, &wan_ids, &wan_pts, p.wan_redundancy);

    // --- MANs ---
    // Each MAN sits at a geographic location in the WAN's plane and
    // uplinks to the *nearest* WAN nodes (the original tool's placement;
    // attaching randomly instead would create small-world shortcuts and
    // destroy the mesh-like expansion the paper measures for Tiers).
    let mut next = p.wan_nodes;
    let mut man_ids_all: Vec<Vec<NodeId>> = Vec::with_capacity(p.mans_per_wan);
    for m in 0..p.mans_per_wan {
        let ids: Vec<NodeId> = (next..next + p.man_nodes).map(|v| v as NodeId).collect();
        next += p.man_nodes;
        roles.extend(std::iter::repeat_n(
            TierRole::Man { man: m as u32 },
            p.man_nodes,
        ));
        let center = Point::new(rng.gen(), rng.gen());
        // Intra-MAN geometry in a small disc around the center.
        let pts: Vec<Point> = (0..p.man_nodes)
            .map(|_| {
                Point::new(
                    center.x + 0.02 * (rng.gen::<f64>() - 0.5),
                    center.y + 0.02 * (rng.gen::<f64>() - 0.5),
                )
            })
            .collect();
        mst_with_redundancy(&mut b, &ids, &pts, p.man_redundancy);
        // Uplinks: the WAN nodes nearest to the MAN's location.
        let links = p.man_wan_redundancy.max(1);
        let mut order: Vec<usize> = (0..wan_pts.len()).collect();
        order.sort_by(|&a, &c| {
            wan_pts[a]
                .dist2(&center)
                .partial_cmp(&wan_pts[c].dist2(&center))
                .unwrap()
        });
        for k in 0..links.min(order.len()) {
            let u = ids[rng.gen_range(0..ids.len())];
            b.add_edge(u, wan_ids[order[k]]);
        }
        man_ids_all.push(ids);
    }

    // --- LANs ---
    let mut lan_idx = 0u32;
    for man_ids in &man_ids_all {
        for _ in 0..p.lans_per_man {
            let hub = next as NodeId;
            let ids: Vec<NodeId> = (next..next + p.lan_nodes).map(|v| v as NodeId).collect();
            next += p.lan_nodes;
            roles.push(TierRole::Lan {
                lan: lan_idx,
                hub: true,
            });
            roles.extend(std::iter::repeat_n(
                TierRole::Lan {
                    lan: lan_idx,
                    hub: false,
                },
                p.lan_nodes - 1,
            ));
            // Star topology around the hub.
            for &leaf in &ids[1..] {
                b.add_edge(hub, leaf);
            }
            // LAN → MAN uplinks from the hub.
            let links = p.lan_man_redundancy.max(1);
            for _ in 0..links {
                let v = man_ids[rng.gen_range(0..man_ids.len())];
                b.add_edge(hub, v);
            }
            lan_idx += 1;
        }
    }
    debug_assert_eq!(next, n);

    TiersTopology {
        graph: b.build(),
        roles,
    }
}

/// Fallible Tiers: validates the parameter vector and returns
/// [`GenError::BadParam`](crate::errors::GenError::BadParam) instead of
/// panicking. Tiers' construction itself is feasibility-deterministic —
/// every network is an MST or a star, so unlike Transit-Stub there is no
/// stochastic connectivity loop to bound — which makes parameter
/// validation the only failure mode.
pub fn try_tiers_full<R: Rng>(
    params: &TiersParams,
    rng: &mut R,
) -> Result<TiersTopology, crate::errors::GenError> {
    use crate::errors::GenError;
    if params.wans != 1 {
        return Err(GenError::BadParam {
            what: format!(
                "the Tiers tool supports exactly one WAN, got {}",
                params.wans
            ),
        });
    }
    if params.wan_nodes < 1 || params.man_nodes < 1 || params.lan_nodes < 1 {
        return Err(GenError::BadParam {
            what: "nodes per WAN/MAN/LAN must all be at least 1".into(),
        });
    }
    Ok(tiers_full(params, rng))
}

/// Connect `ids` with the Euclidean MST of `pts`, then raise redundancy:
/// iterate node pairs in order of increasing distance and add a link
/// whenever either endpoint still has fewer than `redundancy` links
/// within this network (the MST links count toward the quota).
fn mst_with_redundancy(b: &mut GraphBuilder, ids: &[NodeId], pts: &[Point], redundancy: usize) {
    debug_assert_eq!(ids.len(), pts.len());
    let k = ids.len();
    if k == 0 {
        return;
    }
    let mut local_deg = vec![0usize; k];
    let mut present = std::collections::HashSet::new();
    for (a, c) in euclidean_mst(pts) {
        b.add_edge(ids[a as usize], ids[c as usize]);
        local_deg[a as usize] += 1;
        local_deg[c as usize] += 1;
        present.insert((a.min(c), a.max(c)));
    }
    if redundancy <= 1 || k < 3 {
        return;
    }
    for (a, c) in pairs_by_distance(pts) {
        let key = (a.min(c), a.max(c));
        if present.contains(&key) {
            continue;
        }
        if local_deg[a as usize] < redundancy && local_deg[c as usize] < redundancy {
            b.add_edge(ids[a as usize], ids[c as usize]);
            local_deg[a as usize] += 1;
            local_deg[c as usize] += 1;
            present.insert(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::is_connected;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(123)
    }

    #[test]
    fn paper_instance_counts_and_connectivity() {
        let p = TiersParams::paper_default();
        assert_eq!(p.node_count(), 5000);
        let g = tiers(&p, &mut rng());
        assert_eq!(g.node_count(), 5000);
        assert!(is_connected(&g));
        // Figure 1 reports 2.83.
        let avg = g.average_degree();
        assert!((2.2..3.4).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn graph_entry_point_matches_full_topology() {
        let p = TiersParams::paper_default();
        let g = tiers(&p, &mut StdRng::seed_from_u64(8));
        let t = tiers_full(&p, &mut StdRng::seed_from_u64(8));
        assert_eq!(g.edges(), t.graph.edges());
    }

    #[test]
    fn role_counts() {
        let t = tiers_full(&TiersParams::paper_default(), &mut rng());
        let wan = t
            .roles
            .iter()
            .filter(|r| matches!(r, TierRole::Wan))
            .count();
        let man = t
            .roles
            .iter()
            .filter(|r| matches!(r, TierRole::Man { .. }))
            .count();
        let hubs = t
            .roles
            .iter()
            .filter(|r| matches!(r, TierRole::Lan { hub: true, .. }))
            .count();
        assert_eq!(wan, 500);
        assert_eq!(man, 2000);
        assert_eq!(hubs, 500);
    }

    #[test]
    fn lan_leaves_have_degree_one() {
        let t = tiers_full(&TiersParams::paper_default(), &mut rng());
        for v in t.graph.nodes() {
            if matches!(t.roles[v as usize], TierRole::Lan { hub: false, .. }) {
                assert_eq!(t.graph.degree(v), 1, "LAN leaf {v}");
            }
        }
    }

    #[test]
    fn redundancy_increases_edges() {
        let mut hi = TiersParams::paper_default();
        hi.wan_redundancy = 4;
        hi.man_redundancy = 4;
        let base = tiers(&TiersParams::paper_default(), &mut StdRng::seed_from_u64(1));
        let dense = tiers(&hi, &mut StdRng::seed_from_u64(1));
        assert!(dense.edge_count() > base.edge_count());
    }

    #[test]
    fn minimal_instance() {
        let p = TiersParams {
            wans: 1,
            mans_per_wan: 1,
            lans_per_man: 1,
            wan_nodes: 3,
            man_nodes: 2,
            lan_nodes: 2,
            wan_redundancy: 1,
            man_redundancy: 1,
            lan_redundancy: 1,
            man_wan_redundancy: 1,
            lan_man_redundancy: 1,
        };
        assert_eq!(p.node_count(), 7);
        let g = tiers(&p, &mut rng());
        assert!(is_connected(&g));
    }

    #[test]
    fn deterministic() {
        let p = TiersParams::paper_default();
        let a = tiers(&p, &mut StdRng::seed_from_u64(4));
        let b = tiers(&p, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    #[should_panic]
    fn multiple_wans_rejected() {
        let mut p = TiersParams::paper_default();
        p.wans = 2;
        let _ = tiers(&p, &mut rng());
    }
}
