//! The unified generator API: the [`Generate`] trait.
//!
//! Every generator in this crate historically exposed a free function
//! with its own return type (`Graph`, `TiersTopology`,
//! `TransitStubTopology`, …) and its own connectivity caveats. The
//! [`Generate`] trait unifies them behind a single entry point with a
//! single contract:
//!
//! > `params.generate(rng)` returns the **analysis graph** — the graph
//! > the paper's methodology measures. For generators that may produce
//! > disconnected output (Waxman, PLRG, GLP, Inet, Albert–Barabási,
//! > the flat edge methods) this is the largest connected component;
//! > generators that are connected by construction (B-A, BRITE,
//! > Transit-Stub, Tiers, N-level) return the full graph.
//!
//! The free functions remain available and unchanged in semantics (raw
//! generator output, hierarchy annotations where the model has them) so
//! callers can migrate incrementally. Migration example:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use topogen_generators::ba::{barabasi_albert, BaParams};
//! use topogen_generators::Generate;
//!
//! let p = BaParams { n: 200, m: 2 };
//! let mut rng = StdRng::seed_from_u64(7);
//! // Before: per-generator free function…
//! let g1 = barabasi_albert(&p, &mut StdRng::seed_from_u64(7));
//! // After: the uniform trait entry point.
//! let g2 = p.generate(&mut rng);
//! assert_eq!(g1.edges(), g2.edges());
//! ```
//!
//! The trait is deliberately *not* object-safe (`generate` is generic
//! over the RNG, mirroring every free function in this crate): callers
//! that need dynamic dispatch over topology kinds should use
//! `topogen_core::zoo::TopologySpec`, which builds on this trait.

use rand::Rng;
use topogen_graph::Graph;

/// A parameter struct that can generate its topology's analysis graph.
///
/// See the [module documentation](self) for the exact contract; the
/// short version is that the returned graph is always the one the
/// paper's metrics run on (largest connected component when the raw
/// model output may be disconnected).
pub trait Generate {
    /// Generate the analysis graph deterministically from `rng`.
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph;

    /// A canonical, deterministic rendering of this parameter set —
    /// `name=value` pairs in declaration order, floats in `{:?}`
    /// (shortest round-trip) form so the same `f64` always prints the
    /// same bytes. The artifact store folds this string into cache
    /// keys, so two parameter sets map to the same entry **iff** they
    /// generate the same distribution.
    fn canonical_params(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ba::{barabasi_albert, AlbertBarabasiParams, BaParams};
    use crate::brite::BriteParams;
    use crate::flat::{EdgeMethod, FlatParams};
    use crate::glp::GlpParams;
    use crate::inet::InetParams;
    use crate::nlevel::NLevelParams;
    use crate::plrg::{plrg, PlrgParams};
    use crate::tiers::TiersParams;
    use crate::transit_stub::TransitStubParams;
    use crate::waxman::WaxmanParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::{is_connected, largest_component};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// The trait contract: every implementor returns a connected graph.
    #[test]
    fn every_implementor_returns_connected_analysis_graph() {
        let graphs: Vec<(&str, Graph)> = vec![
            ("ba", BaParams { n: 300, m: 2 }.generate(&mut rng())),
            (
                "ab",
                AlbertBarabasiParams {
                    n: 300,
                    m: 2,
                    p: 0.2,
                    q: 0.2,
                }
                .generate(&mut rng()),
            ),
            (
                "brite",
                BriteParams::paper_default(300).generate(&mut rng()),
            ),
            ("glp", GlpParams::paper_as_fit(300).generate(&mut rng())),
            ("inet", InetParams::paper_default(400).generate(&mut rng())),
            (
                "plrg",
                PlrgParams {
                    n: 400,
                    alpha: 2.1,
                    max_degree: None,
                }
                .generate(&mut rng()),
            ),
            ("tiers", small_tiers().generate(&mut rng())),
            (
                "ts",
                TransitStubParams::paper_default().generate(&mut rng()),
            ),
            (
                "nlevel",
                NLevelParams::three_level_1000().generate(&mut rng()),
            ),
            (
                "waxman",
                WaxmanParams {
                    n: 400,
                    alpha: 0.05,
                    beta: 0.3,
                }
                .generate(&mut rng()),
            ),
            (
                "flat",
                FlatParams {
                    n: 300,
                    method: EdgeMethod::Locality {
                        alpha: 0.2,
                        beta: 0.002,
                        radius: 0.2,
                    },
                }
                .generate(&mut rng()),
            ),
        ];
        for (name, g) in graphs {
            assert!(g.node_count() > 50, "{name}: only {} nodes", g.node_count());
            assert!(is_connected(&g), "{name}: disconnected analysis graph");
        }
    }

    fn small_tiers() -> TiersParams {
        TiersParams {
            mans_per_wan: 5,
            lans_per_man: 4,
            wan_nodes: 60,
            man_nodes: 10,
            lan_nodes: 4,
            ..TiersParams::paper_default()
        }
    }

    /// Trait calls match the free-function + largest-component recipe
    /// bit-for-bit from the same seed.
    #[test]
    fn trait_matches_free_function_composition() {
        let p = PlrgParams {
            n: 500,
            alpha: 2.2,
            max_degree: None,
        };
        let via_trait = p.generate(&mut StdRng::seed_from_u64(9));
        let via_fn = largest_component(&plrg(&p, &mut StdRng::seed_from_u64(9))).0;
        assert_eq!(via_trait.edges(), via_fn.edges());

        let b = BaParams { n: 250, m: 3 };
        let via_trait = b.generate(&mut StdRng::seed_from_u64(9));
        let via_fn = barabasi_albert(&b, &mut StdRng::seed_from_u64(9));
        assert_eq!(via_trait.edges(), via_fn.edges());
    }

    /// Canonical params are deterministic, distinguish different
    /// parameter sets, and render floats in shortest round-trip form.
    #[test]
    fn canonical_params_deterministic_and_distinct() {
        let a = WaxmanParams {
            n: 400,
            alpha: 0.05,
            beta: 0.3,
        };
        assert_eq!(a.canonical_params(), "n=400,alpha=0.05,beta=0.3");
        assert_eq!(a.canonical_params(), a.canonical_params());
        let b = WaxmanParams { beta: 0.31, ..a };
        assert_ne!(a.canonical_params(), b.canonical_params());

        assert_eq!(BaParams { n: 300, m: 2 }.canonical_params(), "n=300,m=2");
        assert_eq!(
            PlrgParams {
                n: 400,
                alpha: 2.1,
                max_degree: None
            }
            .canonical_params(),
            "n=400,alpha=2.1,max_degree=none"
        );
        // Every implementor produces non-empty `name=value` output.
        let all = vec![
            AlbertBarabasiParams {
                n: 300,
                m: 2,
                p: 0.2,
                q: 0.2,
            }
            .canonical_params(),
            BriteParams::paper_default(300).canonical_params(),
            GlpParams::paper_as_fit(300).canonical_params(),
            InetParams::paper_default(400).canonical_params(),
            small_tiers().canonical_params(),
            TransitStubParams::paper_default().canonical_params(),
            NLevelParams::three_level_1000().canonical_params(),
            FlatParams {
                n: 300,
                method: EdgeMethod::DoarLeslie {
                    ke: 20.0,
                    beta: 0.9,
                },
            }
            .canonical_params(),
        ];
        for p in all {
            assert!(p.contains('='), "{p}");
            assert!(!p.contains('|'), "key-separator char in params: {p}");
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let p = WaxmanParams {
            n: 300,
            alpha: 0.05,
            beta: 0.3,
        };
        let a = p.generate(&mut StdRng::seed_from_u64(3));
        let b = p.generate(&mut StdRng::seed_from_u64(3));
        assert_eq!(a.edges(), b.edges());
    }
}
