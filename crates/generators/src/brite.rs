//! A BRITE v1.0-style generator (Medina, Lakhina, Matta, Byers \[28\]).
//!
//! BRITE places nodes on a plane — uniformly or with a heavy-tailed
//! per-square density — and grows the network incrementally, joining each
//! new node to `m` existing nodes with probability proportional to their
//! degree, optionally damped by a Waxman distance factor. The paper used
//! "a heavy-tailed option when generating a network in our study" without
//! the geographic-bias feature; both options are exposed here.

use rand::Rng;
use topogen_graph::geometry::Point;
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// Node placement strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Uniform over the unit square.
    Random,
    /// Heavy-tailed: the plane is divided into `squares × squares` cells
    /// and each cell receives a Pareto-distributed share of nodes — the
    /// "HT" placement the paper selected.
    HeavyTailed {
        /// Grid resolution (BRITE's "HS" parameter); 10–30 is typical.
        squares: usize,
    },
}

/// Parameters for the BRITE-like generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BriteParams {
    /// Final number of nodes.
    pub n: usize,
    /// Links per joining node (BRITE's `m`).
    pub m: usize,
    /// Node placement strategy.
    pub placement: Placement,
    /// Optional Waxman geographic damping `(alpha, beta)`; `None`
    /// reproduces the paper's configuration (pure preferential
    /// connectivity).
    pub waxman_bias: Option<(f64, f64)>,
}

impl BriteParams {
    /// The configuration the paper ran: heavy-tailed placement,
    /// incremental preferential attachment, no geographic bias.
    pub fn paper_default(n: usize) -> Self {
        BriteParams {
            n,
            m: 2,
            placement: Placement::HeavyTailed { squares: 20 },
            waxman_bias: None,
        }
    }
}

/// Generate a BRITE-style graph. Always connected (incremental growth
/// attaches every node to the existing component).
///
/// # Panics
/// Panics if `m == 0` or `n < 2`.
pub fn brite<R: Rng>(params: &BriteParams, rng: &mut R) -> Graph {
    let BriteParams {
        n,
        m,
        placement,
        waxman_bias,
    } = *params;
    assert!(m >= 1);
    assert!(n >= 2);
    let points = place_nodes(n, placement, rng);
    let mut b = GraphBuilder::new(n);
    let mut degree: Vec<f64> = vec![0.0; n];
    // Seed: connect node 1 to node 0.
    b.add_edge(0, 1);
    degree[0] = 1.0;
    degree[1] = 1.0;
    let max_dist = 2f64.sqrt();
    for v in 2..n {
        let vid = v as NodeId;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        let want = m.min(v);
        let mut guard = 0usize;
        while chosen.len() < want && guard < 200 * (m + 1) {
            guard += 1;
            // Weight: degree (+1 smoothing), optionally × Waxman factor.
            let weight = |u: usize| -> f64 {
                let pref = degree[u] + 1.0;
                match waxman_bias {
                    None => pref,
                    Some((alpha, beta)) => {
                        let d = points[v].dist(&points[u]);
                        pref * alpha * (-d / (beta * max_dist)).exp()
                    }
                }
            };
            let total: f64 = (0..v).map(weight).sum();
            let mut r = rng.gen::<f64>() * total;
            let mut pick = v - 1;
            for u in 0..v {
                r -= weight(u);
                if r <= 0.0 {
                    pick = u;
                    break;
                }
            }
            let t = pick as NodeId;
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(vid, t);
            degree[v] += 1.0;
            degree[t as usize] += 1.0;
        }
    }
    b.build()
}

impl crate::generate::Generate for BriteParams {
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph {
        // Incremental growth keeps the graph connected by construction.
        brite(self, rng)
    }

    fn canonical_params(&self) -> String {
        let placement = match self.placement {
            Placement::Random => "random".to_string(),
            Placement::HeavyTailed { squares } => format!("ht({squares})"),
        };
        let bias = match self.waxman_bias {
            None => "none".to_string(),
            Some((alpha, beta)) => format!("({alpha:?},{beta:?})"),
        };
        format!(
            "n={},m={},placement={placement},waxman_bias={bias}",
            self.n, self.m
        )
    }
}

/// Place `n` nodes per the requested strategy.
pub fn place_nodes<R: Rng>(n: usize, placement: Placement, rng: &mut R) -> Vec<Point> {
    match placement {
        Placement::Random => (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect(),
        Placement::HeavyTailed { squares } => {
            let squares = squares.max(1);
            // Pareto weight per cell, then multinomial split of n.
            let cells = squares * squares;
            let weights: Vec<f64> = (0..cells)
                .map(|_| {
                    // Pareto(1, 1): 1 / U.
                    1.0 / rng.gen::<f64>().max(1e-12)
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let mut r = rng.gen::<f64>() * total;
                let mut cell = cells - 1;
                for (c, &w) in weights.iter().enumerate() {
                    r -= w;
                    if r <= 0.0 {
                        cell = c;
                        break;
                    }
                }
                let cx = (cell % squares) as f64;
                let cy = (cell / squares) as f64;
                let s = squares as f64;
                points.push(Point::new(
                    (cx + rng.gen::<f64>()) / s,
                    (cy + rng.gen::<f64>()) / s,
                ));
            }
            points
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::is_connected;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn brite_connected_and_sized() {
        let g = brite(&BriteParams::paper_default(1500), &mut rng());
        assert_eq!(g.node_count(), 1500);
        assert!(is_connected(&g));
        // m=2 growth → ~2 edges per node.
        assert!((g.average_degree() - 4.0).abs() < 1.0);
    }

    #[test]
    fn brite_heavy_tail() {
        let g = brite(&BriteParams::paper_default(4000), &mut rng());
        assert!(g.max_degree() > 40, "max degree {}", g.max_degree());
    }

    #[test]
    fn brite_with_waxman_bias_connected() {
        let p = BriteParams {
            n: 800,
            m: 2,
            placement: Placement::Random,
            waxman_bias: Some((0.15, 0.2)),
        };
        let g = brite(&p, &mut rng());
        assert!(is_connected(&g));
    }

    #[test]
    fn brite_deterministic() {
        let p = BriteParams::paper_default(300);
        let g1 = brite(&p, &mut StdRng::seed_from_u64(2));
        let g2 = brite(&p, &mut StdRng::seed_from_u64(2));
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn heavy_tailed_placement_is_clustered() {
        // Under heavy-tailed placement the busiest cell holds far more
        // than the uniform share of nodes.
        let squares = 10usize;
        let pts = place_nodes(5000, Placement::HeavyTailed { squares }, &mut rng());
        let mut counts = vec![0usize; squares * squares];
        for p in &pts {
            let cx = ((p.x * squares as f64) as usize).min(squares - 1);
            let cy = ((p.y * squares as f64) as usize).min(squares - 1);
            counts[cy * squares + cx] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let uniform_share = 5000 / (squares * squares);
        assert!(
            max > 4 * uniform_share,
            "max cell {max} vs uniform {uniform_share}"
        );
    }

    #[test]
    fn random_placement_in_unit_square() {
        let pts = place_nodes(100, Placement::Random, &mut rng());
        assert!(pts
            .iter()
            .all(|p| (0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y)));
    }

    #[test]
    #[should_panic]
    fn brite_rejects_tiny_n() {
        let _ = brite(
            &BriteParams {
                n: 1,
                m: 1,
                placement: Placement::Random,
                waxman_bias: None,
            },
            &mut rng(),
        );
    }
}
