//! GT-ITM's N-level hierarchical generator (Zegura, Calvert, Donahoo
//! \[50\]; Calvert, Doar, Zegura \[10\]).
//!
//! The paper's structural family has three members in GT-ITM: flat
//! random graphs, the N-level hierarchy, and Transit-Stub. Zegura et
//! al.'s quantitative comparison — the work the paper explicitly extends
//! — used the N-level model, so we include it for completeness: start
//! from a connected random graph, then repeatedly replace every node
//! with another connected random graph, re-attaching each inter-node
//! edge to a random member of the replacement.
//!
//! The result is hierarchical in construction like Transit-Stub but
//! without TS's transit/stub asymmetry; under the paper's metrics it
//! behaves like TS (low resilience — each level's sparse edge cut
//! throttles alternate paths).

use rand::Rng;
use topogen_graph::unionfind::UnionFind;
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// Parameters for the N-level generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NLevelParams {
    /// Nodes per level-graph (each node of level k expands into a
    /// `nodes_per_level`-node random graph at level k+1).
    pub nodes_per_level: usize,
    /// Edge probability within each level-graph.
    pub edge_prob: f64,
    /// Number of levels (1 = a flat connected random graph).
    pub levels: usize,
}

impl NLevelParams {
    /// A three-level instance comparable to the paper's TS size:
    /// 10 × 10 × 10 = 1000 nodes, with block density in the range the
    /// GT-ITM examples use (sparse blocks, like TS's stub domains).
    pub fn three_level_1000() -> Self {
        NLevelParams {
            nodes_per_level: 10,
            edge_prob: 0.4,
            levels: 3,
        }
    }

    /// Total node count: `nodes_per_level ^ levels`.
    pub fn node_count(&self) -> usize {
        self.nodes_per_level.pow(self.levels as u32)
    }
}

/// Generate an N-level hierarchical graph. Always connected (each
/// level-graph is patched connected, as in our Transit-Stub).
///
/// # Panics
/// Panics if `levels == 0` or `nodes_per_level == 0`.
pub fn n_level<R: Rng>(params: &NLevelParams, rng: &mut R) -> Graph {
    assert!(params.levels >= 1);
    assert!(params.nodes_per_level >= 1);
    // Level 1: one connected random graph.
    let mut current = connected_random(params.nodes_per_level, params.edge_prob, rng);
    for _ in 1..params.levels {
        current = expand(&current, params, rng);
    }
    current
}

impl crate::generate::Generate for NLevelParams {
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph {
        // Every level-graph is patched connected, so the whole is too.
        n_level(self, rng)
    }

    fn canonical_params(&self) -> String {
        format!(
            "nodes_per_level={},edge_prob={:?},levels={}",
            self.nodes_per_level, self.edge_prob, self.levels
        )
    }
}

/// Replace every node of `g` with a fresh connected random graph,
/// re-attaching each original edge between random members of the two
/// replacement blocks.
fn expand<R: Rng>(g: &Graph, params: &NLevelParams, rng: &mut R) -> Graph {
    let k = params.nodes_per_level;
    let n = g.node_count() * k;
    let mut b = GraphBuilder::new(n);
    let block = |v: NodeId, i: usize| v * k as NodeId + i as NodeId;
    // Intra-block random graphs.
    for v in g.nodes() {
        let members: Vec<NodeId> = (0..k).map(|i| block(v, i)).collect();
        random_block(&mut b, &members, params.edge_prob, rng);
    }
    // Original edges re-attached to random members.
    for e in g.edges() {
        let u = block(e.a, rng.gen_range(0..k));
        let v = block(e.b, rng.gen_range(0..k));
        b.add_edge(u, v);
    }
    b.build()
}

fn connected_random<R: Rng>(k: usize, prob: f64, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(k);
    let members: Vec<NodeId> = (0..k as NodeId).collect();
    random_block(&mut b, &members, prob, rng);
    b.build()
}

/// G(k, prob) over `members`, patched connected (same policy as the
/// Transit-Stub blocks).
fn random_block<R: Rng>(b: &mut GraphBuilder, members: &[NodeId], prob: f64, rng: &mut R) {
    let k = members.len();
    let mut uf = UnionFind::new(k);
    for i in 0..k {
        for j in (i + 1)..k {
            if rng.gen::<f64>() < prob {
                b.add_edge(members[i], members[j]);
                uf.union(i as u32, j as u32);
            }
        }
    }
    for i in 1..k {
        if !uf.same(0, i as u32) {
            uf.union(0, i as u32);
            let other = rng.gen_range(0..i);
            b.add_edge(members[other], members[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::is_connected;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(50)
    }

    #[test]
    fn node_count_formula() {
        let p = NLevelParams::three_level_1000();
        assert_eq!(p.node_count(), 1000);
        let g = n_level(&p, &mut rng());
        assert_eq!(g.node_count(), 1000);
        assert!(is_connected(&g));
    }

    #[test]
    fn one_level_is_flat_random() {
        let p = NLevelParams {
            nodes_per_level: 40,
            edge_prob: 0.1,
            levels: 1,
        };
        let g = n_level(&p, &mut rng());
        assert_eq!(g.node_count(), 40);
        assert!(is_connected(&g));
    }

    #[test]
    fn hierarchy_throttles_cross_block_edges() {
        // At the top level there are at most C(k,2)·p + patching edges
        // between blocks, far fewer than the intra-block total.
        let p = NLevelParams {
            nodes_per_level: 8,
            edge_prob: 0.35,
            levels: 2,
        };
        let g = n_level(&p, &mut rng());
        let k = 8u32;
        let cross = g.edges().iter().filter(|e| e.a / k != e.b / k).count();
        // Cross edges = the level-1 graph's edge count ≤ C(8,2) = 28,
        // and in expectation ≈ 10.
        assert!(cross <= 28, "cross-block edges {cross}");
        assert!(cross >= 7, "level-1 graph must be connected: {cross}");
    }

    #[test]
    fn deterministic() {
        let p = NLevelParams::three_level_1000();
        let a = n_level(&p, &mut StdRng::seed_from_u64(1));
        let b = n_level(&p, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    #[should_panic]
    fn zero_levels_rejected() {
        let p = NLevelParams {
            nodes_per_level: 4,
            edge_prob: 0.5,
            levels: 0,
        };
        let _ = n_level(&p, &mut rng());
    }
}
