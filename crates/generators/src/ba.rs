//! Barabási–Albert preferential attachment \[4\] and the Albert–Barabási
//! extended model with link addition and rewiring \[2\].
//!
//! The B-A model grows the graph one node at a time; each new node
//! attaches `m` links to existing nodes with probability proportional to
//! their current degree. The extended model interleaves growth with two
//! local events: with probability `p` add `m` links between existing
//! nodes (one endpoint uniform, the other preferential), with probability
//! `q` rewire `m` existing links preferentially, and otherwise grow as in
//! plain B-A. Appendix D.1 uses both as alternative connectivity methods
//! for power-law graphs.

use rand::Rng;
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// Parameters for the plain B-A model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaParams {
    /// Final number of nodes.
    pub n: usize,
    /// Links added per new node (also the size of the initial clique).
    pub m: usize,
}

/// Grow a Barabási–Albert graph: start from an `m`-node connected seed
/// (a clique keeps early attachment well-defined) and attach each new
/// node with `m` preferential links. Always connected.
///
/// # Panics
/// Panics if `m == 0` or `n < m`.
pub fn barabasi_albert<R: Rng>(params: &BaParams, rng: &mut R) -> Graph {
    let BaParams { n, m } = *params;
    assert!(m >= 1, "BA needs m >= 1");
    assert!(n >= m.max(2), "n must be at least max(m, 2)");
    let mut b = GraphBuilder::new(n);
    // `targets` holds one entry per degree unit — sampling uniformly from
    // it is exactly degree-proportional sampling.
    let mut stubs: Vec<NodeId> = Vec::with_capacity(4 * n * m);
    let seed = m.max(2).min(n);
    for i in 0..seed {
        for j in (i + 1)..seed {
            b.add_edge(i as NodeId, j as NodeId);
            stubs.push(i as NodeId);
            stubs.push(j as NodeId);
        }
    }
    for v in seed..n {
        let v = v as NodeId;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        let mut guard = 0usize;
        while chosen.len() < m && guard < 100 * (m + 1) {
            guard += 1;
            let t = stubs[rng.gen_range(0..stubs.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(v, t);
            stubs.push(v);
            stubs.push(t);
        }
    }
    b.build()
}

impl crate::generate::Generate for BaParams {
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph {
        barabasi_albert(self, rng)
    }

    fn canonical_params(&self) -> String {
        format!("n={},m={}", self.n, self.m)
    }
}

/// Parameters for the Albert–Barabási extended model \[2\].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlbertBarabasiParams {
    /// Final number of nodes.
    pub n: usize,
    /// Links manipulated per event.
    pub m: usize,
    /// Probability of a link-addition event.
    pub p: f64,
    /// Probability of a rewiring event (`p + q < 1`; the rest grows).
    pub q: f64,
}

/// The Albert–Barabási "local events and universality" model: growth
/// interleaved with preferential link addition and rewiring.
///
/// # Panics
/// Panics on invalid probabilities (`p + q >= 1`) or `m == 0`.
pub fn albert_barabasi<R: Rng>(params: &AlbertBarabasiParams, rng: &mut R) -> Graph {
    let AlbertBarabasiParams { n, m, p, q } = *params;
    assert!(m >= 1);
    assert!(p >= 0.0 && q >= 0.0 && p + q < 1.0, "need p + q < 1");
    // Maintain an explicit adjacency to support rewiring.
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut degree: Vec<usize> = vec![0; n];
    let seed = (m + 1).min(n);
    let mut active = seed; // nodes 0..active exist
    let add = |adj: &mut Vec<Vec<NodeId>>, degree: &mut Vec<usize>, u: NodeId, v: NodeId| {
        adj[u as usize].push(v);
        adj[v as usize].push(u);
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    };
    for i in 0..seed {
        for j in (i + 1)..seed {
            add(&mut adj, &mut degree, i as NodeId, j as NodeId);
        }
    }
    // Preferential pick among nodes 0..active using "degree + 1" weights
    // (the model's smoothing so isolated nodes stay reachable).
    fn pick_pref<R: Rng>(degree: &[usize], active: usize, rng: &mut R) -> NodeId {
        let total: usize = degree[..active].iter().map(|&d| d + 1).sum();
        let mut r = rng.gen_range(0..total);
        for (v, &d) in degree[..active].iter().enumerate() {
            let w = d + 1;
            if r < w {
                return v as NodeId;
            }
            r -= w;
        }
        (active - 1) as NodeId
    }

    while active < n {
        let roll: f64 = rng.gen();
        if roll < p {
            // Add m links: one end uniform, other preferential.
            for _ in 0..m {
                let u = rng.gen_range(0..active) as NodeId;
                let v = pick_pref(&degree, active, rng);
                if u != v && !adj[u as usize].contains(&v) {
                    add(&mut adj, &mut degree, u, v);
                }
            }
        } else if roll < p + q {
            // Rewire m links: detach a random end of a random link from a
            // uniform node, re-attach preferentially.
            for _ in 0..m {
                let u = rng.gen_range(0..active) as NodeId;
                if adj[u as usize].is_empty() {
                    continue;
                }
                let k = rng.gen_range(0..adj[u as usize].len());
                let old = adj[u as usize][k];
                let newt = pick_pref(&degree, active, rng);
                if newt != u && newt != old && !adj[u as usize].contains(&newt) {
                    // Remove (u, old).
                    adj[u as usize].swap_remove(k);
                    let pos = adj[old as usize].iter().position(|&x| x == u).unwrap();
                    adj[old as usize].swap_remove(pos);
                    degree[old as usize] -= 1;
                    degree[u as usize] -= 1;
                    add(&mut adj, &mut degree, u, newt);
                }
            }
        } else {
            // Growth: new node with m preferential links.
            let v = active as NodeId;
            active += 1;
            let mut added = 0usize;
            let mut guard = 0usize;
            while added < m && guard < 100 * (m + 1) {
                guard += 1;
                let t = pick_pref(&degree, active - 1, rng);
                if t != v && !adj[v as usize].contains(&t) {
                    add(&mut adj, &mut degree, v, t);
                    added += 1;
                }
            }
        }
    }
    let mut b = GraphBuilder::new(n);
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            if (u as NodeId) < v {
                b.add_edge(u as NodeId, v);
            }
        }
    }
    b.build()
}

impl crate::generate::Generate for AlbertBarabasiParams {
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph {
        // Rewiring can strand nodes; analyze the largest component.
        topogen_graph::components::largest_component(&albert_barabasi(self, rng)).0
    }

    fn canonical_params(&self) -> String {
        format!("n={},m={},p={:?},q={:?}", self.n, self.m, self.p, self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::is_connected;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(23)
    }

    #[test]
    fn ba_node_and_edge_counts() {
        let g = barabasi_albert(&BaParams { n: 1000, m: 2 }, &mut rng());
        assert_eq!(g.node_count(), 1000);
        // Seed clique (1 edge for m=2) + 2 per subsequent node.
        assert_eq!(g.edge_count(), 1 + 2 * 998);
        assert!(is_connected(&g));
    }

    #[test]
    fn ba_minimum_degree_is_m() {
        let g = barabasi_albert(&BaParams { n: 500, m: 3 }, &mut rng());
        assert!(g.nodes().all(|v| g.degree(v) >= 3));
    }

    #[test]
    fn ba_heavy_tail() {
        let g = barabasi_albert(&BaParams { n: 5000, m: 2 }, &mut rng());
        // P(k) ~ k^-3: the max degree should far exceed the mean (≈4).
        assert!(g.max_degree() > 50, "max degree {}", g.max_degree());
    }

    #[test]
    fn ba_rich_get_richer() {
        // Early nodes should end with higher average degree than late ones.
        let g = barabasi_albert(&BaParams { n: 2000, m: 2 }, &mut rng());
        let early: f64 = (0..100).map(|v| g.degree(v) as f64).sum::<f64>() / 100.0;
        let late: f64 = (1900..2000).map(|v| g.degree(v) as f64).sum::<f64>() / 100.0;
        assert!(early > 2.0 * late, "early {early} vs late {late}");
    }

    #[test]
    fn ba_deterministic() {
        let p = BaParams { n: 300, m: 2 };
        let g1 = barabasi_albert(&p, &mut StdRng::seed_from_u64(4));
        let g2 = barabasi_albert(&p, &mut StdRng::seed_from_u64(4));
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    #[should_panic]
    fn ba_rejects_zero_m() {
        let _ = barabasi_albert(&BaParams { n: 10, m: 0 }, &mut rng());
    }

    #[test]
    fn ab_extended_runs_and_is_heavy_tailed() {
        let g = albert_barabasi(
            &AlbertBarabasiParams {
                n: 2000,
                m: 2,
                p: 0.2,
                q: 0.1,
            },
            &mut rng(),
        );
        assert_eq!(g.node_count(), 2000);
        assert!(g.max_degree() > 30, "max degree {}", g.max_degree());
    }

    #[test]
    fn ab_pure_growth_equals_ba_shape() {
        // p = q = 0 reduces to growth-only; degree floor ≈ m.
        let g = albert_barabasi(
            &AlbertBarabasiParams {
                n: 800,
                m: 2,
                p: 0.0,
                q: 0.0,
            },
            &mut rng(),
        );
        let min_deg = g.nodes().map(|v| g.degree(v)).min().unwrap();
        assert!(min_deg >= 1);
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic]
    fn ab_rejects_bad_probabilities() {
        let _ = albert_barabasi(
            &AlbertBarabasiParams {
                n: 10,
                m: 1,
                p: 0.6,
                q: 0.5,
            },
            &mut rng(),
        );
    }
}
