//! The Bu–Towsley Generalized Linear Preference (GLP) generator \[8\] —
//! the paper's "BT" degree-based generator.
//!
//! GLP modifies Barabási–Albert preferential attachment in two ways:
//! attachment probability is proportional to `degree − β` for a tunable
//! `β < 1` (letting the model match both the power-law exponent *and* the
//! clustering behaviour of the measured AS graph), and with probability
//! `p` each step adds links between existing nodes instead of growing.

use rand::Rng;
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// Parameters for the GLP ("BT") generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GlpParams {
    /// Final number of nodes.
    pub n: usize,
    /// Links per event.
    pub m: usize,
    /// Probability that an event adds links among existing nodes rather
    /// than adding a node.
    pub p: f64,
    /// Preference shift β < 1 (Bu–Towsley fit β ≈ 0.6447 for the AS
    /// graph; attachment weight is `degree − β`).
    pub beta: f64,
}

impl GlpParams {
    /// Bu–Towsley's published AS-graph fit: m = 1.13 rounded to 1,
    /// p = 0.4695, β = 0.6447.
    pub fn paper_as_fit(n: usize) -> Self {
        GlpParams {
            n,
            m: 1,
            p: 0.4695,
            beta: 0.6447,
        }
    }
}

/// Generate a GLP graph.
///
/// # Panics
/// Panics if `beta >= 1`, `m == 0`, or `p` is not a probability.
pub fn glp<R: Rng>(params: &GlpParams, rng: &mut R) -> Graph {
    let GlpParams { n, m, p, beta } = *params;
    assert!(beta < 1.0, "GLP needs beta < 1");
    assert!(m >= 1);
    assert!((0.0..=1.0).contains(&p));
    let seed = (m + 1).max(2).min(n);
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut degree: Vec<f64> = vec![0.0; n];
    let mut active = seed;
    let connect = |adj: &mut Vec<Vec<NodeId>>, degree: &mut Vec<f64>, u: NodeId, v: NodeId| {
        adj[u as usize].push(v);
        adj[v as usize].push(u);
        degree[u as usize] += 1.0;
        degree[v as usize] += 1.0;
    };
    // Seed: a path (keeps degrees low so β-shifted weights stay positive).
    for i in 1..seed {
        connect(&mut adj, &mut degree, (i - 1) as NodeId, i as NodeId);
    }

    fn pick<R: Rng>(degree: &[f64], active: usize, beta: f64, rng: &mut R) -> NodeId {
        // Weight max(d − β, ε) keeps weights positive for any β < 1.
        let w = |d: f64| (d - beta).max(1e-9);
        let total: f64 = degree[..active].iter().map(|&d| w(d)).sum();
        let mut r = rng.gen::<f64>() * total;
        for (v, &d) in degree[..active].iter().enumerate() {
            r -= w(d);
            if r <= 0.0 {
                return v as NodeId;
            }
        }
        (active - 1) as NodeId
    }

    while active < n {
        if rng.gen::<f64>() < p && active >= 2 {
            // Add m links between existing nodes, both ends preferential.
            for _ in 0..m {
                let u = pick(&degree, active, beta, rng);
                let mut guard = 0;
                loop {
                    let v = pick(&degree, active, beta, rng);
                    guard += 1;
                    if (v != u && !adj[u as usize].contains(&v)) || guard > 50 {
                        if v != u && !adj[u as usize].contains(&v) {
                            connect(&mut adj, &mut degree, u, v);
                        }
                        break;
                    }
                }
            }
        } else {
            // Grow: new node with m preferential links.
            let v = active as NodeId;
            active += 1;
            let mut added = 0;
            let mut guard = 0;
            while added < m && guard < 100 * (m + 1) {
                guard += 1;
                let t = pick(&degree, active - 1, beta, rng);
                if t != v && !adj[v as usize].contains(&t) {
                    connect(&mut adj, &mut degree, v, t);
                    added += 1;
                }
            }
        }
    }

    let mut b = GraphBuilder::new(n);
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            if (u as NodeId) < v {
                b.add_edge(u as NodeId, v);
            }
        }
    }
    b.build()
}

impl crate::generate::Generate for GlpParams {
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph {
        // Link-addition events can leave stragglers behind; analyze the
        // largest component.
        topogen_graph::components::largest_component(&glp(self, rng)).0
    }

    fn canonical_params(&self) -> String {
        format!(
            "n={},m={},p={:?},beta={:?}",
            self.n, self.m, self.p, self.beta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::largest_component;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn glp_basic_shape() {
        let g = glp(
            &GlpParams {
                n: 2000,
                m: 1,
                p: 0.45,
                beta: 0.64,
            },
            &mut rng(),
        );
        assert_eq!(g.node_count(), 2000);
        // Roughly (1/(1-p)) * m links per node.
        let avg = g.average_degree();
        assert!((1.5..6.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn glp_heavy_tail() {
        let g = glp(&GlpParams::paper_as_fit(5000), &mut rng());
        assert!(g.max_degree() > 50, "max degree {}", g.max_degree());
    }

    #[test]
    fn glp_largest_component_dominates() {
        let g = glp(&GlpParams::paper_as_fit(3000), &mut rng());
        let (lcc, _) = largest_component(&g);
        assert!(lcc.node_count() as f64 > 0.95 * 3000.0);
    }

    #[test]
    fn glp_deterministic() {
        let p = GlpParams {
            n: 400,
            m: 1,
            p: 0.3,
            beta: 0.5,
        };
        let g1 = glp(&p, &mut StdRng::seed_from_u64(8));
        let g2 = glp(&p, &mut StdRng::seed_from_u64(8));
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn glp_negative_beta_allowed() {
        // β < 0 flattens preference; still a valid regime.
        let g = glp(
            &GlpParams {
                n: 500,
                m: 2,
                p: 0.2,
                beta: -1.0,
            },
            &mut rng(),
        );
        assert_eq!(g.node_count(), 500);
    }

    #[test]
    #[should_panic]
    fn glp_rejects_beta_one() {
        let _ = glp(
            &GlpParams {
                n: 10,
                m: 1,
                p: 0.2,
                beta: 1.0,
            },
            &mut rng(),
        );
    }
}
