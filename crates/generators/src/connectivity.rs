//! Connectivity variants for a fixed degree sequence (Appendix D.1).
//!
//! The paper asks whether it is the power-law *degree distribution* or
//! the particular *connection rule* that gives degree-based generators
//! their Internet-like large-scale structure. To answer it, Appendix D.1
//! connects the same degree sequence in several different ways:
//!
//! * [`match_plrg`] — the PLRG's clone-matching rule;
//! * [`match_uniform`] — pick two nodes with *unsatisfied* degree
//!   uniformly (not degree-proportionally) and link them;
//! * [`match_highest_first`] — start with the highest-degree node and
//!   connect it to partners chosen uniformly, degree-proportionally, or
//!   proportionally to *unsatisfied* degree ([`PartnerRule`]);
//! * [`match_deterministic`] — the deterministic descending rule
//!   (Havel–Hakimi-style), which Appendix D.1 reports produces graphs
//!   "quite different from the PLRG";
//! * [`rewire_as_plrg`] — extract a graph's degree sequence and reconnect
//!   it with the PLRG rule (the "Modified B-A" / "Modified Brite" graphs
//!   of Figure 13).
//!
//! All randomized rules discard self-loops and duplicate links, as the
//! paper does (footnote 6), so realized degrees are upper-bounded by the
//! requested sequence.

use rand::Rng;
use topogen_graph::stream::EdgeSink;
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// [`match_plrg`] emitting through an arbitrary [`EdgeSink`] — the
/// memory-budgeted build path. One body serves both builders, so the
/// RNG consumption (and therefore the matching) is identical whether
/// the raw pairs land in memory or spill to sorted runs.
pub fn match_plrg_into<S: EdgeSink, R: Rng>(degrees: &[usize], rng: &mut R, sink: &mut S) {
    let mut clones: Vec<NodeId> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        clones.extend(std::iter::repeat_n(v as NodeId, d));
    }
    // Fisher–Yates shuffle.
    for i in (1..clones.len()).rev() {
        let j = rng.gen_range(0..=i);
        clones.swap(i, j);
    }
    sink.ensure_nodes(degrees.len());
    for pair in clones.chunks_exact(2) {
        sink.add_edge(pair[0], pair[1]);
    }
}

/// PLRG clone matching \[1\]: make `d(v)` copies of node `v`, shuffle,
/// pair adjacent copies. Self-loops/duplicates dropped at build time.
pub fn match_plrg<R: Rng>(degrees: &[usize], rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(0);
    match_plrg_into(degrees, rng, &mut b);
    b.build()
}

/// Uniformly random connectivity: repeatedly pick two distinct nodes with
/// unsatisfied degree uniformly at random (ignoring how much residual
/// degree they carry) and link them. Appendix D.1: "even for the
/// uniformly random connectivity method ... the large-scale metrics are
/// qualitatively similar to the PLRG".
pub fn match_uniform<R: Rng>(degrees: &[usize], rng: &mut R) -> Graph {
    let mut residual: Vec<usize> = degrees.to_vec();
    let mut open: Vec<NodeId> = (0..degrees.len() as NodeId)
        .filter(|&v| residual[v as usize] > 0)
        .collect();
    let mut b = GraphBuilder::new(degrees.len());
    let mut adj: Vec<std::collections::HashSet<NodeId>> = vec![Default::default(); degrees.len()];
    // Each round removes at least one unit of residual degree, and we
    // stop when fewer than two open nodes remain or progress stalls.
    let mut stall = 0usize;
    while open.len() >= 2 && stall < 4 * degrees.len() + 100 {
        let i = rng.gen_range(0..open.len());
        let mut j = rng.gen_range(0..open.len() - 1);
        if j >= i {
            j += 1;
        }
        let (u, v) = (open[i], open[j]);
        if adj[u as usize].contains(&v) {
            stall += 1;
            continue;
        }
        adj[u as usize].insert(v);
        adj[v as usize].insert(u);
        stall = 0;
        b.add_edge(u, v);
        residual[u as usize] -= 1;
        residual[v as usize] -= 1;
        // Compact the open list only when a node completed: O(n) per
        // completed node, O(n²) overall — fine at Appendix-D scales.
        if residual[u as usize] == 0 || residual[v as usize] == 0 {
            open.retain(|&w| residual[w as usize] > 0);
        }
    }
    b.build()
}

/// Partner-selection rule for [`match_highest_first`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartnerRule {
    /// Choose partners uniformly among nodes with unsatisfied degree.
    Uniform,
    /// Choose partners proportionally to their *assigned* degree.
    ProportionalToDegree,
    /// Choose partners proportionally to their *unsatisfied* (residual)
    /// degree.
    ProportionalToUnsatisfied,
}

/// Highest-first random connectivity (Appendix D.1's "start with the
/// highest degree nodes and connect to other nodes either uniformly, or
/// in proportion to the degree, or in proportion to the unsatisfied
/// degree").
pub fn match_highest_first<R: Rng>(degrees: &[usize], rule: PartnerRule, rng: &mut R) -> Graph {
    let n = degrees.len();
    let mut residual: Vec<usize> = degrees.to_vec();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
    let mut b = GraphBuilder::new(n);
    let mut adj: Vec<std::collections::HashSet<NodeId>> = vec![Default::default(); n];
    for &v in &order {
        let mut attempts = 0usize;
        while residual[v as usize] > 0 && attempts < 50 + 10 * n {
            attempts += 1;
            let candidates: Vec<NodeId> = (0..n as NodeId)
                .filter(|&w| w != v && residual[w as usize] > 0 && !adj[v as usize].contains(&w))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let w = match rule {
                PartnerRule::Uniform => candidates[rng.gen_range(0..candidates.len())],
                PartnerRule::ProportionalToDegree => {
                    weighted_pick(&candidates, |c| degrees[c as usize] as f64, rng)
                }
                PartnerRule::ProportionalToUnsatisfied => {
                    weighted_pick(&candidates, |c| residual[c as usize] as f64, rng)
                }
            };
            b.add_edge(v, w);
            adj[v as usize].insert(w);
            adj[w as usize].insert(v);
            residual[v as usize] -= 1;
            residual[w as usize] -= 1;
        }
    }
    b.build()
}

fn weighted_pick<R: Rng>(items: &[NodeId], weight: impl Fn(NodeId) -> f64, rng: &mut R) -> NodeId {
    let total: f64 = items.iter().map(|&i| weight(i)).sum();
    if total <= 0.0 {
        return items[rng.gen_range(0..items.len())];
    }
    let mut r = rng.gen::<f64>() * total;
    for &i in items {
        r -= weight(i);
        if r <= 0.0 {
            return i;
        }
    }
    *items.last().unwrap()
}

/// Deterministic descending connectivity (Appendix D.1): "start with the
/// highest degree node, add one link each from this node to each lower
/// degree node in decreasing degree order (skipping nodes whose degree
/// has already been satisfied), then repeat for the next highest degree
/// node whose degree has not been satisfied."
pub fn match_deterministic(degrees: &[usize]) -> Graph {
    // Havel–Hakimi: repeatedly take the node with the largest residual
    // degree d and connect it to the d next-largest-residual nodes.
    // Re-sorting by *residual* each round is what makes this realize
    // every graphical sequence exactly (the fixed-initial-order variant
    // can strand residual degree).
    let n = degrees.len();
    let mut residual: Vec<usize> = degrees.to_vec();
    let mut b = GraphBuilder::new(n);
    let mut adj: Vec<std::collections::HashSet<NodeId>> = vec![Default::default(); n];
    loop {
        let mut order: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| residual[v as usize] > 0)
            .collect();
        if order.len() < 2 {
            break;
        }
        // Decreasing residual, ties by id for determinism.
        order.sort_by_key(|&v| (std::cmp::Reverse(residual[v as usize]), v));
        let v = order[0];
        let mut connected_any = false;
        let want = residual[v as usize];
        let mut made = 0usize;
        for &w in order.iter().skip(1) {
            if made == want {
                break;
            }
            if adj[v as usize].contains(&w) {
                continue;
            }
            b.add_edge(v, w);
            adj[v as usize].insert(w);
            adj[w as usize].insert(v);
            residual[w as usize] -= 1;
            made += 1;
            connected_any = true;
        }
        residual[v as usize] -= made;
        if !connected_any {
            // Infeasible remainder (non-graphical input): stop.
            break;
        }
    }
    b.build()
}

/// Extract `g`'s degree sequence and reconnect it with the PLRG rule —
/// the construction behind the "Modified B-A" and "Modified Brite" graphs
/// of Figure 13. Returns the whole (possibly disconnected) graph.
pub fn rewire_as_plrg<R: Rng>(g: &Graph, rng: &mut R) -> Graph {
    let mut degrees = g.degrees();
    crate::degseq::evenize(&mut degrees);
    match_plrg(&degrees, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    fn total_degree(g: &Graph) -> usize {
        2 * g.edge_count()
    }

    #[test]
    fn plrg_matching_conserves_most_degree() {
        let degrees: Vec<usize> = vec![10, 5, 5, 3, 3, 2, 2, 2, 1, 1, 1, 1];
        let g = match_plrg(&degrees, &mut rng());
        let want: usize = degrees.iter().sum();
        // Self-loop/dup removal loses a little; most stubs survive.
        assert!(total_degree(&g) <= want);
        assert!(total_degree(&g) >= want / 2);
        for (v, &d) in degrees.iter().enumerate() {
            assert!(g.degree(v as u32) <= d);
        }
    }

    #[test]
    fn plrg_zero_degrees_isolated() {
        let g = match_plrg(&[0, 2, 2, 0], &mut rng());
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn uniform_respects_degrees() {
        let degrees = vec![4, 3, 3, 2, 2, 1, 1];
        let g = match_uniform(&degrees, &mut rng());
        for (v, &d) in degrees.iter().enumerate() {
            assert!(
                g.degree(v as u32) <= d,
                "node {v}: {} > {d}",
                g.degree(v as u32)
            );
        }
        assert!(g.edge_count() >= 3);
    }

    #[test]
    fn highest_first_rules_all_run() {
        let degrees = vec![6, 4, 3, 2, 2, 2, 1, 1, 1];
        for rule in [
            PartnerRule::Uniform,
            PartnerRule::ProportionalToDegree,
            PartnerRule::ProportionalToUnsatisfied,
        ] {
            let g = match_highest_first(&degrees, rule, &mut rng());
            for (v, &d) in degrees.iter().enumerate() {
                assert!(g.degree(v as u32) <= d);
            }
            assert!(g.edge_count() >= degrees.len() / 2);
        }
    }

    #[test]
    fn deterministic_matches_havel_hakimi_star() {
        // Star sequence: 3,1,1,1 → hub connects to all three leaves.
        let g = match_deterministic(&[3, 1, 1, 1]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn deterministic_realizes_graphical_sequences_exactly() {
        // Havel–Hakimi realizes any graphical sequence; descending-order
        // greedy does too for these standard cases.
        for degrees in [vec![2, 2, 2], vec![3, 3, 3, 3], vec![4, 2, 2, 2, 2]] {
            assert!(crate::degseq::is_graphical(&degrees));
            let g = match_deterministic(&degrees);
            for (v, &d) in degrees.iter().enumerate() {
                assert_eq!(g.degree(v as u32), d, "sequence {degrees:?} node {v}");
            }
        }
    }

    #[test]
    fn deterministic_is_deterministic() {
        let d = vec![5, 4, 3, 3, 2, 2, 2, 1];
        let g1 = match_deterministic(&d);
        let g2 = match_deterministic(&d);
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn rewire_preserves_degree_distribution_shape() {
        // Rewire a star-ish graph: max degree stays (approximately) put.
        // Clone matching loses hub stubs to self-loop pairs (~10 of 29 in
        // expectation here), so a single draw is noisy; average a few.
        let mut b = topogen_graph::GraphBuilder::new(30);
        for i in 1..30 {
            b.add_edge(0, i);
        }
        for i in 1..10 {
            b.add_edge(i, i + 10);
        }
        let g = b.build();
        let mut total_max = 0usize;
        let runs = 5;
        for s in 0..runs {
            let r = rewire_as_plrg(&g, &mut StdRng::seed_from_u64(17 + s));
            assert_eq!(r.node_count(), 30);
            total_max += r.max_degree();
        }
        // The hub's 29 stubs mostly survive matching.
        let mean = total_max as f64 / runs as f64;
        assert!(mean >= 13.0, "mean hub degree {mean}");
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(match_plrg(&[], &mut rng()).node_count(), 0);
        assert_eq!(match_uniform(&[], &mut rng()).node_count(), 0);
        assert_eq!(match_deterministic(&[]).node_count(), 0);
    }
}
