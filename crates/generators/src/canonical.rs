//! Canonical calibration networks (paper §3.1.3 and §3.2.1).
//!
//! The paper calibrates its metrics on a k-ary Tree, a rectangular Mesh,
//! and an Erdős–Rényi Random graph, and reasons about two further
//! "standard networks" — the Complete graph and the Linear chain — whose
//! known low/high metric signatures anchor the classification table.

use rand::Rng;
use topogen_graph::stream::EdgeSink;
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// Finalize an in-memory sink-built graph: the shared tail of every
/// `fn xyz() -> Graph` convenience wrapper around its `xyz_into` body.
fn collect<F: FnOnce(&mut GraphBuilder)>(f: F) -> Graph {
    let mut b = GraphBuilder::new(0);
    f(&mut b);
    b.build()
}

/// [`kary_tree`] emitting through an arbitrary [`EdgeSink`] — the
/// memory-budgeted build path. All `*_into` variants share the exact
/// emission (and RNG-consumption) order of their in-memory wrappers, so
/// a streamed build is identical to the in-memory one by construction.
pub fn kary_tree_into<S: EdgeSink>(k: usize, depth: usize, sink: &mut S) {
    assert!(k >= 2, "k-ary tree needs k >= 2");
    // Node count: (k^(depth+1) - 1) / (k - 1).
    let mut n: usize = 1;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= k;
        n += level;
    }
    sink.ensure_nodes(n);
    // Children of node v are k*v + 1 ... k*v + k (standard heap layout).
    for v in 0..n {
        for c in 1..=k {
            let child = k * v + c;
            if child < n {
                sink.add_edge(v as NodeId, child as NodeId);
            }
        }
    }
}

/// Complete k-ary tree of the given `depth` (depth 0 = a single root).
/// The paper's Tree instance is `k = 3, D = 6` → 1093 nodes, the node
/// count `(k^(D+1) - 1) / (k - 1)`.
///
/// # Panics
/// Panics if `k == 0`, or if `k == 1` (use [`linear`] for chains).
pub fn kary_tree(k: usize, depth: usize) -> Graph {
    collect(|b| kary_tree_into(k, depth, b))
}

/// [`mesh`] emitting through an arbitrary [`EdgeSink`].
pub fn mesh_into<S: EdgeSink>(rows: usize, cols: usize, sink: &mut S) {
    let n = rows * cols;
    sink.ensure_nodes(n);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as NodeId;
            if c + 1 < cols {
                sink.add_edge(v, v + 1);
            }
            if r + 1 < rows {
                sink.add_edge(v, v + cols as NodeId);
            }
        }
    }
}

/// Rectangular grid ("Mesh") with `rows × cols` nodes, 4-neighbor
/// connectivity. The paper uses a 30×30 grid (900 nodes).
pub fn mesh(rows: usize, cols: usize) -> Graph {
    collect(|b| mesh_into(rows, cols, b))
}

/// [`linear`] emitting through an arbitrary [`EdgeSink`].
pub fn linear_into<S: EdgeSink>(n: usize, sink: &mut S) {
    sink.ensure_nodes(n);
    for i in 1..n {
        sink.add_edge((i - 1) as NodeId, i as NodeId);
    }
}

/// Linear chain of `n` nodes (the paper's low/low/low reference network).
pub fn linear(n: usize) -> Graph {
    collect(|b| linear_into(n, b))
}

/// Cycle of `n` nodes.
///
/// # Panics
/// Panics if `n < 3` (smaller cycles are not simple graphs).
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a simple cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as NodeId, ((i + 1) % n) as NodeId);
    }
    b.build()
}

/// [`complete`] emitting through an arbitrary [`EdgeSink`].
pub fn complete_into<S: EdgeSink>(n: usize, sink: &mut S) {
    sink.ensure_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            sink.add_edge(i as NodeId, j as NodeId);
        }
    }
}

/// Complete graph on `n` nodes (the paper's high/high/low reference — the
/// only standard network sharing the Internet's metric signature).
pub fn complete(n: usize) -> Graph {
    collect(|b| complete_into(n, b))
}

/// [`random_gnp`] emitting through an arbitrary [`EdgeSink`].
pub fn random_gnp_into<S: EdgeSink, R: Rng>(n: usize, p: f64, rng: &mut R, sink: &mut S) {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    sink.ensure_nodes(n);
    if p <= 0.0 || n < 2 {
        return;
    }
    if p >= 1.0 {
        complete_into(n, sink);
        return;
    }
    // Iterate potential edges in lexicographic order, skipping ahead by
    // geometric jumps (Batagelj–Brandes).
    let ln_q = (1.0 - p).ln();
    let total: u64 = (n as u64) * (n as u64 - 1) / 2;
    let mut idx: f64 = -1.0;
    loop {
        let r: f64 = rng.gen::<f64>();
        // Next success index.
        let skip = ((1.0 - r).ln() / ln_q).floor();
        idx += 1.0 + skip;
        if !idx.is_finite() || idx >= total as f64 {
            break;
        }
        let e = idx as u64;
        let (u, v) = unrank_edge(n as u64, e);
        sink.add_edge(u as NodeId, v as NodeId);
    }
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` possible edges appears
/// independently with probability `p`. The paper's Random instance is
/// `n = 5018, p = 0.0008` (Figure 1 — the node count is the largest
/// connected component of a slightly larger draw).
///
/// May be disconnected; callers typically extract the largest component.
///
/// Implementation: geometric skipping over the ordered edge list, O(n + m)
/// expected time rather than O(n²) Bernoulli trials.
pub fn random_gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    collect(|b| random_gnp_into(n, p, rng, b))
}

/// Map an index `0 <= e < n(n-1)/2` to the e-th edge in lexicographic
/// order over pairs (u, v), u < v.
fn unrank_edge(n: u64, e: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+3)/2 ... solve incrementally via
    // the quadratic formula for robustness at large n.
    // Edges in row u: n - 1 - u. Cumulative before row u:
    //   C(u) = u*n - u - u*(u-1)/2.
    // Find the largest u with C(u) <= e via the quadratic formula, then
    // fix up with a local scan (floating point slack).
    let nf = n as f64;
    let ef = e as f64;
    let mut u = ((2.0 * nf - 1.0 - ((2.0 * nf - 1.0).powi(2) - 8.0 * ef).max(0.0).sqrt()) / 2.0)
        .floor() as u64;
    let cum = |u: u64| u * n - u - u * u.saturating_sub(1) / 2;
    loop {
        let cu = cum(u);
        if cu > e {
            u -= 1;
            continue;
        }
        if cum(u + 1) <= e {
            u += 1;
            continue;
        }
        let v = u + 1 + (e - cu);
        return (u, v);
    }
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly
/// from all possible pairs (rejection sampling; requires
/// `m <= n(n-1)/2`).
pub fn random_gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max, "m = {m} exceeds the {max} possible edges");
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::new(n);
    while chosen.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::is_connected;

    #[test]
    fn tree_node_count_matches_paper() {
        // k=3, D=6 → 1093 nodes with average degree ≈ 2.00 (Figure 1).
        let t = kary_tree(3, 6);
        assert_eq!(t.node_count(), 1093);
        assert_eq!(t.edge_count(), 1092);
        assert!((t.average_degree() - 2.0).abs() < 0.01);
        assert!(is_connected(&t));
    }

    #[test]
    fn tree_depth_zero() {
        let t = kary_tree(4, 0);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.edge_count(), 0);
    }

    #[test]
    fn tree_degrees() {
        let t = kary_tree(2, 2); // 7 nodes
        assert_eq!(t.degree(0), 2); // root
        assert_eq!(t.degree(1), 3); // internal
        assert_eq!(t.degree(3), 1); // leaf
    }

    #[test]
    fn mesh_matches_paper_instance() {
        // 30x30 grid: 900 nodes, avg degree 3.87 (Figure 1).
        let m = mesh(30, 30);
        assert_eq!(m.node_count(), 900);
        assert_eq!(m.edge_count(), 2 * 30 * 29);
        assert!((m.average_degree() - 3.87).abs() < 0.01);
        assert!(is_connected(&m));
    }

    #[test]
    fn mesh_corner_and_center_degrees() {
        let m = mesh(3, 3);
        assert_eq!(m.degree(0), 2); // corner
        assert_eq!(m.degree(1), 3); // edge
        assert_eq!(m.degree(4), 4); // center
    }

    #[test]
    fn mesh_degenerate_shapes() {
        assert_eq!(mesh(1, 5).edge_count(), 4); // a path
        assert_eq!(mesh(1, 1).node_count(), 1);
        assert_eq!(mesh(0, 5).node_count(), 0);
    }

    #[test]
    fn linear_and_ring() {
        let l = linear(5);
        assert_eq!(l.edge_count(), 4);
        assert_eq!(l.degree(0), 1);
        assert_eq!(l.degree(2), 2);
        let r = ring(5);
        assert_eq!(r.edge_count(), 5);
        assert!(r.nodes().all(|v| r.degree(v) == 2));
    }

    #[test]
    fn complete_graph() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(random_gnp(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(random_gnp(10, 1.0, &mut rng).edge_count(), 45);
        assert_eq!(random_gnp(0, 0.5, &mut rng).node_count(), 0);
        assert_eq!(random_gnp(1, 0.5, &mut rng).edge_count(), 0);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 400;
        let p = 0.05;
        let g = random_gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        // within 10% of the mean — std dev is ~sqrt(expected) ≈ 63.
        assert!(
            (got - expected).abs() < 0.1 * expected,
            "edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn gnp_deterministic_under_seed() {
        let g1 = random_gnp(100, 0.05, &mut StdRng::seed_from_u64(9));
        let g2 = random_gnp(100, 0.05, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_gnm(50, 200, &mut rng);
        assert_eq!(g.edge_count(), 200);
        assert_eq!(g.node_count(), 50);
    }

    #[test]
    fn gnm_full_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_gnm(6, 15, &mut rng);
        assert_eq!(g.edge_count(), 15);
    }

    #[test]
    #[should_panic]
    fn gnm_too_many_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = random_gnm(4, 7, &mut rng);
    }

    #[test]
    fn unrank_edge_bijection() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for e in 0..(n * (n - 1) / 2) {
            let (u, v) = unrank_edge(n, e);
            assert!(u < v && v < n, "bad edge ({u},{v}) for index {e}");
            assert!(seen.insert((u, v)), "duplicate edge for index {e}");
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn paper_random_instance_degree() {
        // Figure 1: Random with n≈5018, p = 0.0008 → avg degree ≈ 4.18.
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_gnp(5018, 0.0008, &mut rng);
        assert!(
            (g.average_degree() - 4.0).abs() < 0.4,
            "avg degree {}",
            g.average_degree()
        );
    }
}
