//! The Transit-Stub structural generator (GT-ITM; Calvert, Doar, Zegura
//! \[10\]) — §3.1.2.
//!
//! Transit-Stub imposes a two-level routing hierarchy: a connected random
//! graph of *transit domains*, each a connected random graph of transit
//! nodes; attached to every transit node are several *stub domains*
//! (connected random graphs) that reach the rest of the world through
//! their transit node. Optional extra transit-to-stub and stub-to-stub
//! edges add cross-hierarchy shortcuts.
//!
//! The paper's Figure 1 instance uses 3 stub domains per transit node, no
//! extra edges, 6 transit domains with edge probability 0.55, 6 nodes per
//! transit domain with edge probability 0.32, and 9 nodes per stub domain
//! with edge probability 0.248 → 1008 nodes, average degree ≈ 2.8.
//! GT-ITM guarantees every random sub-block is connected by resampling;
//! we patch components together instead (equivalent for the metrics, and
//! deterministic in the number of retries).

use rand::Rng;
use topogen_graph::unionfind::UnionFind;
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// Parameters for the Transit-Stub generator, in GT-ITM order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransitStubParams {
    /// Stub domains attached to each transit node.
    pub stubs_per_transit_node: usize,
    /// Extra random transit-to-stub edges.
    pub extra_transit_stub_edges: usize,
    /// Extra random stub-to-stub edges.
    pub extra_stub_stub_edges: usize,
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Edge probability between transit domains (domain-level graph).
    pub transit_domain_edge_prob: f64,
    /// Nodes per transit domain.
    pub transit_nodes_per_domain: usize,
    /// Edge probability among nodes within a transit domain.
    pub transit_edge_prob: f64,
    /// Nodes per stub domain.
    pub stub_nodes_per_domain: usize,
    /// Edge probability among nodes within a stub domain.
    pub stub_edge_prob: f64,
}

impl TransitStubParams {
    /// The paper's Figure 1 instance: `3 0 0 6 0.55 6 0.32 9 0.248`
    /// → 1008 nodes, average degree ≈ 2.78.
    pub fn paper_default() -> Self {
        TransitStubParams {
            stubs_per_transit_node: 3,
            extra_transit_stub_edges: 0,
            extra_stub_stub_edges: 0,
            transit_domains: 6,
            transit_domain_edge_prob: 0.55,
            transit_nodes_per_domain: 6,
            transit_edge_prob: 0.32,
            stub_nodes_per_domain: 9,
            stub_edge_prob: 0.248,
        }
    }

    /// Total node count this parameterization produces.
    pub fn node_count(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes_per_domain;
        transit + transit * self.stubs_per_transit_node * self.stub_nodes_per_domain
    }
}

/// Node roles in a generated Transit-Stub topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TsRole {
    /// A node inside a transit domain (the domain's index).
    Transit {
        /// Transit domain index.
        domain: u32,
    },
    /// A node inside a stub domain.
    Stub {
        /// Stub domain index (global, across all transit nodes).
        domain: u32,
    },
}

/// A Transit-Stub topology plus its hierarchy annotations (used by the
/// hierarchy sanity checks of §5: "the highest valued links in TS are in
/// the transit cloud").
#[derive(Clone, Debug)]
pub struct TransitStubTopology {
    /// The generated graph (always connected).
    pub graph: Graph,
    /// Role of each node.
    pub roles: Vec<TsRole>,
}

impl crate::generate::Generate for TransitStubParams {
    fn generate<R: Rng>(&self, rng: &mut R) -> Graph {
        // The sub-blocks are patched connected, so the projection is the
        // whole (connected) graph; roles stay available via
        // [`transit_stub`].
        transit_stub(self, rng).graph
    }

    fn canonical_params(&self) -> String {
        format!(
            "stubs_per_transit_node={},extra_transit_stub_edges={},extra_stub_stub_edges={},\
             transit_domains={},transit_domain_edge_prob={:?},transit_nodes_per_domain={},\
             transit_edge_prob={:?},stub_nodes_per_domain={},stub_edge_prob={:?}",
            self.stubs_per_transit_node,
            self.extra_transit_stub_edges,
            self.extra_stub_stub_edges,
            self.transit_domains,
            self.transit_domain_edge_prob,
            self.transit_nodes_per_domain,
            self.transit_edge_prob,
            self.stub_nodes_per_domain,
            self.stub_edge_prob
        )
    }
}

/// Generate a Transit-Stub topology.
///
/// # Panics
/// Panics if any structural count is zero or a probability is invalid.
pub fn transit_stub<R: Rng>(params: &TransitStubParams, rng: &mut R) -> TransitStubTopology {
    let p = *params;
    assert!(p.transit_domains >= 1 && p.transit_nodes_per_domain >= 1);
    assert!(p.stub_nodes_per_domain >= 1);
    assert!((0.0..=1.0).contains(&p.transit_domain_edge_prob));
    assert!((0.0..=1.0).contains(&p.transit_edge_prob));
    assert!((0.0..=1.0).contains(&p.stub_edge_prob));

    let n = p.node_count();
    let mut b = GraphBuilder::new(n);
    let mut roles = Vec::with_capacity(n);

    // Layout: transit nodes first (domain-major), then stub domains.
    let tn = p.transit_nodes_per_domain;
    let transit_count = p.transit_domains * tn;
    let transit_node = |domain: usize, i: usize| (domain * tn + i) as NodeId;
    for d in 0..p.transit_domains {
        for _ in 0..tn {
            let _ = d;
            roles.push(TsRole::Transit { domain: d as u32 });
        }
    }

    // 1. Connected random graph inside each transit domain.
    for d in 0..p.transit_domains {
        let members: Vec<NodeId> = (0..tn).map(|i| transit_node(d, i)).collect();
        connected_random_block(&mut b, &members, p.transit_edge_prob, rng);
    }

    // 2. Domain-level connectivity: random graph over domains, patched to
    // a connected graph; each domain edge becomes one node-level edge
    // between random members.
    let mut domain_edges: Vec<(usize, usize)> = Vec::new();
    for a in 0..p.transit_domains {
        for c in (a + 1)..p.transit_domains {
            if rng.gen::<f64>() < p.transit_domain_edge_prob {
                domain_edges.push((a, c));
            }
        }
    }
    let mut uf = UnionFind::new(p.transit_domains);
    for &(a, c) in &domain_edges {
        uf.union(a as u32, c as u32);
    }
    // Patch disconnected domain graph with a random chain of components.
    for d in 1..p.transit_domains {
        if !uf.same(0, d as u32) {
            uf.union(0, d as u32);
            let other = rng.gen_range(0..d);
            domain_edges.push((other, d));
        }
    }
    for (a, c) in domain_edges {
        let u = transit_node(a, rng.gen_range(0..tn));
        let v = transit_node(c, rng.gen_range(0..tn));
        b.add_edge(u, v);
    }

    // 3. Stub domains: connected random graphs, one edge up to their
    // transit node.
    let sn = p.stub_nodes_per_domain;
    let mut stub_domain_start: Vec<NodeId> = Vec::new(); // first node of each stub domain
    let mut next = transit_count;
    for t in 0..transit_count {
        for _ in 0..p.stubs_per_transit_node {
            let start = next;
            next += sn;
            let domain_idx = stub_domain_start.len() as u32;
            stub_domain_start.push(start as NodeId);
            for _ in 0..sn {
                roles.push(TsRole::Stub { domain: domain_idx });
            }
            let members: Vec<NodeId> = (start..start + sn).map(|v| v as NodeId).collect();
            connected_random_block(&mut b, &members, p.stub_edge_prob, rng);
            // Uplink: a random stub node to the owning transit node.
            let up = members[rng.gen_range(0..members.len())];
            b.add_edge(up, t as NodeId);
        }
    }
    debug_assert_eq!(next, n);
    debug_assert_eq!(roles.len(), n);

    // 4. Extra cross-hierarchy edges.
    let stub_domains = stub_domain_start.len();
    for _ in 0..p.extra_transit_stub_edges {
        let sd = rng.gen_range(0..stub_domains);
        let su = stub_domain_start[sd] + rng.gen_range(0..sn) as NodeId;
        let tv = rng.gen_range(0..transit_count) as NodeId;
        b.add_edge(su, tv);
    }
    for _ in 0..p.extra_stub_stub_edges {
        if stub_domains < 2 {
            break;
        }
        let d1 = rng.gen_range(0..stub_domains);
        let mut d2 = rng.gen_range(0..stub_domains - 1);
        if d2 >= d1 {
            d2 += 1;
        }
        let u = stub_domain_start[d1] + rng.gen_range(0..sn) as NodeId;
        let v = stub_domain_start[d2] + rng.gen_range(0..sn) as NodeId;
        b.add_edge(u, v);
    }

    TransitStubTopology {
        graph: b.build(),
        roles,
    }
}

/// Fallible Transit-Stub in the *original* GT-ITM discipline: every
/// random sub-block (and the domain-level graph) is **resampled until
/// connected** instead of patched, with the loop bounded at
/// `max_attempts` per block. Structurally invalid parameters come back
/// as [`GenError::BadParam`]; a block whose edge probability is too low
/// to ever connect (the adversarial case: `prob = 0` with two or more
/// nodes) exhausts its budget and returns [`GenError::Infeasible`]
/// instead of looping forever. The suite runner retries exhausted draws
/// with a fresh seed.
///
/// [`GenError::BadParam`]: crate::errors::GenError::BadParam
/// [`GenError::Infeasible`]: crate::errors::GenError::Infeasible
pub fn try_transit_stub<R: Rng>(
    params: &TransitStubParams,
    max_attempts: u64,
    rng: &mut R,
) -> Result<TransitStubTopology, crate::errors::GenError> {
    use crate::errors::GenError;
    let p = *params;
    if p.transit_domains < 1 || p.transit_nodes_per_domain < 1 || p.stub_nodes_per_domain < 1 {
        return Err(GenError::BadParam {
            what: "transit/stub counts must all be at least 1".into(),
        });
    }
    for (name, prob) in [
        ("transit_domain_edge_prob", p.transit_domain_edge_prob),
        ("transit_edge_prob", p.transit_edge_prob),
        ("stub_edge_prob", p.stub_edge_prob),
    ] {
        if !(0.0..=1.0).contains(&prob) {
            return Err(GenError::BadParam {
                what: format!("{name} must be in [0, 1], got {prob}"),
            });
        }
    }
    if max_attempts == 0 {
        return Err(GenError::BadParam {
            what: "max_attempts must be at least 1".into(),
        });
    }

    let n = p.node_count();
    let mut b = GraphBuilder::new(n);
    let mut roles = Vec::with_capacity(n);

    let tn = p.transit_nodes_per_domain;
    let transit_count = p.transit_domains * tn;
    let transit_node = |domain: usize, i: usize| (domain * tn + i) as NodeId;
    for d in 0..p.transit_domains {
        roles.extend(std::iter::repeat_n(
            TsRole::Transit { domain: d as u32 },
            tn,
        ));
    }

    // 1. Transit domains: resample each block until connected.
    for d in 0..p.transit_domains {
        let edges =
            sample_connected_gnp(tn, p.transit_edge_prob, max_attempts, "transit domain", rng)?;
        for (i, j) in edges {
            b.add_edge(transit_node(d, i), transit_node(d, j));
        }
    }

    // 2. Domain-level graph: resample until connected, then one
    // node-level edge per domain edge.
    let domain_edges = sample_connected_gnp(
        p.transit_domains,
        p.transit_domain_edge_prob,
        max_attempts,
        "transit domain graph",
        rng,
    )?;
    for (a, c) in domain_edges {
        let u = transit_node(a, rng.gen_range(0..tn));
        let v = transit_node(c, rng.gen_range(0..tn));
        b.add_edge(u, v);
    }

    // 3. Stub domains: resampled connected blocks, one uplink each.
    let sn = p.stub_nodes_per_domain;
    let mut next = transit_count;
    let mut stub_domain_start: Vec<NodeId> = Vec::new();
    for t in 0..transit_count {
        for _ in 0..p.stubs_per_transit_node {
            let start = next;
            next += sn;
            let domain_idx = stub_domain_start.len() as u32;
            stub_domain_start.push(start as NodeId);
            roles.extend(std::iter::repeat_n(TsRole::Stub { domain: domain_idx }, sn));
            let edges =
                sample_connected_gnp(sn, p.stub_edge_prob, max_attempts, "stub domain", rng)?;
            for (i, j) in edges {
                b.add_edge((start + i) as NodeId, (start + j) as NodeId);
            }
            let up = (start + rng.gen_range(0..sn)) as NodeId;
            b.add_edge(up, t as NodeId);
        }
    }

    // 4. Extra cross-hierarchy edges, as in the infallible variant.
    let stub_domains = stub_domain_start.len();
    for _ in 0..p.extra_transit_stub_edges {
        let sd = rng.gen_range(0..stub_domains);
        let su = stub_domain_start[sd] + rng.gen_range(0..sn) as NodeId;
        let tv = rng.gen_range(0..transit_count) as NodeId;
        b.add_edge(su, tv);
    }
    for _ in 0..p.extra_stub_stub_edges {
        if stub_domains < 2 {
            break;
        }
        let d1 = rng.gen_range(0..stub_domains);
        let mut d2 = rng.gen_range(0..stub_domains - 1);
        if d2 >= d1 {
            d2 += 1;
        }
        let u = stub_domain_start[d1] + rng.gen_range(0..sn) as NodeId;
        let v = stub_domain_start[d2] + rng.gen_range(0..sn) as NodeId;
        b.add_edge(u, v);
    }

    Ok(TransitStubTopology {
        graph: b.build(),
        roles,
    })
}

/// Draw G(k, prob) edge sets until one is connected, bounded at
/// `max_attempts` draws; returns the edge list in local indices.
fn sample_connected_gnp<R: Rng>(
    k: usize,
    prob: f64,
    max_attempts: u64,
    stage: &'static str,
    rng: &mut R,
) -> Result<Vec<(usize, usize)>, crate::errors::GenError> {
    if k <= 1 {
        return Ok(Vec::new());
    }
    for _ in 0..max_attempts {
        let mut edges = Vec::new();
        let mut uf = UnionFind::new(k);
        for i in 0..k {
            for j in (i + 1)..k {
                if rng.gen::<f64>() < prob {
                    edges.push((i, j));
                    uf.union(i as u32, j as u32);
                }
            }
        }
        if (1..k).all(|i| uf.same(0, i as u32)) {
            return Ok(edges);
        }
    }
    Err(crate::errors::GenError::Infeasible {
        stage,
        attempts: max_attempts,
    })
}

/// Add a G(k, prob) random graph over `members`, then patch components
/// together with random inter-component edges so the block is connected.
fn connected_random_block<R: Rng>(
    b: &mut GraphBuilder,
    members: &[NodeId],
    prob: f64,
    rng: &mut R,
) {
    let k = members.len();
    let mut uf = UnionFind::new(k);
    for i in 0..k {
        for j in (i + 1)..k {
            if rng.gen::<f64>() < prob {
                b.add_edge(members[i], members[j]);
                uf.union(i as u32, j as u32);
            }
        }
    }
    for i in 1..k {
        if !uf.same(0, i as u32) {
            uf.union(0, i as u32);
            let other = rng.gen_range(0..i);
            b.add_edge(members[other], members[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::is_connected;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn paper_instance_counts() {
        let p = TransitStubParams::paper_default();
        assert_eq!(p.node_count(), 1008);
        let t = transit_stub(&p, &mut rng());
        assert_eq!(t.graph.node_count(), 1008);
        assert!(is_connected(&t.graph));
        // Figure 1 reports average degree 2.78; allow heuristic slack.
        let avg = t.graph.average_degree();
        assert!((2.2..3.4).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn role_partition() {
        let t = transit_stub(&TransitStubParams::paper_default(), &mut rng());
        let transit = t
            .roles
            .iter()
            .filter(|r| matches!(r, TsRole::Transit { .. }))
            .count();
        assert_eq!(transit, 36);
        assert_eq!(t.roles.len() - transit, 972);
    }

    #[test]
    fn stub_nodes_reach_world_via_transit() {
        // Removing all transit nodes must disconnect stub domains from
        // each other (no extra stub-stub edges in the default instance).
        let t = transit_stub(&TransitStubParams::paper_default(), &mut rng());
        let g = &t.graph;
        let stub_nodes: Vec<NodeId> = g
            .nodes()
            .filter(|&v| matches!(t.roles[v as usize], TsRole::Stub { .. }))
            .collect();
        let (stub_only, _) = topogen_graph::subgraph::induced_subgraph(g, &stub_nodes);
        let comps = topogen_graph::components::components(&stub_only);
        // Each stub domain is its own component: 36 transit nodes × 3.
        assert_eq!(comps.count(), 108);
    }

    #[test]
    fn extra_edges_add_shortcuts() {
        let mut p = TransitStubParams::paper_default();
        p.extra_stub_stub_edges = 50;
        p.extra_transit_stub_edges = 25;
        let base = transit_stub(
            &TransitStubParams::paper_default(),
            &mut StdRng::seed_from_u64(1),
        );
        let extra = transit_stub(&p, &mut StdRng::seed_from_u64(1));
        assert!(extra.graph.edge_count() > base.graph.edge_count() + 40);
    }

    #[test]
    fn two_level_hierarchy_single_transit_domain() {
        let p = TransitStubParams {
            stubs_per_transit_node: 2,
            extra_transit_stub_edges: 0,
            extra_stub_stub_edges: 0,
            transit_domains: 1,
            transit_domain_edge_prob: 1.0,
            transit_nodes_per_domain: 4,
            transit_edge_prob: 0.5,
            stub_nodes_per_domain: 5,
            stub_edge_prob: 0.3,
        };
        assert_eq!(p.node_count(), 4 + 4 * 2 * 5);
        let t = transit_stub(&p, &mut rng());
        assert!(is_connected(&t.graph));
    }

    #[test]
    fn deterministic() {
        let p = TransitStubParams::paper_default();
        let t1 = transit_stub(&p, &mut StdRng::seed_from_u64(5));
        let t2 = transit_stub(&p, &mut StdRng::seed_from_u64(5));
        assert_eq!(t1.graph.edges(), t2.graph.edges());
    }

    #[test]
    fn try_variant_connected_at_paper_params() {
        let t = try_transit_stub(&TransitStubParams::paper_default(), 64, &mut rng()).unwrap();
        assert_eq!(t.graph.node_count(), 1008);
        assert!(is_connected(&t.graph));
        assert_eq!(t.roles.len(), 1008);
    }

    #[test]
    fn try_variant_bounded_on_unconnectable_block() {
        use crate::errors::GenError;
        // Stub blocks with 9 nodes and zero edge probability can never
        // come out connected: the loop must exhaust, not spin. The
        // transit layers are pinned at prob 1 so the stub stage is the
        // only one that can fail, making the stage label deterministic.
        let mut p = TransitStubParams::paper_default();
        p.transit_edge_prob = 1.0;
        p.transit_domain_edge_prob = 1.0;
        p.stub_edge_prob = 0.0;
        let err = try_transit_stub(&p, 8, &mut rng()).unwrap_err();
        assert_eq!(
            err,
            GenError::Infeasible {
                stage: "stub domain",
                attempts: 8
            }
        );
    }

    #[test]
    fn try_variant_rejects_bad_params() {
        use crate::errors::GenError;
        let mut p = TransitStubParams::paper_default();
        p.transit_edge_prob = 1.5;
        assert!(matches!(
            try_transit_stub(&p, 8, &mut rng()),
            Err(GenError::BadParam { .. })
        ));
        let mut q = TransitStubParams::paper_default();
        q.transit_domains = 0;
        assert!(matches!(
            try_transit_stub(&q, 8, &mut rng()),
            Err(GenError::BadParam { .. })
        ));
    }
}
