//! # topogen-generators
//!
//! Every network topology generator the paper compares, reimplemented
//! from its published description:
//!
//! * **Canonical networks** (§3.1.3, used for calibration):
//!   [`canonical::kary_tree`], [`canonical::mesh`], [`canonical::linear`],
//!   [`canonical::ring`], [`canonical::complete`], and Erdős–Rényi random
//!   graphs [`canonical::random_gnp`] / [`canonical::random_gnm`].
//! * **Random-graph generator with geography**: [`waxman`] (§3.1.2,
//!   Waxman \[47\]).
//! * **Structural generators**: [`transit_stub`] (GT-ITM's Transit-Stub
//!   \[10\]), [`tiers`] (Tiers \[14\]) and GT-ITM's [`nlevel`]
//!   hierarchy (the model Zegura et al.'s original comparison \[50\]
//!   used), which deliberately construct hierarchy; plus the rest of the
//!   flat-random family ([`flat`]: Waxman-2, Doar–Leslie, exponential,
//!   locality edge methods).
//! * **Degree-based generators** (all targeting a power-law degree
//!   distribution): [`plrg`] (power-law random graph \[1\]), [`ba`]
//!   (Barabási–Albert \[4\] and the Albert–Barabási rewiring variant
//!   \[2\]), [`brite`] (BRITE v1.0-style \[28\]), [`glp`] (Bu–Towsley's
//!   GLP, the paper's "BT" \[8\]), and [`inet`] (Inet-style \[24\]).
//! * **Degree-sequence machinery** ([`degseq`]): power-law sampling,
//!   Erdős–Gallai feasibility, CCDFs and exponent fitting.
//! * **Connectivity variants** ([`connectivity`], Appendix D.1): given a
//!   degree sequence, connect nodes by PLRG matching, uniformly at
//!   random, highest-degree-first (uniform / degree-proportional /
//!   unsatisfied-proportional), or deterministically — plus graph
//!   re-wiring ("Modified B-A" / "Modified Brite", Figure 13).
//!
//! Every generator takes an explicit `&mut impl Rng` so runs are exactly
//! reproducible from a seed, and returns a simple undirected
//! [`topogen_graph::Graph`] (self-loops and duplicate links are dropped,
//! per the paper's footnote 6). Generators that may produce disconnected
//! graphs document it; the paper's methodology is to analyze the largest
//! connected component, available via
//! [`topogen_graph::components::largest_component`].
//!
//! The unified entry point is the [`Generate`] trait: every parameter
//! struct implements `params.generate(rng)`, which always returns the
//! *analysis graph* (the largest connected component when the raw model
//! output may be disconnected). The per-generator free functions remain
//! as the raw primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ba;
pub mod brite;
pub mod canonical;
pub mod connectivity;
pub mod degseq;
pub mod errors;
pub mod flat;
pub mod generate;
pub mod glp;
pub mod inet;
pub mod nlevel;
pub mod plrg;
pub mod tiers;
pub mod transit_stub;
pub mod waxman;

pub use errors::GenError;
pub use generate::Generate;
