//! Property-based tests for the synthetic Internet models: structural
//! invariants over arbitrary seeds and parameter jitter.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_graph::components::is_connected;
use topogen_measured::as_graph::{internet_as, AsTier, InternetAsParams};
use topogen_measured::observe::{edge_visibility, random_edge_loss};
use topogen_measured::rl_graph::{expand_to_routers, RouterExpansionParams};
use topogen_policy::bgp::top_degree_nodes;

fn arb_params() -> impl Strategy<Value = (InternetAsParams, u64)> {
    (
        100usize..350,
        3usize..12,
        0.02f64..0.12,
        0.2f64..0.6,
        any::<u64>(),
    )
        .prop_map(|(n, tier1, t2f, mh, seed)| {
            (
                InternetAsParams {
                    n,
                    tier1,
                    tier2_fraction: t2f,
                    multihome_prob: mh,
                    tier2_peering: 1.5,
                    sibling_fraction: 0.01,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn as_model_invariants((params, seed) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = internet_as(&params, &mut rng);
        prop_assert_eq!(m.graph.node_count(), params.n);
        prop_assert!(is_connected(&m.graph));
        prop_assert_eq!(m.tiers.len(), params.n);
        // Tier counts as configured.
        let cores = m.tiers.iter().filter(|t| matches!(t, AsTier::Core)).count();
        prop_assert_eq!(cores, params.tier1);
        // Every non-core AS has a provider; no core AS does.
        for v in m.graph.nodes() {
            let provs = m.annotations.providers_of(&m.graph, v).len();
            match m.tiers[v as usize] {
                AsTier::Core => prop_assert_eq!(provs, 0),
                _ => prop_assert!(provs >= 1, "AS {v} orphaned"),
            }
        }
        // No provider cycles: walking "up" must terminate at the core.
        for v in m.graph.nodes() {
            let mut cur = v;
            let mut steps = 0;
            while let Some(&p) = m.annotations.providers_of(&m.graph, cur).first() {
                cur = p;
                steps += 1;
                prop_assert!(steps <= params.n, "provider cycle at {v}");
            }
        }
    }

    #[test]
    fn router_expansion_invariants((params, seed) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = internet_as(&params, &mut rng);
        let rl = expand_to_routers(&m, &RouterExpansionParams::default(), &mut rng);
        prop_assert!(is_connected(&rl.graph));
        prop_assert_eq!(rl.router_as.len(), rl.graph.node_count());
        // Ranges tile the router id space.
        let mut expected = 0u32;
        for &(s, e) in &rl.as_router_range {
            prop_assert_eq!(s, expected);
            prop_assert!(e > s);
            expected = e;
        }
        prop_assert_eq!(expected as usize, rl.graph.node_count());
    }

    #[test]
    fn visibility_monotone_in_vantages((params, seed) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = internet_as(&params, &mut rng);
        let v2 = edge_visibility(&m.graph, &m.annotations, &top_degree_nodes(&m.graph, 2));
        let v6 = edge_visibility(&m.graph, &m.annotations, &top_degree_nodes(&m.graph, 6));
        prop_assert!(v6 >= v2 - 1e-12);
        prop_assert!(v2 > 0.0 && v6 <= 1.0);
    }

    #[test]
    fn edge_loss_is_subgraph((params, seed) in arb_params(), loss in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = internet_as(&params, &mut rng);
        let lossy = random_edge_loss(&m.graph, loss, &mut rng);
        prop_assert!(lossy.edge_count() <= m.graph.edge_count());
        for e in lossy.edges() {
            prop_assert!(m.graph.has_edge(e.a, e.b));
        }
    }
}
