//! Router-level expansion of an annotated AS topology.
//!
//! The paper's RL graph has ≈ 17× the AS graph's nodes and a *lower*
//! average degree (2.53 vs 4.13) — routers are mostly chained inside
//! PoPs, while inter-AS richness concentrates on border routers. We
//! reproduce that by expanding each AS into an intra-AS router network
//! whose size is proportional to the AS's degree (per \[41\], AS size
//! tracks AS degree), structured the way ISPs build networks:
//!
//! * size 1 — a single router;
//! * size 2–4 — a ring (or single link);
//! * larger — a two-level PoP design: a core ring of `⌈√size⌉` backbone
//!   routers with a few chords, and access routers star-attached to core
//!   routers round-robin.
//!
//! Each AS-level adjacency is realized as one link between *border
//! routers* — core routers chosen round-robin, so high-AS-degree ASes
//! spread their interconnects over many borders (this is what makes RL
//! hierarchy less degree-correlated than AS hierarchy, §5.2).

use crate::as_graph::InternetAs;
use rand::Rng;
use topogen_graph::{Graph, GraphBuilder, NodeId};

/// Parameters of the router expansion.
#[derive(Clone, Copy, Debug)]
pub struct RouterExpansionParams {
    /// Routers per unit of AS degree (the paper's ratio: ≈ 17× nodes at
    /// AS average degree ≈ 4 → about 4 routers per degree unit).
    pub routers_per_degree: f64,
    /// Minimum routers per AS.
    pub min_routers: usize,
    /// Cap on routers per AS (keeps the expansion of extreme hubs sane).
    pub max_routers: usize,
}

impl Default for RouterExpansionParams {
    fn default() -> Self {
        RouterExpansionParams {
            routers_per_degree: 4.0,
            min_routers: 1,
            max_routers: 600,
        }
    }
}

/// The expanded router-level topology.
#[derive(Clone, Debug)]
pub struct RouterLevel {
    /// The router graph (connected if the AS graph is).
    pub graph: Graph,
    /// Owning AS of each router.
    pub router_as: Vec<NodeId>,
    /// For each AS, the contiguous half-open range `[start, end)` of its
    /// router ids.
    pub as_router_range: Vec<(u32, u32)>,
}

/// Expand an AS topology to the router level.
pub fn expand_to_routers<R: Rng>(
    m: &InternetAs,
    params: &RouterExpansionParams,
    rng: &mut R,
) -> RouterLevel {
    let asg = &m.graph;
    let n_as = asg.node_count();
    // Size each AS.
    let sizes: Vec<usize> = (0..n_as as NodeId)
        .map(|a| {
            let deg = asg.degree(a) as f64;
            let jitter = 0.5 + rng.gen::<f64>(); // ±50% spread
            ((params.routers_per_degree * deg * jitter).round() as usize)
                .clamp(params.min_routers, params.max_routers)
        })
        .collect();
    let total: usize = sizes.iter().sum();
    let mut b = GraphBuilder::new(total);
    let mut router_as = Vec::with_capacity(total);
    let mut as_router_range = Vec::with_capacity(n_as);
    let mut start = 0u32;
    let mut core_counts = Vec::with_capacity(n_as);
    for (a, &sz) in sizes.iter().enumerate() {
        let s = start;
        let e = start + sz as u32;
        as_router_range.push((s, e));
        router_as.extend(std::iter::repeat_n(a as NodeId, sz));
        // Intra-AS structure. Core routers are ids s..s+core.
        let core = if sz <= 4 {
            sz
        } else {
            ((sz as f64).sqrt().ceil() as usize).max(2)
        };
        core_counts.push(core as u32);
        match sz {
            0 | 1 => {}
            2 => b.add_edge(s, s + 1),
            _ => {
                // Core ring with random chords: ISP backbones are built
                // biconnected-plus — a bare ring would give the whole
                // router graph the resilience of a cycle, which the
                // measured RL graph does not have (Figure 2(e) shows RL
                // resilience growing like the random graph's).
                for i in 0..core as u32 {
                    b.add_edge(s + i, s + (i + 1) % core as u32);
                }
                if core >= 5 {
                    for i in 0..core as u32 {
                        for _ in 0..3 {
                            let j = rng.gen_range(0..core as u32);
                            if j != i {
                                b.add_edge(s + i, s + j);
                            }
                        }
                    }
                }
                // Access routers star-attached round-robin to the core.
                for (k, r) in (s + core as u32..e).enumerate() {
                    b.add_edge(r, s + (k % core) as u32);
                }
            }
        }
        start = e;
    }
    // Inter-AS links: one per AS adjacency, terminating on core
    // (border) routers chosen round-robin per AS.
    let mut next_border = vec![0u32; n_as];
    for edge in asg.edges() {
        let (a1, a2) = (edge.a as usize, edge.b as usize);
        let r1 = as_router_range[a1].0 + next_border[a1] % core_counts[a1].max(1);
        let r2 = as_router_range[a2].0 + next_border[a2] % core_counts[a2].max(1);
        next_border[a1] += 1;
        next_border[a2] += 1;
        b.add_edge(r1, r2);
    }
    RouterLevel {
        graph: b.build(),
        router_as,
        as_router_range,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::as_graph::{internet_as, InternetAsParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::is_connected;

    fn make() -> (InternetAs, RouterLevel) {
        let mut rng = StdRng::seed_from_u64(99);
        let m = internet_as(&InternetAsParams::default_scaled(), &mut rng);
        let rl = expand_to_routers(&m, &RouterExpansionParams::default(), &mut rng);
        (m, rl)
    }

    #[test]
    fn scale_ratio_matches_paper() {
        let (m, rl) = make();
        let ratio = rl.graph.node_count() as f64 / m.graph.node_count() as f64;
        // Paper: 170589 / 10941 ≈ 15.6. Accept 8–25×.
        assert!((8.0..25.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rl_sparser_than_as() {
        let (m, rl) = make();
        assert!(
            rl.graph.average_degree() < m.graph.average_degree(),
            "RL {} vs AS {}",
            rl.graph.average_degree(),
            m.graph.average_degree()
        );
        // Paper: RL average degree 2.53. Accept 2–4.
        assert!((1.8..4.0).contains(&rl.graph.average_degree()));
    }

    #[test]
    fn connected() {
        let (_, rl) = make();
        assert!(is_connected(&rl.graph));
    }

    #[test]
    fn router_as_partition_consistent() {
        let (m, rl) = make();
        assert_eq!(rl.router_as.len(), rl.graph.node_count());
        for (a, &(s, e)) in rl.as_router_range.iter().enumerate() {
            assert!(s < e, "AS {a} has no routers");
            for r in s..e {
                assert_eq!(rl.router_as[r as usize], a as NodeId);
            }
        }
        let _ = m;
    }

    #[test]
    fn as_size_tracks_degree() {
        let (m, rl) = make();
        // The biggest AS by degree gets one of the biggest router counts.
        let big_as = (0..m.graph.node_count() as NodeId)
            .max_by_key(|&a| m.graph.degree(a))
            .unwrap();
        let (s, e) = rl.as_router_range[big_as as usize];
        let big_size = (e - s) as usize;
        let mean_size = rl.graph.node_count() / m.graph.node_count();
        assert!(big_size > 5 * mean_size, "big {big_size} mean {mean_size}");
    }

    #[test]
    fn heavy_tail_at_router_level() {
        let (_, rl) = make();
        assert!(rl.graph.max_degree() as f64 > 8.0 * rl.graph.average_degree());
    }

    #[test]
    fn intra_as_links_stay_within_range() {
        let (_, rl) = make();
        // Every edge either stays inside one AS's range or is an AS-level
        // adjacency between border (core) routers.
        for e in rl.graph.edges() {
            let (a1, a2) = (rl.router_as[e.a as usize], rl.router_as[e.b as usize]);
            if a1 == a2 {
                let (s, en) = rl.as_router_range[a1 as usize];
                assert!(e.a >= s && e.b < en);
            }
        }
    }

    #[test]
    fn deterministic() {
        let p = InternetAsParams::default_scaled();
        let mut r1 = StdRng::seed_from_u64(5);
        let m1 = internet_as(&p, &mut r1);
        let rl1 = expand_to_routers(&m1, &RouterExpansionParams::default(), &mut r1);
        let mut r2 = StdRng::seed_from_u64(5);
        let m2 = internet_as(&p, &mut r2);
        let rl2 = expand_to_routers(&m2, &RouterExpansionParams::default(), &mut r2);
        assert_eq!(rl1.graph.edges(), rl2.graph.edges());
    }
}
