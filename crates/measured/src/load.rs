//! Loading *real* measured graphs from edge-list exports.
//!
//! The rest of this crate synthesizes stand-ins for the paper's two
//! measured graphs; this module is the door for users who have the real
//! artifacts (a route-views AS adjacency dump, a Mercator router trace)
//! exported in the least-common-denominator `u v`-per-line format of
//! [`topogen_graph::io`]. Loading follows the measurement pipeline's
//! convention of restricting to the largest connected component — the
//! paper's metrics (expansion, resilience, distortion) are defined on a
//! connected graph — and every failure mode comes back as a typed
//! [`LoadError`] with file/line context so callers can print a one-line
//! diagnostic instead of unwinding.

use topogen_graph::components::largest_component;
use topogen_graph::io::{load_edge_list, LoadError};
use topogen_graph::Graph;

/// A measured graph loaded from disk, reduced to its giant component.
#[derive(Debug, Clone)]
pub struct MeasuredFile {
    /// Display name (the file stem).
    pub name: String,
    /// The giant component of the loaded graph.
    pub graph: Graph,
    /// Node count of the raw file, before the giant-component cut.
    pub raw_nodes: usize,
    /// Edge count of the raw file, before the giant-component cut.
    pub raw_edges: usize,
}

impl MeasuredFile {
    /// Average degree of the giant component.
    pub fn avg_degree(&self) -> f64 {
        if self.graph.node_count() == 0 {
            return 0.0;
        }
        2.0 * self.graph.edge_count() as f64 / self.graph.node_count() as f64
    }
}

/// Load a measured edge list and cut it to its largest connected
/// component. Unreadable, malformed, or edge-free files return a
/// [`LoadError`] naming the file (and line, where there is one).
pub fn load_measured(path: &str) -> Result<MeasuredFile, LoadError> {
    let raw = load_edge_list(path)?;
    let (graph, _) = largest_component(&raw);
    let name = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    Ok(MeasuredFile {
        name,
        raw_nodes: raw.node_count(),
        raw_edges: raw.edge_count(),
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!(
            "topogen-measured-{}-{name}.edges",
            std::process::id()
        ));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn loads_and_cuts_to_giant_component() {
        // Two components: a triangle and a lone edge.
        let path = temp("giant", "0 1\n1 2\n2 0\n3 4\n");
        let m = load_measured(&path).unwrap();
        assert_eq!(m.raw_nodes, 5);
        assert_eq!(m.raw_edges, 4);
        assert_eq!(m.graph.node_count(), 3, "triangle is the giant component");
        assert_eq!(m.graph.edge_count(), 3);
        assert!((m.avg_degree() - 2.0).abs() < 1e-12);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_one_line_error() {
        let err = load_measured("/nonexistent/rv.edges").unwrap_err();
        assert!(!err.to_string().contains('\n'));
    }

    #[test]
    fn corrupt_file_reports_file_and_line() {
        let path = temp("corrupt", "0 1\n0 banana\n");
        let err = load_measured(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        let _ = std::fs::remove_file(&path);
    }
}
