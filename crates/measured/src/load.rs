//! Loading *real* measured graphs from edge-list exports.
//!
//! The rest of this crate synthesizes stand-ins for the paper's two
//! measured graphs; this module is the door for users who have the real
//! artifacts (a route-views AS adjacency dump, a Mercator router trace)
//! exported in the least-common-denominator `u v`-per-line format of
//! [`topogen_graph::io`], or in the binary `.tgr` container of
//! `topogen-store` (sniffed by magic bytes, so the extension does not
//! matter). Loading follows the measurement pipeline's convention of
//! restricting to the largest connected component — the paper's metrics
//! (expansion, resilience, distortion) are defined on a connected
//! graph — and every failure mode comes back as a typed [`LoadError`]
//! with file/line (or byte-offset) context so callers can print a
//! one-line diagnostic instead of unwinding.

use topogen_graph::components::largest_component;
use topogen_graph::io::{load_edge_list, LoadError};
use topogen_graph::Graph;

/// A measured graph loaded from disk, reduced to its giant component.
#[derive(Debug, Clone)]
pub struct MeasuredFile {
    /// Display name (the file stem).
    pub name: String,
    /// The giant component of the loaded graph.
    pub graph: Graph,
    /// Node count of the raw file, before the giant-component cut.
    pub raw_nodes: usize,
    /// Edge count of the raw file, before the giant-component cut.
    pub raw_edges: usize,
}

impl MeasuredFile {
    /// Average degree of the giant component.
    pub fn avg_degree(&self) -> f64 {
        if self.graph.node_count() == 0 {
            return 0.0;
        }
        2.0 * self.graph.edge_count() as f64 / self.graph.node_count() as f64
    }
}

/// Load a measured graph — a text edge list or a binary `.tgr`
/// container, distinguished by magic bytes — and cut it to its largest
/// connected component. Unreadable, malformed, or edge-free files
/// return a [`LoadError`] naming the file and the position (line for
/// text, byte offset for binary, where there is one).
pub fn load_measured(path: &str) -> Result<MeasuredFile, LoadError> {
    let raw = if sniff_binary(path) {
        load_binary(path)?
    } else {
        load_edge_list(path)?
    };
    let (graph, _) = largest_component(&raw);
    let name = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    Ok(MeasuredFile {
        name,
        raw_nodes: raw.node_count(),
        raw_edges: raw.edge_count(),
        graph,
    })
}

/// True when the file starts with the `.tgr` container magic. Read
/// failures fall through to the text loader, which reports them with
/// its usual [`LoadError::Io`] context.
fn sniff_binary(path: &str) -> bool {
    use std::io::Read;
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic).is_ok() && magic == topogen_store::codec::MAGIC
}

/// Read and decode a binary `.tgr` graph; codec failures arrive as
/// [`LoadError::Binary`] with the codec's byte-offset context.
fn load_binary(path: &str) -> Result<Graph, LoadError> {
    let bytes = std::fs::read(path).map_err(|e| LoadError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    let graph = topogen_store::codec::decode_graph(&bytes).map_err(|e| LoadError::Binary {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    if graph.edge_count() == 0 {
        return Err(LoadError::Empty {
            path: path.to_string(),
        });
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!(
            "topogen-measured-{}-{name}.edges",
            std::process::id()
        ));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn loads_and_cuts_to_giant_component() {
        // Two components: a triangle and a lone edge.
        let path = temp("giant", "0 1\n1 2\n2 0\n3 4\n");
        let m = load_measured(&path).unwrap();
        assert_eq!(m.raw_nodes, 5);
        assert_eq!(m.raw_edges, 4);
        assert_eq!(m.graph.node_count(), 3, "triangle is the giant component");
        assert_eq!(m.graph.edge_count(), 3);
        assert!((m.avg_degree() - 2.0).abs() < 1e-12);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_one_line_error() {
        let err = load_measured("/nonexistent/rv.edges").unwrap_err();
        assert!(!err.to_string().contains('\n'));
    }

    #[test]
    fn corrupt_file_reports_file_and_line() {
        let path = temp("corrupt", "0 1\n0 banana\n");
        let err = load_measured(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        let _ = std::fs::remove_file(&path);
    }

    fn temp_bytes(name: &str, content: &[u8]) -> String {
        let path = std::env::temp_dir().join(format!(
            "topogen-measured-{}-{name}.tgr",
            std::process::id()
        ));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn loads_binary_tgr_identically_to_text() {
        // Triangle plus a lone edge, same topology as the text test.
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (3, 4)]);
        let path = temp_bytes("roundtrip", &topogen_store::codec::encode_graph(&g));
        let m = load_measured(&path).unwrap();
        assert_eq!(m.raw_nodes, 5);
        assert_eq!(m.raw_edges, 4);
        assert_eq!(m.graph.node_count(), 3);
        assert_eq!(m.graph.edge_count(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_binary_reports_offset_context() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let mut bytes = topogen_store::codec::encode_graph(&g);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let path = temp_bytes("corrupt", &bytes);
        let err = load_measured(&path).unwrap_err();
        assert!(matches!(err, LoadError::Binary { .. }), "{err:?}");
        let msg = err.to_string();
        assert!(
            msg.contains("offset") || msg.contains("checksum"),
            "binary errors should carry position context: {msg}"
        );
        assert!(!msg.contains('\n'));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_binary_is_rejected() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let bytes = topogen_store::codec::encode_graph(&g);
        let path = temp_bytes("truncated", &bytes[..bytes.len() - 3]);
        let err = load_measured(&path).unwrap_err();
        assert!(matches!(err, LoadError::Binary { .. }), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn edge_free_binary_is_empty_error() {
        let g = Graph::from_edges(4, vec![]);
        let path = temp_bytes("empty", &topogen_store::codec::encode_graph(&g));
        let err = load_measured(&path).unwrap_err();
        assert!(matches!(err, LoadError::Empty { .. }), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }
}
