//! Annotated AS-level Internet model.
//!
//! A three-tier economic growth model producing graphs with (a) a
//! heavy-tailed degree distribution, (b) ground-truth provider–customer /
//! peer / sibling annotations, and (c) the *loose* hierarchy the paper
//! measures in the real AS graph: no strict tree, pervasive multihoming,
//! and peering shortcuts at the top.
//!
//! Growth order matters: provider choice is *customer-degree
//! proportional* (an AS with many customers attracts more), which is the
//! preferential-attachment mechanism known to yield power laws — and the
//! very mechanism the paper's §5.2 credits for the AS graph's
//! degree-correlated hierarchy.

use rand::Rng;
use topogen_graph::{Graph, GraphBuilder, NodeId};
use topogen_policy::rel::{annotations_from_pairs, AsAnnotations};

/// Parameters of the AS-level model.
#[derive(Clone, Copy, Debug)]
pub struct InternetAsParams {
    /// Total number of ASes.
    pub n: usize,
    /// Number of tier-1 (core) ASes, mutually peered.
    pub tier1: usize,
    /// Fraction of ASes that are tier-2 regional providers.
    pub tier2_fraction: f64,
    /// Probability that a customer AS buys from a second provider
    /// (multihoming); a third provider is bought with the square of this.
    pub multihome_prob: f64,
    /// Expected number of peer links each tier-2 AS establishes with
    /// other tier-2s.
    pub tier2_peering: f64,
    /// Fraction of stub ASes that are actually sibling pairs (two AS
    /// numbers, one organization) — small in practice.
    pub sibling_fraction: f64,
}

impl InternetAsParams {
    /// CI-sized default: ≈ 1,100 ASes — the same shape as the paper's
    /// 10,941-node AS graph at a tenth of the size.
    pub fn default_scaled() -> Self {
        InternetAsParams {
            n: 1_100,
            tier1: 10,
            tier2_fraction: 0.06,
            multihome_prob: 0.45,
            tier2_peering: 2.0,
            sibling_fraction: 0.01,
        }
    }

    /// Paper-scale: ≈ 11,000 ASes, matching Figure 1's AS row.
    pub fn paper_scale() -> Self {
        InternetAsParams {
            n: 11_000,
            ..Self::default_scaled()
        }
    }
}

/// Tier of an AS in the generated topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AsTier {
    /// Backbone (tier-1) AS.
    Core,
    /// Regional provider (tier-2).
    Regional,
    /// Stub/edge AS.
    Stub,
}

/// The generated AS topology with ground-truth annotations.
#[derive(Clone, Debug)]
pub struct InternetAs {
    /// The AS graph (connected).
    pub graph: Graph,
    /// Ground-truth relationship per edge.
    pub annotations: AsAnnotations,
    /// Tier of each AS.
    pub tiers: Vec<AsTier>,
}

/// Generate an annotated AS topology.
///
/// # Panics
/// Panics if `tier1 < 2` or the tier counts exceed `n`.
pub fn internet_as<R: Rng>(params: &InternetAsParams, rng: &mut R) -> InternetAs {
    let p = *params;
    assert!(p.tier1 >= 2, "need at least two tier-1 ASes");
    let tier2 = ((p.n as f64 * p.tier2_fraction).round() as usize).max(1);
    assert!(p.tier1 + tier2 <= p.n, "tier counts exceed n");
    let n = p.n;
    let mut b = GraphBuilder::new(n);
    let mut provider_customer: Vec<(NodeId, NodeId)> = Vec::new();
    let mut peers: Vec<(NodeId, NodeId)> = Vec::new();
    let mut siblings: Vec<(NodeId, NodeId)> = Vec::new();
    let mut present = std::collections::HashSet::<(NodeId, NodeId)>::new();
    let mut customers = vec![0usize; n]; // customer count per provider
    let mut tiers = Vec::with_capacity(n);

    let add_pc = |b: &mut GraphBuilder,
                  present: &mut std::collections::HashSet<(NodeId, NodeId)>,
                  provider_customer: &mut Vec<(NodeId, NodeId)>,
                  customers: &mut Vec<usize>,
                  prov: NodeId,
                  cust: NodeId|
     -> bool {
        let key = (prov.min(cust), prov.max(cust));
        if prov == cust || !present.insert(key) {
            return false;
        }
        b.add_edge(prov, cust);
        provider_customer.push((prov, cust));
        customers[prov as usize] += 1;
        true
    };

    // --- Tier-1 core: full peer mesh (ids 0..tier1). ---
    for i in 0..p.tier1 as NodeId {
        tiers.push(AsTier::Core);
        for j in (i + 1)..p.tier1 as NodeId {
            if present.insert((i, j)) {
                b.add_edge(i, j);
                peers.push((i, j));
            }
        }
    }

    // --- Tier-2 regionals: ids tier1..tier1+tier2. ---
    let t2_start = p.tier1 as NodeId;
    let t2_end = (p.tier1 + tier2) as NodeId;
    for v in t2_start..t2_end {
        tiers.push(AsTier::Regional);
        // Providers among tier-1 (always) and possibly an earlier tier-2.
        let prov1 = pick_provider(&customers, 0, v.min(t2_end), p.tier1 as NodeId, rng);
        add_pc(
            &mut b,
            &mut present,
            &mut provider_customer,
            &mut customers,
            prov1,
            v,
        );
        if rng.gen::<f64>() < p.multihome_prob {
            let prov2 = pick_provider(&customers, 0, v, p.tier1 as NodeId, rng);
            add_pc(
                &mut b,
                &mut present,
                &mut provider_customer,
                &mut customers,
                prov2,
                v,
            );
        }
    }
    // Tier-2 peering: expected `tier2_peering` links each.
    for v in t2_start..t2_end {
        let mut want = p.tier2_peering;
        while want > 0.0 && tier2 >= 2 {
            if want < 1.0 && rng.gen::<f64>() >= want {
                break;
            }
            want -= 1.0;
            let w = rng.gen_range(t2_start..t2_end);
            if w == v {
                continue;
            }
            let key = (v.min(w), v.max(w));
            if present.insert(key) {
                b.add_edge(key.0, key.1);
                peers.push(key);
            }
        }
    }

    // --- Stubs: the rest, attaching with preferential provider choice
    // among tier-1 + tier-2 (weighted toward regionals by excluding the
    // core with probability 0.8 — stubs rarely buy direct tier-1
    // transit).
    for v in t2_end..n as NodeId {
        tiers.push(AsTier::Stub);
        let lo = if rng.gen::<f64>() < 0.8 { t2_start } else { 0 };
        let prov1 = pick_provider(&customers, lo, t2_end, t2_end - lo, rng);
        add_pc(
            &mut b,
            &mut present,
            &mut provider_customer,
            &mut customers,
            prov1,
            v,
        );
        let mut extra_p = p.multihome_prob;
        while rng.gen::<f64>() < extra_p {
            let prov = pick_provider(&customers, t2_start, t2_end, t2_end - t2_start, rng);
            add_pc(
                &mut b,
                &mut present,
                &mut provider_customer,
                &mut customers,
                prov,
                v,
            );
            extra_p *= p.multihome_prob;
        }
        // Occasionally a stub is half of a sibling pair with the previous
        // stub.
        if v > t2_end && rng.gen::<f64>() < p.sibling_fraction {
            let w = v - 1;
            if matches!(tiers[w as usize], AsTier::Stub) {
                let key = (w, v);
                if present.insert(key) {
                    b.add_edge(w, v);
                    siblings.push(key);
                }
            }
        }
    }

    let graph = b.build();
    let annotations = annotations_from_pairs(&graph, &provider_customer, &peers, &siblings);
    InternetAs {
        graph,
        annotations,
        tiers,
    }
}

/// Pick a provider in `lo..hi` with probability proportional to
/// `1 + customers`, i.e. preferential attachment on transit degree.
/// `span` is `hi - lo` (passed for the degenerate fallback).
fn pick_provider<R: Rng>(
    customers: &[usize],
    lo: NodeId,
    hi: NodeId,
    span: NodeId,
    rng: &mut R,
) -> NodeId {
    debug_assert!(hi > lo);
    let total: usize = (lo..hi).map(|v| 1 + customers[v as usize]).sum();
    if total == 0 {
        return lo + rng.gen_range(0..span.max(1));
    }
    let mut r = rng.gen_range(0..total);
    for v in lo..hi {
        let w = 1 + customers[v as usize];
        if r < w {
            return v;
        }
        r -= w;
    }
    hi - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::is_connected;
    use topogen_graph::UNREACHED;
    use topogen_policy::valley::policy_distances;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2001)
    }

    fn make() -> InternetAs {
        internet_as(&InternetAsParams::default_scaled(), &mut rng())
    }

    #[test]
    fn shape_matches_paper_as_row() {
        let m = make();
        assert_eq!(m.graph.node_count(), 1100);
        assert!(is_connected(&m.graph), "AS graph must be connected");
        // Figure 1: AS average degree 4.13. Allow the model some slack.
        let avg = m.graph.average_degree();
        assert!((2.6..5.5).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn heavy_tailed_degrees() {
        let m = make();
        // Hubs far above the mean — the Faloutsos signature.
        assert!(
            m.graph.max_degree() as f64 > 10.0 * m.graph.average_degree(),
            "max {} avg {}",
            m.graph.max_degree(),
            m.graph.average_degree()
        );
        // Power-law exponent in the observed AS range (≈ 2.1–2.5).
        let alpha = topogen_generators::degseq::fit_power_law_exponent(&m.graph.degrees(), 2);
        if let Some(a) = alpha {
            assert!((1.5..3.5).contains(&a), "alpha {a}");
        }
    }

    #[test]
    fn every_stub_has_a_provider() {
        let m = make();
        for v in m.graph.nodes() {
            if matches!(m.tiers[v as usize], AsTier::Stub) {
                assert!(
                    !m.annotations.providers_of(&m.graph, v).is_empty(),
                    "stub {v} has no provider"
                );
            }
        }
    }

    #[test]
    fn core_is_peered_and_providerless() {
        let m = make();
        for v in 0..10u32 {
            assert!(m.annotations.providers_of(&m.graph, v).is_empty());
        }
        // Core clique: first two cores are peers.
        assert!(m.annotations.is_peer(&m.graph, 0, 1));
    }

    #[test]
    fn policy_reaches_everything_from_core() {
        // From a tier-1, customer cone + peers' cones covers the world.
        let m = make();
        let d = policy_distances(&m.graph, &m.annotations, 0);
        let unreachable = d.iter().filter(|&&x| x == UNREACHED).count();
        assert_eq!(unreachable, 0, "{unreachable} ASes invisible from core");
    }

    #[test]
    fn policy_reaches_everything_from_stub() {
        // Valley-free reachability is global when every AS has a path up
        // to the peered core.
        let m = make();
        let stub = (m.graph.node_count() - 1) as NodeId;
        let d = policy_distances(&m.graph, &m.annotations, stub);
        let unreachable = d.iter().filter(|&&x| x == UNREACHED).count();
        assert_eq!(unreachable, 0);
    }

    #[test]
    fn relationship_mix_realistic() {
        let m = make();
        let (pc, peer, _sib) = m.annotations.counts();
        // Provider–customer dominates; peering is a visible minority.
        assert!(pc as f64 > 0.6 * m.graph.edge_count() as f64);
        assert!(peer > 10);
    }

    #[test]
    fn deterministic() {
        let p = InternetAsParams::default_scaled();
        let a = internet_as(&p, &mut StdRng::seed_from_u64(7));
        let b = internet_as(&p, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.graph.edges(), b.graph.edges());
    }

    #[test]
    #[should_panic]
    fn rejects_single_core() {
        let mut p = InternetAsParams::default_scaled();
        p.tier1 = 1;
        let _ = internet_as(&p, &mut rng());
    }
}
