//! The measurement model: what a BGP vantage point actually sees.
//!
//! The paper's AS graph is "obtained from the routing table at a router
//! that peers with more than 20 other backbone routers" — i.e. the union
//! of AS paths in a small number of tables, *not* the true topology. The
//! known consequence (Chang et al. \[12\]) is that peering links far from
//! the vantage points are invisible. This module reproduces that
//! incompleteness so experiments can quantify how much it moves the
//! metrics (the paper argues its conclusions are robust to it).

use rand::Rng;
use topogen_graph::{Graph, GraphBuilder, NodeId};
use topogen_policy::bgp::{routing_tables, top_degree_nodes};
use topogen_policy::rel::AsAnnotations;

/// The AS graph as observed from `vantages`: the union of edges on the
/// valley-free shortest paths in their simulated routing tables. Node
/// count is preserved (unobserved ASes become isolated nodes; callers
/// typically take the largest component).
pub fn observed_as_graph(g: &Graph, ann: &AsAnnotations, vantages: &[NodeId]) -> Graph {
    let tables = routing_tables(g, ann, vantages);
    let mut b = GraphBuilder::new(g.node_count());
    for path in &tables {
        for w in path.windows(2) {
            b.add_edge(w[0], w[1]);
        }
    }
    b.build()
}

/// Observation with the paper's vantage profile: the `k` best-connected
/// ASes (route-views peers with backbone routers).
pub fn observed_from_top_vantages(g: &Graph, ann: &AsAnnotations, k: usize) -> Graph {
    let v = top_degree_nodes(g, k);
    observed_as_graph(g, ann, &v)
}

/// Fraction of true edges visible from the given vantages — the paper's
/// completeness caveat, quantified.
pub fn edge_visibility(g: &Graph, ann: &AsAnnotations, vantages: &[NodeId]) -> f64 {
    if g.edge_count() == 0 {
        return 1.0;
    }
    let o = observed_as_graph(g, ann, vantages);
    o.edge_count() as f64 / g.edge_count() as f64
}

/// The router-level measurement model: the RL graph as a union of
/// traceroute paths. The paper's RL topology came from "a series of
/// traceroute measurements" (SCAN \[20\]): shortest IP paths from a few
/// measurement hosts toward many addresses. We reproduce that as the
/// union of one shortest path from each of `sources` to every node in
/// `destinations` (BFS trees make "one traceroute per destination"
/// exact). Node count is preserved; unobserved routers become isolated.
pub fn traceroute_observed(g: &Graph, sources: &[NodeId], destinations: &[NodeId]) -> Graph {
    use topogen_graph::tree::RootedTree;
    let mut b = GraphBuilder::new(g.node_count());
    for &s in sources {
        // One BFS tree per source = the per-destination traceroute paths
        // a mapper at `s` would record.
        let tree = RootedTree::bfs_tree(g, s);
        for &d in destinations {
            if !tree.contains(d) {
                continue;
            }
            let mut v = d;
            while v != s {
                let p = tree.parent[v as usize];
                b.add_edge(v, p);
                v = p;
            }
        }
    }
    b.build()
}

/// Sampled-destination traceroute observation: `k` sources (the paper's
/// mappers numbered a handful), destinations sampled every `stride`
/// nodes (address-space probing).
pub fn traceroute_observed_sampled<R: Rng>(
    g: &Graph,
    k_sources: usize,
    stride: usize,
    rng: &mut R,
) -> Graph {
    use rand::seq::SliceRandom;
    let mut nodes: Vec<NodeId> = (0..g.node_count() as NodeId).collect();
    nodes.shuffle(rng);
    let sources: Vec<NodeId> = nodes.iter().copied().take(k_sources.max(1)).collect();
    let destinations: Vec<NodeId> = (0..g.node_count() as NodeId)
        .step_by(stride.max(1))
        .collect();
    traceroute_observed(g, &sources, &destinations)
}

/// Drop each edge independently with probability `loss` — the crude
/// "errors and omissions" model for robustness experiments on any graph
/// (router-level maps lose adjacencies too, §3.1.1).
pub fn random_edge_loss<R: Rng>(g: &Graph, loss: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&loss));
    let mut b = GraphBuilder::new(g.node_count());
    for e in g.edges() {
        if rng.gen::<f64>() >= loss {
            b.add_edge(e.a, e.b);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::as_graph::{internet_as, InternetAsParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_graph::components::largest_component;

    fn make() -> crate::as_graph::InternetAs {
        internet_as(
            &InternetAsParams::default_scaled(),
            &mut StdRng::seed_from_u64(31),
        )
    }

    #[test]
    fn observation_is_subgraph() {
        let m = make();
        let o = observed_from_top_vantages(&m.graph, &m.annotations, 5);
        assert_eq!(o.node_count(), m.graph.node_count());
        assert!(o.edge_count() <= m.graph.edge_count());
        for e in o.edges() {
            assert!(m.graph.has_edge(e.a, e.b), "phantom edge {e}");
        }
    }

    #[test]
    fn more_vantages_see_more() {
        let m = make();
        let v1 = edge_visibility(
            &m.graph,
            &m.annotations,
            &topogen_policy::bgp::top_degree_nodes(&m.graph, 1),
        );
        let v10 = edge_visibility(
            &m.graph,
            &m.annotations,
            &topogen_policy::bgp::top_degree_nodes(&m.graph, 10),
        );
        assert!(v10 >= v1, "{v10} < {v1}");
        assert!(
            v1 > 0.5,
            "even one core vantage sees most transit edges: {v1}"
        );
        assert!(v10 < 1.0 + 1e-9);
    }

    #[test]
    fn observed_graph_still_internet_like() {
        // The observation keeps the giant component and heavy tail.
        let m = make();
        let o = observed_from_top_vantages(&m.graph, &m.annotations, 5);
        let (lcc, _) = largest_component(&o);
        assert!(lcc.node_count() as f64 > 0.95 * m.graph.node_count() as f64);
        assert!(lcc.max_degree() as f64 > 8.0 * lcc.average_degree());
    }

    #[test]
    fn traceroute_union_is_subgraph_and_spans_paths() {
        let m = make();
        let mut rng = StdRng::seed_from_u64(9);
        let o = super::traceroute_observed_sampled(&m.graph, 5, 1, &mut rng);
        assert_eq!(o.node_count(), m.graph.node_count());
        assert!(o.edge_count() <= m.graph.edge_count());
        for e in o.edges() {
            assert!(m.graph.has_edge(e.a, e.b));
        }
        // Probing every destination from 5 sources covers every node.
        let (lcc, _) = largest_component(&o);
        assert_eq!(lcc.node_count(), m.graph.node_count());
    }

    #[test]
    fn more_traceroute_sources_see_more_edges() {
        let m = make();
        let e1 = super::traceroute_observed_sampled(&m.graph, 1, 1, &mut StdRng::seed_from_u64(3))
            .edge_count();
        let e8 = super::traceroute_observed_sampled(&m.graph, 8, 1, &mut StdRng::seed_from_u64(3))
            .edge_count();
        assert!(e8 >= e1, "{e8} < {e1}");
        // A single source sees exactly a spanning tree (n-1 edges).
        assert_eq!(e1, m.graph.node_count() - 1);
    }

    #[test]
    fn random_loss_bounds() {
        let m = make();
        let mut rng = StdRng::seed_from_u64(4);
        let g0 = random_edge_loss(&m.graph, 0.0, &mut rng);
        assert_eq!(g0.edge_count(), m.graph.edge_count());
        let g1 = random_edge_loss(&m.graph, 1.0, &mut rng);
        assert_eq!(g1.edge_count(), 0);
        let half = random_edge_loss(&m.graph, 0.5, &mut rng);
        let frac = half.edge_count() as f64 / m.graph.edge_count() as f64;
        assert!((0.42..0.58).contains(&frac), "kept {frac}");
    }
}
