//! # topogen-measured
//!
//! Synthetic stand-ins for the paper's two measured Internet graphs.
//!
//! The paper compares generators against (1) an **AS graph** derived from
//! a May-2001 route-views BGP table (10,941 nodes, average degree 4.13)
//! and (2) a **router-level (RL) graph** from the SCAN/Mercator
//! traceroute project (170,589 nodes, average degree 2.53, ≈ 17× the AS
//! graph). Those artifacts are not reproducible offline, so this crate
//! builds the closest synthetic equivalents that exercise the same code
//! paths (see DESIGN.md §2 for the substitution argument):
//!
//! * [`as_graph`] — an annotated AS-level topology grown by an economic
//!   model: a clique-like tier-1 core of peers, tier-2 regional providers
//!   multihoming into it, and a large population of stub ASes choosing
//!   providers with customer-degree-proportional preference (which yields
//!   the heavy-tailed degree distribution measured by Faloutsos et al.).
//!   Ground-truth provider–customer/peer annotations come with the graph,
//!   so the full policy-routing pipeline of the paper runs end to end.
//! * [`rl_graph`] — a router-level expansion of the AS topology: each AS
//!   becomes an intra-AS router network sized proportionally to its AS
//!   degree (after Tangmunarunkit et al.'s observation that AS size
//!   tracks AS degree \[41\]), with ring/star PoP structures and border
//!   routers stitched along AS adjacencies.
//! * [`observe`] — the measurement model: the AS graph *as seen from a
//!   BGP vantage point* (union of table paths), reproducing the
//!   incompleteness the paper repeatedly cautions about.
//! * [`load`] — the escape hatch for users who *do* have the real
//!   artifacts: load an edge-list export, cut to the giant component,
//!   with typed file/line errors instead of panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod as_graph;
pub mod load;
pub mod observe;
pub mod rl_graph;

pub use as_graph::{internet_as, InternetAs, InternetAsParams};
pub use load::{load_measured, MeasuredFile};
pub use rl_graph::{expand_to_routers, RouterExpansionParams, RouterLevel};
