//! Canonical cache-key construction.
//!
//! A store key is a deterministic, human-readable string of
//! `name=value` fields joined by `|`, always ending with the codec
//! version and an engine code-version stamp. The on-disk address is the
//! FNV-1a hash of that string; the string itself is recorded in the
//! store ledger so `repro store ls` can show what each entry is.
//!
//! Determinism rules:
//! * fields are emitted in the order the caller adds them — callers use
//!   a fixed field order per artifact kind;
//! * floats are formatted with `{:?}` (shortest round-trip form), so
//!   the same `f64` always prints the same bytes;
//! * content hashes (e.g. of an input graph) are rendered as fixed-width
//!   16-hex.

use crate::fnv::fnv1a;

/// Code-version stamp folded into every key. Bump whenever an engine
/// change can alter cached results without any parameter changing
/// (e.g. a generator or metric algorithm edit): old entries then stop
/// matching and are recomputed instead of being served stale.
pub const ENGINE_STAMP: &str = "topogen-engine-1";

/// Builder for canonical key strings.
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    buf: String,
}

impl KeyBuilder {
    /// Start a key for an artifact kind (`"topology"`, `"metric-curves"`,
    /// `"link-values"`, …).
    pub fn new(kind: &str) -> Self {
        debug_assert!(!kind.contains('|'));
        KeyBuilder {
            buf: format!("kind={kind}"),
        }
    }

    /// Append a string-valued field.
    pub fn field(mut self, name: &str, value: &str) -> Self {
        debug_assert!(!name.contains('|') && !value.contains('|'));
        self.buf.push('|');
        self.buf.push_str(name);
        self.buf.push('=');
        self.buf.push_str(value);
        self
    }

    /// Append an integer-valued field.
    pub fn u64(self, name: &str, value: u64) -> Self {
        let v = value.to_string();
        self.field(name, &v)
    }

    /// Append a content hash as fixed-width 16-hex.
    pub fn hash(self, name: &str, value: u64) -> Self {
        let v = format!("{value:016x}");
        self.field(name, &v)
    }

    /// Finalize: append codec version + engine stamp and return the
    /// canonical string.
    pub fn finish(self) -> String {
        format!(
            "{}|codec={}|engine={}",
            self.buf,
            crate::codec::CODEC_VERSION,
            ENGINE_STAMP
        )
    }
}

/// The on-disk address for a canonical key string.
pub fn key_hash(key: &str) -> u64 {
    fnv1a(key.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let k1 = KeyBuilder::new("topology")
            .field("gen", "waxman")
            .field("params", "n=1000,alpha=0.15,beta=0.6")
            .u64("seed", 42)
            .field("scale", "small")
            .finish();
        let k2 = KeyBuilder::new("topology")
            .field("gen", "waxman")
            .field("params", "n=1000,alpha=0.15,beta=0.6")
            .u64("seed", 42)
            .field("scale", "small")
            .finish();
        assert_eq!(k1, k2);
        assert!(k1.ends_with(&format!("codec=1|engine={ENGINE_STAMP}")));

        let k3 = KeyBuilder::new("topology")
            .field("gen", "waxman")
            .field("params", "n=1000,alpha=0.15,beta=0.6")
            .u64("seed", 43)
            .field("scale", "small")
            .finish();
        assert_ne!(key_hash(&k1), key_hash(&k3));
    }

    #[test]
    fn hash_field_is_fixed_width() {
        let k = KeyBuilder::new("link-values").hash("graph", 0x2a).finish();
        assert!(k.contains("graph=000000000000002a"), "{k}");
    }
}
