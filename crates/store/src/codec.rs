//! The `.tgr` binary container: a magic/version header, tagged
//! sections, and a trailing FNV-1a content checksum.
//!
//! Every artifact the store persists — a CSR graph, a topology with its
//! relationship annotations, a set of metric curves, a link-value
//! vector — is one container whose payload is a sequence of tagged
//! sections. All integers are **little-endian**; the header carries an
//! explicit endian tag so a big-endian reader fails loudly on the tag
//! instead of quietly mis-decoding lengths. See `crates/store/README.md`
//! for the byte-level layout.
//!
//! Decoding is fully defensive: every failure mode on arbitrary bytes is
//! a typed [`CodecError`] carrying the byte offset — never a panic and
//! never an out-of-bounds slice.

use crate::fnv::Fnv1a;
use topogen_graph::{Graph, NodeId};

/// File magic: "TGRF" (TopoGen Repro File).
pub const MAGIC: [u8; 4] = *b"TGRF";

/// Current codec version. Bump on any layout change; the store's keys
/// include it, so old entries simply stop matching instead of being
/// mis-decoded.
pub const CODEC_VERSION: u32 = 1;

/// Endian sentinel written as a little-endian `u32`. A big-endian
/// reader sees `0x0D0C0B0A` and rejects the file.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;

/// Section tag: a CSR graph (node count, edge count, normalized edges).
pub const SEC_GRAPH: [u8; 4] = *b"GRPH";
/// Section tag: per-edge AS relationship annotations.
pub const SEC_ANNOTATIONS: [u8; 4] = *b"ANNO";
/// Section tag: per-router owning-AS ids.
pub const SEC_ROUTER_AS: [u8; 4] = *b"RTAS";
/// Section tag: the AS overlay graph a router topology was expanded from.
pub const SEC_OVERLAY_GRAPH: [u8; 4] = *b"OVGR";
/// Section tag: the overlay graph's relationship annotations.
pub const SEC_OVERLAY_ANNOTATIONS: [u8; 4] = *b"OVAN";
/// Section tag: an expansion curve (f64 array).
pub const SEC_EXPANSION: [u8; 4] = *b"EXPN";
/// Section tag: a resilience curve (radius/avg-size/value points).
pub const SEC_RESILIENCE: [u8; 4] = *b"RESC";
/// Section tag: a distortion curve.
pub const SEC_DISTORTION: [u8; 4] = *b"DISC";
/// Section tag: a link-value vector in edge order (f64 array).
pub const SEC_LINK_VALUES: [u8; 4] = *b"LVAL";

/// Typed decode failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The version field names a layout this build cannot read.
    UnsupportedVersion(u32),
    /// The endian tag decoded to something other than [`ENDIAN_TAG`] —
    /// the file was written on (or for) a different byte order.
    BadEndianTag(u32),
    /// The buffer ends before the structure it promises.
    Truncated {
        /// Offset at which more bytes were expected.
        offset: usize,
    },
    /// The trailing FNV-1a checksum does not match the content.
    Checksum {
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum computed over the content.
        actual: u64,
    },
    /// Structurally invalid content (bad counts, unsorted edges, …).
    Malformed {
        /// Offset of the offending structure.
        offset: usize,
        /// What was wrong.
        what: String,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "offset 0: not a .tgr file (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "offset 4: unsupported codec version {v}")
            }
            CodecError::BadEndianTag(t) => {
                write!(
                    f,
                    "offset 8: bad endian tag {t:#010x} (foreign byte order?)"
                )
            }
            CodecError::Truncated { offset } => write!(f, "offset {offset}: truncated"),
            CodecError::Checksum { expected, actual } => write!(
                f,
                "checksum mismatch: stored {expected:#018x}, content hashes to {actual:#018x}"
            ),
            CodecError::Malformed { offset, what } => write!(f, "offset {offset}: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------------

/// Append a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern, little-endian (exact
/// round-trip, NaN payloads included).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// A bounds-checked forward reader over a byte slice.
pub struct Reader<'a> {
    bytes: &'a [u8],
    /// Current read offset.
    pub offset: usize,
}

impl<'a> Reader<'a> {
    /// A reader at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, offset: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.offset
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                offset: self.offset,
            });
        }
        let s = &self.bytes[self.offset..self.offset + n];
        self.offset += n;
        Ok(s)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u64` count and validate it against the bytes that would
    /// be needed at `elem_size` per element, so a corrupt length can't
    /// trigger a huge allocation.
    pub fn count(&mut self, elem_size: usize) -> Result<usize, CodecError> {
        let at = self.offset;
        let c = self.u64()?;
        let need = (c as usize).checked_mul(elem_size);
        match need {
            Some(n) if n <= self.remaining() => Ok(c as usize),
            _ => Err(CodecError::Malformed {
                offset: at,
                what: format!("count {c} exceeds remaining {} bytes", self.remaining()),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Container: header + tagged sections + trailing checksum
// ---------------------------------------------------------------------------

/// Incrementally build a `.tgr` container.
pub struct ContainerWriter {
    buf: Vec<u8>,
    count_at: usize,
    sections: u32,
}

impl Default for ContainerWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ContainerWriter {
    /// Start a container (writes the header with a section-count
    /// placeholder).
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        put_u32(&mut buf, CODEC_VERSION);
        put_u32(&mut buf, ENDIAN_TAG);
        let count_at = buf.len();
        put_u32(&mut buf, 0);
        ContainerWriter {
            buf,
            count_at,
            sections: 0,
        }
    }

    /// Append one tagged section.
    pub fn section(&mut self, tag: [u8; 4], payload: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(&tag);
        put_u64(&mut self.buf, payload.len() as u64);
        self.buf.extend_from_slice(payload);
        self.sections += 1;
        self
    }

    /// Patch the section count, append the checksum, return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[self.count_at..self.count_at + 4].copy_from_slice(&self.sections.to_le_bytes());
        let mut h = Fnv1a::new();
        h.write(&self.buf);
        put_u64(&mut self.buf, h.finish());
        self.buf
    }
}

/// Verify a container's framing — magic, version, endian tag, and the
/// trailing checksum — without parsing sections. This is what the
/// store's `verify` walk and every `get` run; it catches any single-byte
/// corruption anywhere in the file.
pub fn verify_container(bytes: &[u8]) -> Result<(), CodecError> {
    if bytes.len() < 4 || bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let mut r = Reader::new(&bytes[4..]);
    let version = r.u32().map_err(|_| CodecError::Truncated { offset: 4 })?;
    if version != CODEC_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let tag = r.u32().map_err(|_| CodecError::Truncated { offset: 8 })?;
    if tag != ENDIAN_TAG {
        return Err(CodecError::BadEndianTag(tag));
    }
    if bytes.len() < 12 + 4 + 8 {
        return Err(CodecError::Truncated {
            offset: bytes.len(),
        });
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let mut h = Fnv1a::new();
    h.write(body);
    let actual = h.finish();
    if stored != actual {
        return Err(CodecError::Checksum {
            expected: stored,
            actual,
        });
    }
    Ok(())
}

/// A container's `(tag, payload)` sections, borrowed from its bytes.
pub type Sections<'a> = Vec<([u8; 4], &'a [u8])>;

/// Parse a verified-or-not container into its `(tag, payload)` sections.
/// Runs [`verify_container`] first, so corrupted bytes are rejected by
/// checksum before any section is interpreted.
pub fn read_sections(bytes: &[u8]) -> Result<Sections<'_>, CodecError> {
    verify_container(bytes)?;
    let body = &bytes[..bytes.len() - 8];
    let mut r = Reader::new(body);
    let _ = r.take(12)?; // magic + version + endian tag
    let n = r.u32()?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let at = r.offset;
        let tag: [u8; 4] = r.take(4)?.try_into().unwrap();
        let len = r.u64()? as usize;
        if len > r.remaining() {
            return Err(CodecError::Malformed {
                offset: at,
                what: format!("section {:?} length {len} exceeds container", tag_str(&tag)),
            });
        }
        out.push((tag, r.take(len)?));
    }
    if r.remaining() != 0 {
        return Err(CodecError::Malformed {
            offset: r.offset,
            what: format!("{} trailing bytes after last section", r.remaining()),
        });
    }
    Ok(out)
}

/// The payload of the first section tagged `tag`, if present.
pub fn find_section<'a>(sections: &[([u8; 4], &'a [u8])], tag: [u8; 4]) -> Option<&'a [u8]> {
    sections.iter().find(|(t, _)| *t == tag).map(|(_, p)| *p)
}

fn tag_str(tag: &[u8; 4]) -> String {
    tag.iter()
        .map(|&b| if b.is_ascii_graphic() { b as char } else { '?' })
        .collect()
}

// ---------------------------------------------------------------------------
// Graph payload
// ---------------------------------------------------------------------------

/// Serialize a graph as a section payload: node count, edge count, then
/// the normalized edge list (already sorted and deduped in [`Graph`]).
pub fn graph_payload(g: &Graph) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + 8 * g.edge_count());
    put_u64(&mut buf, g.node_count() as u64);
    put_u64(&mut buf, g.edge_count() as u64);
    for e in g.edges() {
        put_u32(&mut buf, e.a);
        put_u32(&mut buf, e.b);
    }
    buf
}

/// Decode a graph payload, validating node/edge counts, endpoint
/// ranges, normalization (`a < b`), and strict ordering before any
/// graph structure is built — so arbitrary bytes can never reach a
/// panicking construction path.
pub fn graph_from_payload(bytes: &[u8]) -> Result<Graph, CodecError> {
    let mut r = Reader::new(bytes);
    let at = r.offset;
    let n = r.u64()?;
    if n > NodeId::MAX as u64 {
        return Err(CodecError::Malformed {
            offset: at,
            what: format!("node count {n} exceeds u32 id space"),
        });
    }
    let n = n as usize;
    let m = r.count(8)?;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(m);
    let mut prev: Option<(NodeId, NodeId)> = None;
    for _ in 0..m {
        let at = r.offset;
        let a = r.u32()?;
        let b = r.u32()?;
        if a >= b || (b as usize) >= n {
            return Err(CodecError::Malformed {
                offset: at,
                what: format!("edge ({a}, {b}) not normalized within {n} nodes"),
            });
        }
        if let Some(p) = prev {
            if p >= (a, b) {
                return Err(CodecError::Malformed {
                    offset: at,
                    what: format!("edges not strictly ascending at ({a}, {b})"),
                });
            }
        }
        prev = Some((a, b));
        edges.push((a, b));
    }
    if r.remaining() != 0 {
        return Err(CodecError::Malformed {
            offset: r.offset,
            what: format!("{} trailing bytes after edge list", r.remaining()),
        });
    }
    Ok(Graph::from_edges(n, edges))
}

/// Encode one graph as a complete standalone `.tgr` file (a container
/// holding a single [`SEC_GRAPH`] section).
pub fn encode_graph(g: &Graph) -> Vec<u8> {
    let mut w = ContainerWriter::new();
    w.section(SEC_GRAPH, &graph_payload(g));
    w.finish()
}

/// Decode a standalone `.tgr` graph file (checksum verified; requires a
/// [`SEC_GRAPH`] section).
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, CodecError> {
    let sections = read_sections(bytes)?;
    let payload = find_section(&sections, SEC_GRAPH).ok_or_else(|| CodecError::Malformed {
        offset: 16,
        what: "no GRPH section".to_string(),
    })?;
    graph_from_payload(payload)
}

// ---------------------------------------------------------------------------
// Scalar-array payloads
// ---------------------------------------------------------------------------

/// Serialize an `f64` slice (count + bit patterns).
pub fn f64_payload(values: &[f64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 8 * values.len());
    put_u64(&mut buf, values.len() as u64);
    for &v in values {
        put_f64(&mut buf, v);
    }
    buf
}

/// Decode an `f64` slice (exact bit round-trip).
pub fn f64_from_payload(bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
    let mut r = Reader::new(bytes);
    let c = r.count(8)?;
    let mut out = Vec::with_capacity(c);
    for _ in 0..c {
        out.push(r.f64()?);
    }
    Ok(out)
}

/// Serialize a `u32` slice (count + values).
pub fn u32_payload(values: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 4 * values.len());
    put_u64(&mut buf, values.len() as u64);
    for &v in values {
        put_u32(&mut buf, v);
    }
    buf
}

/// Decode a `u32` slice.
pub fn u32_from_payload(bytes: &[u8]) -> Result<Vec<u32>, CodecError> {
    let mut r = Reader::new(bytes);
    let c = r.count(4)?;
    let mut out = Vec::with_capacity(c);
    for _ in 0..c {
        out.push(r.u32()?);
    }
    Ok(out)
}

/// Serialize a byte slice (count + raw bytes) — used for the per-edge
/// relationship codes.
pub fn bytes_payload(values: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + values.len());
    put_u64(&mut buf, values.len() as u64);
    buf.extend_from_slice(values);
    buf
}

/// Decode a byte slice payload.
pub fn bytes_from_payload(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut r = Reader::new(bytes);
    let c = r.count(1)?;
    Ok(r.take(c)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])
    }

    #[test]
    fn graph_roundtrip_exact() {
        let g = sample();
        let bytes = encode_graph(&g);
        let back = decode_graph(&bytes).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn isolated_trailing_nodes_roundtrip() {
        let g = Graph::from_edges(9, vec![(0, 1)]);
        let back = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(back.node_count(), 9);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = encode_graph(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_graph(&bad).is_err(),
                "flipping byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = encode_graph(&sample());
        for len in 0..bytes.len() {
            assert!(decode_graph(&bytes[..len]).is_err(), "prefix {len} decoded");
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = encode_graph(&sample());
        bytes[0] = b'X';
        assert_eq!(decode_graph(&bytes).unwrap_err(), CodecError::BadMagic);
        let g = sample();
        let mut bytes = encode_graph(&g);
        bytes[4] = 9; // version 9
        assert!(matches!(
            decode_graph(&bytes).unwrap_err(),
            // Checksum now fails first or the version is rejected; both
            // are typed errors, never a mis-decode.
            CodecError::Checksum { .. } | CodecError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn huge_count_does_not_allocate() {
        // A payload claiming u64::MAX edges must fail on the count
        // check, not attempt a 10^19-element Vec.
        let mut payload = Vec::new();
        put_u64(&mut payload, 5);
        put_u64(&mut payload, u64::MAX);
        let err = graph_from_payload(&payload).unwrap_err();
        assert!(matches!(err, CodecError::Malformed { .. }), "{err}");
    }

    #[test]
    fn unsorted_edges_rejected() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 4);
        put_u64(&mut payload, 2);
        put_u32(&mut payload, 1);
        put_u32(&mut payload, 2);
        put_u32(&mut payload, 0); // (0,1) after (1,2): out of order
        put_u32(&mut payload, 1);
        assert!(graph_from_payload(&payload).is_err());
    }

    #[test]
    fn f64_bit_exact_roundtrip() {
        let vals = vec![0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, 1e-300, -2.5e300];
        let back = f64_from_payload(&f64_payload(&vals)).unwrap();
        assert_eq!(vals.len(), back.len());
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn multi_section_container() {
        let g = sample();
        let mut w = ContainerWriter::new();
        w.section(SEC_GRAPH, &graph_payload(&g));
        w.section(SEC_LINK_VALUES, &f64_payload(&[0.25, 0.5]));
        let bytes = w.finish();
        let sections = read_sections(&bytes).unwrap();
        assert_eq!(sections.len(), 2);
        let lv = f64_from_payload(find_section(&sections, SEC_LINK_VALUES).unwrap()).unwrap();
        assert_eq!(lv, vec![0.25, 0.5]);
        assert!(find_section(&sections, SEC_ROUTER_AS).is_none());
    }

    #[test]
    fn u32_and_bytes_payloads() {
        let v = vec![7u32, 0, u32::MAX];
        assert_eq!(u32_from_payload(&u32_payload(&v)).unwrap(), v);
        let b = vec![0u8, 1, 2, 3];
        assert_eq!(bytes_from_payload(&bytes_payload(&b)).unwrap(), b);
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::empty(0);
        let back = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(back.node_count(), 0);
        assert_eq!(back.edge_count(), 0);
    }
}
