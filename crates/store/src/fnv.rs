//! FNV-1a 64-bit hashing — the store's content checksum and key hash.
//!
//! FNV-1a is tiny, has no dependencies, and is injective with respect
//! to single-byte substitution at fixed length (each step xors the byte
//! into the state and multiplies by an odd prime — both injective on
//! `u64`), so the codec's trailing checksum always catches a one-byte
//! corruption.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn single_byte_substitution_always_changes_hash() {
        let base = b"the quick brown fox".to_vec();
        let h0 = fnv1a(&base);
        for i in 0..base.len() {
            for flip in 1..=3u8 {
                let mut m = base.clone();
                m[i] ^= flip;
                assert_ne!(fnv1a(&m), h0, "byte {i} xor {flip}");
            }
        }
    }
}
