//! Persistence layer for the reproduction: a versioned binary graph
//! codec plus a content-addressed on-disk artifact store.
//!
//! The paper's methodology is re-run-heavy — every figure regenerates
//! the same zoo topologies and re-grows the same balls. This crate lets
//! `repro --cache` persist generated topologies and expensive derived
//! artifacts (metric curves, link-value summaries) across runs:
//!
//! * [`codec`] — the `.tgr` binary CSR graph format (magic/version
//!   header, explicit little-endian layout, FNV-1a content checksum)
//!   plus a tagged-section container for composite artifacts. Exact
//!   round-trip with the text loader in `topogen_graph::io`.
//! * [`store`] — the content-addressed store: entries live at
//!   `<root>/<2-hex>/<16-hex>` keyed by an FNV-1a hash of a canonical
//!   key string, with a deterministic plain-text ledger driving
//!   LRU-by-access-order eviction (`gc`), a checksum walk (`verify`),
//!   and hit/miss/byte counters for per-unit reporting.
//! * [`key`] — canonical key construction: artifact kind, generator
//!   name + canonicalized parameters, seed, scale, codec version, and
//!   an engine code-version stamp, so any change that could shift
//!   results invalidates old entries.
//! * [`ambient`] — a process-global store handle, installed once by the
//!   CLI so deep call sites (topology builds, metric suites) can
//!   consult the cache without plumbing a handle through every layer.
//!
//! Zero external dependencies (consistent with the vendored-shim
//! policy): hashing, encoding, and the ledger are all hand-rolled.

pub mod ambient;
pub mod codec;
pub mod fnv;
pub mod key;
pub mod store;

pub use codec::{decode_graph, encode_graph, CodecError, CODEC_VERSION};
pub use store::{Store, StoreCounters};
