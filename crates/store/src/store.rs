//! The content-addressed on-disk store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/ab/abcdef0123456789.tgr   entry files (first 2 hex = shard dir)
//! <root>/ledger.tsv                access ledger (append-only text)
//! ```
//!
//! Every entry is a complete `.tgr` container; `get` re-verifies the
//! trailing checksum on each read, so a corrupted entry is detected,
//! deleted, and reported as a miss — the caller recomputes and the
//! fresh bytes overwrite the bad entry. Writes go through a temp file +
//! rename so a crash never leaves a half-written entry at its final
//! address.
//!
//! The ledger is plain text, one line per access:
//!
//! ```text
//! <verb>\t<16-hex hash>\t<byte len>\t<canonical key>
//! ```
//!
//! Later lines are more recent. `gc --max-bytes N` derives each entry's
//! recency from its **last** ledger line and evicts least-recently-used
//! entries until the total is within budget — fully deterministic, no
//! clocks involved. `gc` then rewrites the ledger compacted (one line
//! per surviving entry, recency order preserved).

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use topogen_par::faults::{self, IoFault};

use crate::codec::{verify_container, CodecError};
use crate::key::key_hash;

/// Ledger file name under the store root.
pub const LEDGER_FILE: &str = "ledger.tsv";
/// Entry file extension.
pub const ENTRY_EXT: &str = "tgr";

/// Bounded retries on transient entry-I/O errors before failing open.
pub const IO_RETRIES: u32 = 3;

/// Backoff before retry `attempt` (0-based): bounded exponential
/// (0.5 ms, 1 ms, 2 ms, …) plus a deterministic SplitMix64 jitter keyed
/// by the entry hash — no clocks, no global RNG, same waits every run.
fn backoff(seed: u64, attempt: u32) -> Duration {
    let base_us = 500u64 << attempt.min(4);
    let jitter_us = faults::splitmix64(seed ^ u64::from(attempt)) % (base_us / 2 + 1);
    Duration::from_micros(base_us + jitter_us)
}

/// Monotonic counters describing store traffic since open.
#[derive(Debug, Default)]
pub struct StoreCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    corrupt: AtomicU64,
    io_retries: AtomicU64,
    io_giveups: AtomicU64,
}

/// A point-in-time copy of [`StoreCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Reads served from the store.
    pub hits: u64,
    /// Lookups that found nothing usable (including corrupt entries).
    pub misses: u64,
    /// Bytes of verified entries returned to callers.
    pub bytes_read: u64,
    /// Bytes of new entries written.
    pub bytes_written: u64,
    /// Entries found corrupt (checksum failure) and evicted on read.
    pub corrupt: u64,
    /// Transient entry-I/O errors retried after backoff.
    pub io_retries: u64,
    /// Operations abandoned after exhausting [`IO_RETRIES`] (fail-open).
    pub io_giveups: u64,
}

impl StoreCounters {
    /// Copy the current values.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            io_giveups: self.io_giveups.load(Ordering::Relaxed),
        }
    }
}

impl CounterSnapshot {
    /// Traffic between two snapshots (`later - self`), for per-unit
    /// ledger deltas.
    pub fn delta_to(&self, later: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            hits: later.hits - self.hits,
            misses: later.misses - self.misses,
            bytes_read: later.bytes_read - self.bytes_read,
            bytes_written: later.bytes_written - self.bytes_written,
            corrupt: later.corrupt - self.corrupt,
            io_retries: later.io_retries - self.io_retries,
            io_giveups: later.io_giveups - self.io_giveups,
        }
    }

    /// True when nothing happened between the snapshots.
    pub fn is_zero(&self) -> bool {
        *self == CounterSnapshot::default()
    }
}

/// One entry as reported by [`Store::ls`].
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// 16-hex entry hash.
    pub hash: String,
    /// Entry size in bytes.
    pub bytes: u64,
    /// Canonical key string, when the ledger knows it.
    pub key: Option<String>,
}

/// Result of a [`Store::verify`] walk.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Entries whose checksum verified.
    pub ok: usize,
    /// Entries that failed, with the relative path and the error.
    pub corrupt: Vec<(String, CodecError)>,
}

/// Result of a [`Store::gc`] pass.
#[derive(Debug, Default)]
pub struct GcReport {
    /// Hashes evicted, least recently used first.
    pub evicted: Vec<String>,
    /// Bytes freed.
    pub bytes_freed: u64,
    /// Entries kept.
    pub kept: usize,
    /// Bytes remaining.
    pub bytes_kept: u64,
}

/// The content-addressed store. Cheap to share behind an `Arc`; all
/// methods take `&self`.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    counters: StoreCounters,
    ledger: Mutex<()>,
}

impl Store {
    /// Open (creating if needed) a store rooted at `root`. Stale temp
    /// files from interrupted writes (`<hash>.tmp`, possibly torn) are
    /// removed: lookups only ever read `.tgr` paths, so a leftover tmp
    /// can never shadow a valid entry — it is just dead bytes.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let store = Store {
            root,
            counters: StoreCounters::default(),
            ledger: Mutex::new(()),
        };
        store.clean_stale_tmp();
        store.recover_torn_ledger_tail();
        Ok(store)
    }

    /// Truncate a torn final ledger line (a crash mid-append leaves the
    /// file without a trailing newline). Losing the line only demotes
    /// one entry's recency — it never blocks opening the store.
    fn recover_torn_ledger_tail(&self) {
        let path = self.root.join(LEDGER_FILE);
        let Ok(bytes) = fs::read(&path) else { return };
        if bytes.is_empty() || bytes.ends_with(b"\n") {
            return;
        }
        let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        let torn = bytes.len() - keep;
        let truncated = fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .and_then(|f| f.set_len(keep as u64));
        if truncated.is_ok() {
            eprintln!("store: recovered torn ledger tail ({torn} byte(s) truncated)");
        }
    }

    /// Remove `*.tmp` leftovers from writes interrupted before rename.
    fn clean_stale_tmp(&self) {
        let Ok(shards) = fs::read_dir(&self.root) else {
            return;
        };
        for shard in shards.flatten() {
            let sp = shard.path();
            if !sp.is_dir() {
                continue;
            }
            let Ok(entries) = fs::read_dir(&sp) else {
                continue;
            };
            for e in entries.flatten() {
                let p = e.path();
                if p.extension().and_then(|s| s.to_str()) == Some("tmp") {
                    let _ = fs::remove_file(&p);
                }
            }
        }
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Traffic counters since open.
    pub fn counters(&self) -> &StoreCounters {
        &self.counters
    }

    fn entry_path(&self, hash: u64) -> PathBuf {
        let hex = format!("{hash:016x}");
        self.root.join(&hex[..2]).join(format!("{hex}.{ENTRY_EXT}"))
    }

    fn append_ledger(&self, verb: &str, hash: u64, len: usize, key: &str) {
        let _guard = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        self.append_ledger_locked(verb, hash, len, key);
    }

    /// [`Self::append_ledger`] body; the caller must hold `self.ledger`.
    fn append_ledger_locked(&self, verb: &str, hash: u64, len: usize, key: &str) {
        let line = format!("{verb}\t{hash:016x}\t{len}\t{key}\n");
        // Ledger writes are best-effort: a failure here must not fail
        // the computation the cache is accelerating. An injected `err`
        // drops the line (recency demotion only); an injected `short`
        // leaves a torn tail for the next open to recover.
        let payload = match faults::inject_io("ledger-append", "store") {
            Some(IoFault::Err) => return,
            Some(IoFault::Short) => &line.as_bytes()[..line.len() / 2],
            None => line.as_bytes(),
        };
        let _ = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join(LEDGER_FILE))
            .and_then(|mut f| f.write_all(payload));
    }

    /// Read the entry file, distinguishing torn reads from corruption:
    /// the store never truncates an entry in place (writes are tmp +
    /// rename), so a read shorter than the file on disk is transient —
    /// retry it, do not let it reach the checksum-evict path and delete
    /// a good entry.
    fn read_entry(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let bytes = match faults::inject_io("store-read", "get") {
            Some(IoFault::Err) => return Err(faults::io_error("store-read", "get")),
            Some(IoFault::Short) => {
                let b = fs::read(path)?;
                let keep = b.len() / 2;
                b[..keep].to_vec()
            }
            None => fs::read(path)?,
        };
        let expect = fs::metadata(path)?.len();
        if bytes.len() as u64 != expect {
            return Err(std::io::Error::other(format!(
                "short read: {} of {expect} bytes",
                bytes.len()
            )));
        }
        Ok(bytes)
    }

    /// [`Self::read_entry`] with bounded retries. `Ok(None)` is a clean
    /// not-found; `Err` means a transient error survived all retries.
    fn read_entry_retrying(&self, path: &Path, hash: u64) -> std::io::Result<Option<Vec<u8>>> {
        let mut attempt = 0u32;
        loop {
            match self.read_entry(path) {
                Ok(bytes) => return Ok(Some(bytes)),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
                Err(e) => {
                    if attempt >= IO_RETRIES {
                        return Err(e);
                    }
                    self.counters.io_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff(hash, attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Look up `key`. Returns the verified container bytes on a hit.
    /// A checksum failure deletes the entry and reports a miss, so the
    /// caller recomputes and rewrites. Transient I/O errors are retried
    /// with backoff; if they persist the lookup fails open to a miss
    /// (the caller recomputes — the store is an accelerator).
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let _span = topogen_par::trace::span("store-get");
        let hash = key_hash(key);
        let path = self.entry_path(hash);
        let bytes = match self.read_entry_retrying(&path, hash) {
            Ok(Some(b)) => b,
            Ok(None) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.counters.io_giveups.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match verify_container(&bytes) {
            Ok(()) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_read
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                self.append_ledger("get", hash, bytes.len(), key);
                Some(bytes)
            }
            Err(_) => {
                // Detected corruption: evict so the recompute path
                // rewrites a clean entry.
                let _ = fs::remove_file(&path);
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Write `bytes` (a finished `.tgr` container) under `key`,
    /// atomically and durably: the temp file is fsynced before the
    /// rename and the shard directory after it, so a crash right after
    /// `put` returns cannot surface a torn entry at the final address
    /// (without the syncs, the rename could be durable while the data
    /// blocks were not — the checksum would catch it later, but only by
    /// silently discarding the warm entry). Errors are swallowed: the
    /// store is an accelerator, and a failed write only costs a miss.
    pub fn put(&self, key: &str, bytes: &[u8]) {
        let _span = topogen_par::trace::span("store-put");
        debug_assert!(verify_container(bytes).is_ok(), "put of invalid container");
        let hash = key_hash(key);
        let path = self.entry_path(hash);
        let Some(dir) = path.parent() else { return };
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!("{hash:016x}.tmp"));
        let write_synced = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            match faults::inject_io("store-write", "put") {
                Some(IoFault::Err) => return Err(faults::io_error("store-write", "put")),
                Some(IoFault::Short) => {
                    // A torn write: some bytes land, then the error. The
                    // retry recreates the tmp from scratch, and even a
                    // crash here leaves only a stale `.tmp` that the
                    // next open sweeps — never a corrupt entry.
                    f.write_all(&bytes[..bytes.len() / 2])?;
                    f.sync_all()?;
                    return Err(faults::io_error("store-write", "put"));
                }
                None => {}
            }
            f.write_all(bytes)?;
            f.sync_all()?;
            Ok(())
        };
        let mut attempt = 0u32;
        loop {
            match write_synced() {
                Ok(()) => break,
                Err(_) if attempt < IO_RETRIES => {
                    self.counters.io_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff(hash ^ 0x9e37_79b9, attempt));
                    attempt += 1;
                }
                Err(_) => {
                    // Exhausted: fail open. A skipped put only costs a
                    // future miss.
                    self.counters.io_giveups.fetch_add(1, Ordering::Relaxed);
                    let _ = fs::remove_file(&tmp);
                    return;
                }
            }
        }
        // Publish (rename) and record (ledger line) under the ledger
        // lock, so a concurrent `gc` can never observe the entry file
        // without its ledger line — which would demote a fresh entry to
        // the "never seen / oldest" eviction tier.
        let guard = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        if fs::rename(&tmp, &path).is_ok() {
            // Make the rename itself durable.
            let _ = fs::File::open(dir).and_then(|d| d.sync_all());
            self.counters
                .bytes_written
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            self.append_ledger_locked("put", hash, bytes.len(), key);
        } else {
            let _ = fs::remove_file(&tmp);
        }
        drop(guard);
    }

    /// Drop the entry stored under `key`, if any. Best-effort like the
    /// rest of the store: a failed unlink is swallowed (the entry just
    /// stays warm), and removing a key that was never stored is a
    /// no-op. The ledger records the eviction so recency ranking stays
    /// honest about what is actually on disk.
    pub fn remove(&self, key: &str) {
        let hash = key_hash(key);
        let path = self.entry_path(hash);
        let guard = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        if fs::remove_file(&path).is_ok() {
            self.append_ledger_locked("del", hash, 0, key);
        }
        drop(guard);
    }

    fn walk_entries(&self) -> Vec<(String, PathBuf, u64)> {
        let mut out = Vec::new();
        let Ok(shards) = fs::read_dir(&self.root) else {
            return out;
        };
        for shard in shards.flatten() {
            let sp = shard.path();
            if !sp.is_dir() {
                continue;
            }
            let Ok(entries) = fs::read_dir(&sp) else {
                continue;
            };
            for e in entries.flatten() {
                let p = e.path();
                if p.extension().and_then(|s| s.to_str()) != Some(ENTRY_EXT) {
                    continue;
                }
                let Some(stem) = p.file_stem().and_then(|s| s.to_str()) else {
                    continue;
                };
                if stem.len() != 16 || !stem.bytes().all(|b| b.is_ascii_hexdigit()) {
                    continue;
                }
                let len = e.metadata().map(|m| m.len()).unwrap_or(0);
                out.push((stem.to_string(), p, len));
            }
        }
        out.sort(); // deterministic order regardless of readdir order
        out
    }

    /// Map each entry hash to its canonical key and recency rank, from
    /// the ledger (last line per hash wins).
    fn ledger_index(&self) -> HashMap<String, (usize, String)> {
        let mut map = HashMap::new();
        let Ok(text) = fs::read_to_string(self.root.join(LEDGER_FILE)) else {
            return map;
        };
        for (rank, line) in text.lines().enumerate() {
            let mut parts = line.splitn(4, '\t');
            let _verb = parts.next();
            let (Some(hash), Some(_len), Some(key)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            map.insert(hash.to_string(), (rank, key.to_string()));
        }
        map
    }

    /// List entries (sorted by hash) with sizes and, where the ledger
    /// knows them, canonical keys.
    pub fn ls(&self) -> Vec<EntryInfo> {
        let index = self.ledger_index();
        self.walk_entries()
            .into_iter()
            .map(|(hash, _path, bytes)| {
                let key = index.get(&hash).map(|(_, k)| k.clone());
                EntryInfo { hash, bytes, key }
            })
            .collect()
    }

    /// Verify every entry's checksum.
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport::default();
        for (hash, path, _len) in self.walk_entries() {
            let rel = format!("{}/{hash}.{ENTRY_EXT}", &hash[..2]);
            match fs::read(&path) {
                Ok(bytes) => match verify_container(&bytes) {
                    Ok(()) => report.ok += 1,
                    Err(e) => report.corrupt.push((rel, e)),
                },
                Err(e) => report.corrupt.push((
                    rel,
                    CodecError::Malformed {
                        offset: 0,
                        what: format!("unreadable: {e}"),
                    },
                )),
            }
        }
        report
    }

    /// Evict least-recently-used entries (by ledger order; entries the
    /// ledger has never seen count as oldest, in hash order) until the
    /// total size is at most `max_bytes`. Rewrites the ledger compacted.
    /// Holds the ledger lock across the whole walk-and-rewrite, which
    /// together with [`Self::put`] publishing under the same lock means
    /// no concurrent put's ledger line can be dropped by the compaction.
    pub fn gc(&self, max_bytes: u64) -> GcReport {
        let _span = topogen_par::trace::span("store-gc");
        let _guard = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        let index = self.ledger_index();
        let mut entries = self.walk_entries();
        // Oldest first: unknown-to-ledger entries (rank 0 tier) by hash,
        // then ledger entries by recency rank.
        entries.sort_by_key(|(hash, _, _)| {
            index
                .get(hash)
                .map(|(rank, _)| (1u8, *rank, hash.clone()))
                .unwrap_or((0, 0, hash.clone()))
        });
        let total: u64 = entries.iter().map(|(_, _, len)| len).sum();
        let mut report = GcReport::default();
        let mut excess = total.saturating_sub(max_bytes);
        let mut kept = Vec::new();
        for (hash, path, len) in entries {
            if excess > 0 && fs::remove_file(&path).is_ok() {
                excess = excess.saturating_sub(len);
                report.bytes_freed += len;
                report.evicted.push(hash);
                continue;
            }
            report.kept += 1;
            report.bytes_kept += len;
            kept.push(hash);
        }
        // Compact the ledger: one line per surviving entry, oldest first
        // (preserving relative recency for future gc passes).
        let mut out = String::new();
        for hash in &kept {
            if let Some((_, key)) = index.get(hash) {
                out.push_str(&format!("kept\t{hash}\t0\t{key}\n"));
            }
        }
        let _ = fs::write(self.root.join(LEDGER_FILE), out);
        report
    }

    /// Total size of all entries in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.walk_entries().iter().map(|(_, _, len)| len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_graph, ContainerWriter, SEC_LINK_VALUES};
    use topogen_graph::Graph;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("topogen-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_container(seed: u32) -> Vec<u8> {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, seed % 3 + 1)]);
        encode_graph(&g)
    }

    #[test]
    fn put_get_roundtrip_and_counters() {
        let store = Store::open(tmpdir("roundtrip")).unwrap();
        let bytes = sample_container(0);
        assert!(store.get("k1").is_none());
        store.put("k1", &bytes);
        assert_eq!(store.get("k1").as_deref(), Some(bytes.as_slice()));
        let c = store.counters().snapshot();
        assert_eq!((c.hits, c.misses), (1, 1));
        assert_eq!(c.bytes_written, bytes.len() as u64);
        assert_eq!(c.bytes_read, bytes.len() as u64);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn corrupt_entry_is_evicted_then_rewritten() {
        let store = Store::open(tmpdir("corrupt")).unwrap();
        let bytes = sample_container(1);
        store.put("k", &bytes);
        // Corrupt the single entry on disk.
        let (hash, path, _) = store.walk_entries().pop().unwrap();
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xff;
        fs::write(&path, &raw).unwrap();
        // Detected: miss, file evicted.
        assert!(store.get("k").is_none());
        assert!(!path.exists());
        let c = store.counters().snapshot();
        assert_eq!(c.corrupt, 1);
        // Recompute path rewrites a clean entry at the same address.
        store.put("k", &bytes);
        assert_eq!(store.get("k").as_deref(), Some(bytes.as_slice()));
        let report = store.verify();
        assert_eq!(report.ok, 1);
        assert!(report.corrupt.is_empty());
        assert_eq!(store.walk_entries().pop().unwrap().0, hash);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn verify_reports_corruption() {
        let store = Store::open(tmpdir("verify")).unwrap();
        store.put("a", &sample_container(0));
        store.put("b", &sample_container(1));
        let (_, path, _) = store.walk_entries().remove(0).clone();
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 1;
        fs::write(&path, &raw).unwrap();
        let report = store.verify();
        assert_eq!(report.ok, 1);
        assert_eq!(report.corrupt.len(), 1);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn gc_evicts_lru_deterministically() {
        let store = Store::open(tmpdir("gc")).unwrap();
        let mut w = ContainerWriter::new();
        w.section(SEC_LINK_VALUES, &crate::codec::f64_payload(&[1.0; 64]));
        let big = w.finish();
        store.put("old", &big);
        store.put("mid", &big);
        store.put("new", &big);
        // Touch "old" so it becomes most recent.
        assert!(store.get("old").is_some());
        let each = big.len() as u64;
        let report = store.gc(2 * each);
        // LRU order is now mid, new, old — evict "mid" only.
        assert_eq!(report.evicted.len(), 1);
        assert_eq!(report.kept, 2);
        assert!(store.get("old").is_some());
        assert!(store.get("new").is_some());
        assert!(store.get("mid").is_none());
        // gc to zero clears everything.
        let report = store.gc(0);
        assert_eq!(report.kept, 0);
        assert_eq!(store.total_bytes(), 0);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn ls_shows_keys_from_ledger() {
        let store = Store::open(tmpdir("ls")).unwrap();
        store.put("kind=test|x=1", &sample_container(0));
        let ls = store.ls();
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].key.as_deref(), Some("kind=test|x=1"));
        assert!(ls[0].bytes > 0);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn stale_tmp_is_cleaned_and_never_shadows_a_valid_entry() {
        let dir = tmpdir("staletmp");
        let bytes = sample_container(0);
        {
            let store = Store::open(&dir).unwrap();
            store.put("k", &bytes);
        }
        // Simulate a crash mid-write: a short (torn) tmp file next to
        // the valid entry, exactly where `put` stages its writes.
        let store = Store::open(&dir).unwrap();
        let (hash, path, _) = store.walk_entries().pop().unwrap();
        let tmp = path.with_file_name(format!("{hash}.tmp"));
        fs::write(&tmp, &bytes[..3]).unwrap();
        drop(store);

        // Reopen: the stale tmp is swept; the valid entry still serves.
        let store = Store::open(&dir).unwrap();
        assert!(!tmp.exists(), "stale tmp cleaned on open");
        assert_eq!(store.get("k").as_deref(), Some(bytes.as_slice()));
        assert_eq!(store.verify().corrupt.len(), 0);
        // And even while present, a tmp never shadows: lookups read only
        // `.tgr` paths and the walk skips non-entry extensions.
        fs::write(&tmp, &bytes[..3]).unwrap();
        assert_eq!(store.get("k").as_deref(), Some(bytes.as_slice()));
        assert_eq!(store.walk_entries().len(), 1);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn concurrent_put_and_gc_never_drop_a_ledger_line() {
        // Regression for the put/gc race: `put` used to publish the
        // entry file and append its ledger line as two unlocked steps; a
        // gc interleaving between them saw a file with no line, demoted
        // it to the "never seen / oldest" tier, and (worse) its ledger
        // compaction dropped the line appended mid-walk. With publish
        // and record under the ledger lock, every completed put survives
        // a generous-budget gc with its recency intact.
        let store = std::sync::Arc::new(Store::open(tmpdir("putgc")).unwrap());
        const KEYS: usize = 40;
        let writer = {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..KEYS {
                    store.put(&format!("key-{i}"), &sample_container(i as u32));
                }
            })
        };
        // Budget far above the total: a correct gc evicts nothing. Any
        // eviction here means a fresh entry was mistaken for unledgered.
        for _ in 0..KEYS {
            let report = store.gc(u64::MAX / 2);
            assert!(
                report.evicted.is_empty(),
                "gc evicted {:?} under an unlimited budget",
                report.evicted
            );
        }
        writer.join().unwrap();
        // After the dust settles every put is present, ledgered, and
        // served; one more gc pass keeps all of them.
        let index = store.ledger_index();
        assert_eq!(store.walk_entries().len(), KEYS);
        for i in 0..KEYS {
            let key = format!("key-{i}");
            let hash = format!("{:016x}", key_hash(&key));
            assert!(index.contains_key(&hash), "ledger lost {key}");
            assert!(store.get(&key).is_some(), "{key} unreadable");
        }
        let report = store.gc(u64::MAX / 2);
        assert_eq!(report.kept, KEYS);
        assert!(report.evicted.is_empty());
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn snapshot_delta() {
        let a = CounterSnapshot {
            hits: 1,
            misses: 2,
            bytes_read: 10,
            bytes_written: 20,
            corrupt: 0,
            io_retries: 1,
            io_giveups: 0,
        };
        let b = CounterSnapshot {
            hits: 4,
            misses: 2,
            bytes_read: 30,
            bytes_written: 20,
            corrupt: 1,
            io_retries: 3,
            io_giveups: 1,
        };
        let d = a.delta_to(&b);
        assert_eq!(d.hits, 3);
        assert_eq!(d.misses, 0);
        assert_eq!(d.bytes_read, 20);
        assert_eq!(d.corrupt, 1);
        assert_eq!(d.io_retries, 2);
        assert_eq!(d.io_giveups, 1);
        assert!(!d.is_zero());
        assert!(a.delta_to(&a).is_zero());
    }

    #[test]
    fn torn_ledger_tail_is_recovered_on_open() {
        let dir = tmpdir("torntail");
        let bytes = sample_container(0);
        {
            let store = Store::open(&dir).unwrap();
            store.put("a", &bytes);
            store.put("b", &bytes);
        }
        // Simulate a crash mid-append: a partial line with no newline.
        let ledger = dir.join(LEDGER_FILE);
        let before = fs::read_to_string(&ledger).unwrap();
        assert!(before.ends_with('\n'));
        fs::OpenOptions::new()
            .append(true)
            .open(&ledger)
            .unwrap()
            .write_all(b"get\t0123abc")
            .unwrap();

        // Reopen: the torn tail is truncated, complete lines survive,
        // and the store serves normally.
        let store = Store::open(&dir).unwrap();
        let after = fs::read_to_string(&ledger).unwrap();
        assert_eq!(after, before, "torn tail truncated back to last newline");
        assert_eq!(store.get("a").as_deref(), Some(bytes.as_slice()));
        assert_eq!(store.ledger_index().len(), 2);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn injected_read_faults_are_retried_without_evicting_good_entries() {
        let _x = topogen_par::faults::exclusive_for_tests();
        let store = Store::open(tmpdir("readfault")).unwrap();
        let bytes = sample_container(0);
        store.put("k", &bytes);
        // Every read attempt fails: the lookup retries, then fails open
        // to a miss — but the entry on disk must survive untouched.
        topogen_par::faults::install_spec("store-read:err:1:7").unwrap();
        assert!(store.get("k").is_none());
        topogen_par::faults::clear();
        let c = store.counters().snapshot();
        assert_eq!(c.io_retries, IO_RETRIES as u64);
        assert_eq!(c.io_giveups, 1);
        assert_eq!(c.corrupt, 0, "injected errors must not evict");
        assert_eq!(store.get("k").as_deref(), Some(bytes.as_slice()));

        // Short reads likewise retry and never reach the evict path.
        topogen_par::faults::install_spec("store-read:short:1:7").unwrap();
        assert!(store.get("k").is_none());
        topogen_par::faults::clear();
        let c = store.counters().snapshot();
        assert_eq!(c.corrupt, 0, "short reads must not evict");
        assert_eq!(store.get("k").as_deref(), Some(bytes.as_slice()));
        assert_eq!(store.verify().corrupt.len(), 0);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn injected_write_faults_never_leave_a_corrupt_entry() {
        let _x = topogen_par::faults::exclusive_for_tests();
        let store = Store::open(tmpdir("writefault")).unwrap();
        let bytes = sample_container(1);
        // All write attempts fail (rate 1): put gives up cleanly, no
        // entry and no tmp debris.
        topogen_par::faults::install_spec("store-write:short:1:3").unwrap();
        store.put("k", &bytes);
        topogen_par::faults::clear();
        let c = store.counters().snapshot();
        assert_eq!(c.io_giveups, 1);
        assert_eq!(store.walk_entries().len(), 0, "no entry published");
        assert!(store.get("k").is_none());
        assert_eq!(store.verify().corrupt.len(), 0);

        // At rate 0.5 some attempts fail but a retry lands the write;
        // the published entry must verify and serve the exact bytes.
        topogen_par::faults::install_spec("store-write:err:0.5:11").unwrap();
        store.put("k", &bytes);
        topogen_par::faults::clear();
        assert_eq!(store.get("k").as_deref(), Some(bytes.as_slice()));
        assert_eq!(store.verify().corrupt.len(), 0);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn injected_ledger_faults_only_cost_recency() {
        let _x = topogen_par::faults::exclusive_for_tests();
        let store = Store::open(tmpdir("ledgerfault")).unwrap();
        let bytes = sample_container(0);
        // A shorted ledger append leaves a torn tail; a later complete
        // append would merge lines, but reopening first recovers it.
        topogen_par::faults::install_spec("ledger-append:short:1:5").unwrap();
        store.put("k", &bytes);
        topogen_par::faults::clear();
        let root = store.root().to_path_buf();
        drop(store);
        let store = Store::open(&root).unwrap();
        let text = fs::read_to_string(root.join(LEDGER_FILE)).unwrap_or_default();
        assert!(text.is_empty() || text.ends_with('\n'));
        // The entry itself is fine — only its recency metadata was lost.
        assert_eq!(store.get("k").as_deref(), Some(bytes.as_slice()));
        fs::remove_dir_all(store.root()).unwrap();
    }
}
