//! Process-global store handle.
//!
//! The topology zoo and the metric suites sit many layers below the
//! CLI; threading a `Store` handle through every signature would touch
//! every experiment for no behavioral gain. Instead the CLI installs
//! one ambient handle after parsing `--cache`, and deep call sites ask
//! [`active`] whether caching is on. The CLI never installs a store
//! while a `TOPOGEN_FAULTS` harness is active, which is how "never
//! cache results produced under fault injection" is enforced in one
//! place.

use std::sync::{Arc, OnceLock, RwLock};

use crate::store::{CounterSnapshot, Store};

fn slot() -> &'static RwLock<Option<Arc<Store>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<Store>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Install (or with `None`, remove) the process-global store.
pub fn install(store: Option<Arc<Store>>) {
    *slot().write().unwrap_or_else(|e| e.into_inner()) = store;
}

/// The ambient store, if one is installed.
pub fn active() -> Option<Arc<Store>> {
    slot().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Snapshot the ambient store's traffic counters, if installed.
pub fn counters() -> Option<CounterSnapshot> {
    active().map(|s| s.counters().snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_clear() {
        // Serialized against nothing else: this is the only test in the
        // crate touching the ambient slot.
        assert!(active().is_none());
        let dir = std::env::temp_dir().join(format!("topogen-ambient-{}", std::process::id()));
        let store = Arc::new(Store::open(&dir).unwrap());
        install(Some(store));
        assert!(active().is_some());
        assert!(counters().unwrap().is_zero());
        install(None);
        assert!(active().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
