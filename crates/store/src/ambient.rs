//! Process-global store handle.
//!
//! The topology zoo and the metric suites sit many layers below the
//! CLI; threading a `Store` handle through every signature would touch
//! every experiment for no behavioral gain. Instead the CLI installs
//! one ambient handle after parsing `--cache`, and deep call sites ask
//! [`active`] whether caching is on. The CLI never installs a store
//! while a `TOPOGEN_FAULTS` harness is active, which is how "never
//! cache results produced under fault injection" is enforced in one
//! place.
//!
//! [`install`] is *scoped*: it returns an [`AmbientGuard`] that restores
//! the previously installed handle when dropped. The earlier fire-and-
//! forget set/unset pattern (`install(Some(s)); …; install(None);`) was
//! an ordering hazard under `cargo test` parallelism — two tests
//! interleaving their set/unset pairs would clobber each other — and is
//! deprecated in favor of holding the guard for the scope that needs
//! the store. Calling `install(None)` still works (the slot is cleared
//! while the guard lives) but new code should prefer either a held
//! guard or, better, an explicit `RunCtx` that carries the store handle
//! instead of touching process state at all.

use std::sync::{Arc, OnceLock, RwLock};

use crate::store::{CounterSnapshot, Store};

fn slot() -> &'static RwLock<Option<Arc<Store>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<Store>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Scoped handle returned by [`install`]; restores the previously
/// installed ambient store when dropped (including during unwinds), so
/// nested installs behave like a stack regardless of who set what
/// first. Dropping the guard immediately undoes the install — bind it
/// (`let _ambient = install(…)`) for as long as the handle should stay
/// active.
#[must_use = "dropping the guard immediately restores the previous ambient store"]
#[derive(Debug)]
pub struct AmbientGuard {
    prev: Option<Arc<Store>>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        *slot().write().unwrap_or_else(|e| e.into_inner()) = self.prev.take();
    }
}

/// Install (or with `None`, clear) the process-global store for the
/// lifetime of the returned guard; the previous handle comes back when
/// the guard drops. Passing `None` to clear is deprecated in favor of
/// scoping the guard (see the module docs).
pub fn install(store: Option<Arc<Store>>) -> AmbientGuard {
    let prev = std::mem::replace(
        &mut *slot().write().unwrap_or_else(|e| e.into_inner()),
        store,
    );
    AmbientGuard { prev }
}

/// The ambient store, if one is installed.
pub fn active() -> Option<Arc<Store>> {
    slot().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Snapshot the ambient store's traffic counters, if installed.
pub fn counters() -> Option<CounterSnapshot> {
    active().map(|s| s.counters().snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both tests touch the process-global slot; serialize them.
    fn gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn guard_restores_previous_handle() {
        let _gate = gate();
        assert!(active().is_none());
        let dir = std::env::temp_dir().join(format!("topogen-ambient-{}", std::process::id()));
        let outer = Arc::new(Store::open(&dir).unwrap());
        let guard = install(Some(outer.clone()));
        assert!(active().is_some());
        assert!(counters().unwrap().is_zero());
        {
            // A nested clear works while its guard lives…
            let inner = install(None);
            assert!(active().is_none());
            drop(inner);
        }
        // …and the outer handle comes back when it drops.
        assert!(
            Arc::ptr_eq(&active().expect("outer handle restored"), &outer),
            "inner guard must restore the outer handle"
        );
        drop(guard);
        assert!(active().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwind_restores_previous_handle() {
        let _gate = gate();
        let dir = std::env::temp_dir().join(format!("topogen-ambient-uw-{}", std::process::id()));
        let store = Arc::new(Store::open(&dir).unwrap());
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = install(Some(store.clone()));
            panic!("boom");
        }));
        assert!(active().is_none(), "guard restored the slot on unwind");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
