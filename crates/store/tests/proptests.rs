//! Property tests for the binary codec: arbitrary graphs survive the
//! text → binary → text pipeline bit-identically, and corrupted bytes
//! are always rejected with a typed error — never a panic, never a
//! silently wrong graph.

use proptest::prelude::*;
use topogen_graph::io::{parse_edge_list, to_edge_list};
use topogen_graph::{Graph, NodeId};
use topogen_store::codec;
use topogen_store::{decode_graph, encode_graph};

/// Arbitrary graph: up to 40 nodes, arbitrary edge pairs (self-loops
/// filtered, duplicates collapsed by `Graph::from_edges`).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..40)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..120),
            )
        })
        .prop_map(|(n, pairs)| Graph::from_edges(n, pairs.into_iter().filter(|(u, v)| u != v)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// text → binary → text is bit-identical: serializing the decoded
    /// binary graph reproduces the exact text the loader started from.
    #[test]
    fn text_binary_text_bit_identical(g in arb_graph()) {
        let text = to_edge_list(&g);
        let parsed = parse_edge_list(&text).unwrap();
        let binary = encode_graph(&parsed);
        let decoded = decode_graph(&binary).unwrap();
        let text2 = to_edge_list(&decoded);
        prop_assert_eq!(text.as_bytes(), text2.as_bytes());
        prop_assert_eq!(decoded.node_count(), g.node_count());
        prop_assert_eq!(decoded.edges(), g.edges());
    }

    /// Binary encoding is deterministic: same graph, same bytes.
    #[test]
    fn encoding_is_deterministic(g in arb_graph()) {
        prop_assert_eq!(encode_graph(&g), encode_graph(&g));
    }

    /// Any single corrupted byte is rejected by the checksum (or an
    /// earlier header check) with a typed error — never a panic.
    #[test]
    fn corrupted_byte_rejected_typed(
        g in arb_graph(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let bytes = encode_graph(&g);
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let mut bad = bytes.clone();
        bad[pos] ^= flip;
        let err = decode_graph(&bad).expect_err("corruption undetected");
        // Every failure is one of the typed variants; the Display form
        // carries offset context.
        let msg = err.to_string();
        prop_assert!(!msg.is_empty());
        match err {
            codec::CodecError::BadMagic
            | codec::CodecError::UnsupportedVersion(_)
            | codec::CodecError::BadEndianTag(_)
            | codec::CodecError::Truncated { .. }
            | codec::CodecError::Checksum { .. }
            | codec::CodecError::Malformed { .. } => {}
        }
    }

    /// Arbitrary garbage bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_graph(&bytes);
        let _ = codec::read_sections(&bytes);
        let _ = codec::verify_container(&bytes);
    }

    /// Garbage with a valid-looking header still never panics (it gets
    /// past the magic/version checks into section parsing).
    #[test]
    fn garbage_with_valid_header_never_panics(
        body in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&codec::MAGIC);
        bytes.extend_from_slice(&codec::CODEC_VERSION.to_le_bytes());
        bytes.extend_from_slice(&codec::ENDIAN_TAG.to_le_bytes());
        bytes.extend_from_slice(&body);
        let _ = decode_graph(&bytes);
        // Even with a correct trailing checksum, malformed sections are
        // typed errors.
        let mut h = topogen_store::fnv::Fnv1a::new();
        h.write(&bytes);
        let sum = h.finish();
        bytes.extend_from_slice(&sum.to_le_bytes());
        let _ = decode_graph(&bytes);
    }
}
