//! Unit-capacity maximum flow (Edmonds–Karp on the residual digraph).
//!
//! Used by the "expected max-flow between the center of a ball ... and
//! any node on the surface of the ball" metric the paper lists among its
//! additional experiments (footnote 22), and handy as an exact
//! cross-check for small-cut assertions: by Menger's theorem, the
//! unit-capacity max flow between `s` and `t` equals the number of
//! edge-disjoint paths, i.e. the minimum edge cut separating them.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Maximum `s`–`t` flow treating every undirected edge as capacity 1 in
/// each direction. Returns 0 when `s == t` is false but they are
/// disconnected, and panics on `s == t`.
///
/// Complexity O(E · maxflow) — fine for the ball-sized subgraphs and the
/// bounded degrees this repository feeds it.
pub fn max_flow_unit(g: &Graph, s: NodeId, t: NodeId) -> u64 {
    assert_ne!(s, t, "max flow needs distinct endpoints");
    let m = g.edge_count();
    // Residual capacities per direction: fwd[i] is a→b, bwd[i] is b→a
    // for edge i = (a, b).
    let mut fwd = vec![1u8; m];
    let mut bwd = vec![1u8; m];
    let n = g.node_count();
    let mut flow = 0u64;
    let mut pred: Vec<Option<(NodeId, usize, bool)>> = vec![None; n]; // (from, edge, is_fwd)
    loop {
        // BFS over residual edges.
        for p in pred.iter_mut() {
            *p = None;
        }
        let mut q = VecDeque::new();
        q.push_back(s);
        pred[s as usize] = Some((s, usize::MAX, true));
        let mut reached = false;
        'bfs: while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if pred[v as usize].is_some() {
                    continue;
                }
                let ei = g.edge_index(u, v).expect("adjacent edge");
                let e = g.edges()[ei];
                // Direction u→v is forward iff u == e.a.
                let is_fwd = u == e.a;
                let cap = if is_fwd { fwd[ei] } else { bwd[ei] };
                if cap == 0 {
                    continue;
                }
                pred[v as usize] = Some((u, ei, is_fwd));
                if v == t {
                    reached = true;
                    break 'bfs;
                }
                q.push_back(v);
            }
        }
        if !reached {
            break;
        }
        // Augment by 1 along the path.
        let mut v = t;
        while v != s {
            let (u, ei, is_fwd) = pred[v as usize].expect("path back to source");
            if is_fwd {
                fwd[ei] -= 1;
                bwd[ei] += 1;
            } else {
                bwd[ei] -= 1;
                fwd[ei] += 1;
            }
            v = u;
        }
        flow += 1;
    }
    flow
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_flow_is_one() {
        let g = Graph::from_edges(4, (0..3).map(|i| (i, i + 1)));
        assert_eq!(max_flow_unit(&g, 0, 3), 1);
    }

    #[test]
    fn disconnected_zero() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        assert_eq!(max_flow_unit(&g, 0, 3), 0);
    }

    #[test]
    fn cycle_flow_is_two() {
        let g = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
        assert_eq!(max_flow_unit(&g, 0, 3), 2);
    }

    #[test]
    fn complete_graph_flow() {
        // K5: min cut between any pair = degree = 4.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, edges);
        assert_eq!(max_flow_unit(&g, 0, 4), 4);
    }

    #[test]
    fn two_cliques_bridge() {
        // K4 — bridge — K4: max flow across = 1.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                edges.push((i, j));
                edges.push((i + 4, j + 4));
            }
        }
        edges.push((0, 4));
        let g = Graph::from_edges(8, edges);
        assert_eq!(max_flow_unit(&g, 1, 5), 1);
        assert_eq!(max_flow_unit(&g, 1, 2), 3);
    }

    #[test]
    fn grid_corner_flow() {
        // 3x3 grid: corner has degree 2 → flow from corner bounded by 2.
        let mut e = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = r * 3 + c;
                if c + 1 < 3 {
                    e.push((v, v + 1));
                }
                if r + 1 < 3 {
                    e.push((v, v + 3));
                }
            }
        }
        let g = Graph::from_edges(9, e);
        assert_eq!(max_flow_unit(&g, 0, 8), 2);
        assert_eq!(max_flow_unit(&g, 1, 7), 3);
    }

    #[test]
    fn menger_flow_matches_bridge_count() {
        // Triangle-bridge-triangle: exactly one edge-disjoint path across.
        let g = Graph::from_edges(
            6,
            vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)],
        );
        assert_eq!(max_flow_unit(&g, 0, 4), 1);
    }

    #[test]
    #[should_panic]
    fn same_endpoints_panics() {
        let g = Graph::from_edges(2, vec![(0, 1)]);
        let _ = max_flow_unit(&g, 1, 1);
    }
}
