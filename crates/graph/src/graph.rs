//! The core [`Graph`] type: an immutable, undirected, simple graph in
//! compressed-sparse-row form, plus the mutable [`GraphBuilder`] used to
//! construct it.

use std::fmt;

/// Node identifier. Node ids are dense: a graph with `n` nodes uses ids
/// `0..n`. `u32` keeps adjacency arrays compact even for router-level
/// graphs with hundreds of thousands of nodes.
pub type NodeId = u32;

/// An undirected edge, stored with `a <= b` once normalized.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Edge {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
}

impl Edge {
    /// Create a normalized edge with `a <= b`.
    ///
    /// # Panics
    /// Panics if `u == v` (self-loops are not representable).
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loops are not valid edges");
        if u < v {
            Edge { a: u, b: v }
        } else {
            Edge { a: v, b: u }
        }
    }

    /// The endpoint that is not `n`.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of this edge.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            assert_eq!(n, self.b, "node {n} is not an endpoint of {self:?}");
            self.a
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.a, self.b)
    }
}

/// Incrementally accumulates edges, then produces an immutable [`Graph`].
///
/// Self-loops are silently dropped and duplicate edges are collapsed,
/// mirroring the paper's treatment of the PLRG generator's "superfluous
/// links" (footnote 6). The builder tracks how many of each were ignored
/// so generators can report the raw vs. simple edge counts.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
    self_loops_dropped: usize,
}

impl GraphBuilder {
    /// A builder for a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            self_loops_dropped: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Grow the node set to at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
        }
    }

    /// Append a fresh node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.n as NodeId;
        self.n += 1;
        id
    }

    /// Add an undirected edge. Self-loops are counted and dropped;
    /// duplicates are collapsed at [`build`](Self::build) time.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} nodes",
            self.n
        );
        if u == v {
            self.self_loops_dropped += 1;
            return;
        }
        self.edges.push(Edge::new(u, v));
    }

    /// Whether the edge `(u, v)` has already been added (linear scan; for
    /// hot paths prefer collapsing duplicates at build time).
    pub fn has_edge_slow(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let e = Edge::new(u, v);
        self.edges.contains(&e)
    }

    /// Number of raw edge insertions so far (before dedup, excluding
    /// dropped self-loops).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// How many self-loops were dropped.
    pub fn self_loops_dropped(&self) -> usize {
        self.self_loops_dropped
    }

    /// Finalize into an immutable [`Graph`], sorting adjacency lists and
    /// collapsing duplicate edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_normalized_edges(self.n, self.edges)
    }
}

/// An immutable undirected simple graph in CSR (compressed sparse row)
/// form. Adjacency lists are sorted, enabling `O(log d)` adjacency tests.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// offsets[v]..offsets[v+1] indexes `targets` with v's neighbors.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    targets: Vec<NodeId>,
    /// Normalized unique edges, sorted.
    edges: Vec<Edge>,
}

impl Graph {
    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Graph {
        Graph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Build from an arbitrary edge iterator (self-loops dropped,
    /// duplicates collapsed).
    pub fn from_edges<I>(n: usize, edges: I) -> Graph
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Internal: build from already-normalized, sorted, deduped edges.
    pub(crate) fn from_normalized_edges(n: usize, edges: Vec<Edge>) -> Graph {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges not sorted+deduped"
        );
        let mut deg = vec![0usize; n];
        for e in &edges {
            deg[e.a as usize] += 1;
            deg[e.b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; acc];
        for e in &edges {
            targets[cursor[e.a as usize]] = e.b;
            cursor[e.a as usize] += 1;
            targets[cursor[e.b as usize]] = e.a;
            cursor[e.b as usize] += 1;
        }
        // Each list must be sorted for binary-search adjacency tests.
        for v in 0..n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph {
            offsets,
            targets,
            edges,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (unique, undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Average node degree `2m / n`; 0 for the empty node set.
    pub fn average_degree(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / n as f64
        }
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted slice of `v`'s neighbors.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether `(u, v)` is an edge (`O(log deg(u))`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        // Search the smaller adjacency list.
        let (s, t) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(s).binary_search(&t).is_ok()
    }

    /// All unique edges in normalized sorted order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Degree sequence (unsorted, indexed by node).
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.node_count() as NodeId)
            .map(|v| self.degree(v))
            .collect()
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Index of an edge in [`edges`](Self::edges), if present. Useful for
    /// dense per-edge arrays (e.g. link values).
    pub fn edge_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        if u == v {
            return None;
        }
        self.edges.binary_search(&Edge::new(u, v)).ok()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.average_degree(), 2.0);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn dedup_and_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate in reverse order
        b.add_edge(0, 1); // exact duplicate
        b.add_edge(2, 2); // self loop
        assert_eq!(b.self_loops_dropped(), 1);
        assert_eq!(b.raw_edge_count(), 3);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn builder_add_node() {
        let mut b = GraphBuilder::new(0);
        let a = b.add_node();
        let c = b.add_node();
        b.add_edge(a, c);
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn ensure_nodes_grows_only() {
        let mut b = GraphBuilder::new(5);
        b.ensure_nodes(3);
        assert_eq!(b.node_count(), 5);
        b.ensure_nodes(8);
        assert_eq!(b.node_count(), 8);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn edge_normalization() {
        let e = Edge::new(5, 2);
        assert_eq!(e.a, 2);
        assert_eq!(e.b, 5);
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
    }

    #[test]
    #[should_panic]
    fn edge_self_loop_panics() {
        let _ = Edge::new(3, 3);
    }

    #[test]
    fn edge_index_lookup() {
        let g = triangle();
        assert!(g.edge_index(0, 1).is_some());
        assert!(g.edge_index(1, 0).is_some());
        assert_eq!(g.edge_index(0, 1), g.edge_index(1, 0));
        assert_eq!(g.edge_index(0, 0), None);
        let idx: Vec<_> = g
            .edges()
            .iter()
            .map(|e| g.edge_index(e.a, e.b).unwrap())
            .collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, vec![(0, 4), (0, 2), (0, 1), (0, 3)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn star_degrees() {
        let g = Graph::from_edges(5, (1..5).map(|i| (0, i)));
        assert_eq!(g.degree(0), 4);
        for v in 1..5 {
            assert_eq!(g.degree(v), 1);
        }
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.average_degree(), 8.0 / 5.0);
    }
}
