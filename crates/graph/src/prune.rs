//! Core extraction: recursive degree-1 pruning.
//!
//! The paper computes link values on the router graph's *core*, "generated
//! from the original RL topology by recursively removing degree 1 nodes"
//! (footnote 29). This module implements that reduction.

use crate::subgraph::{induced_subgraph, SubgraphMap};
use crate::{Graph, NodeId};

/// Recursively remove degree-1 nodes until none remain, returning the core
/// subgraph and the mapping back to original node ids. Isolated nodes
/// (degree 0 in the original graph) are also dropped.
pub fn core(g: &Graph) -> (Graph, SubgraphMap) {
    let n = g.node_count();
    let mut deg: Vec<usize> = g.degrees();
    let mut removed = vec![false; n];
    let mut stack: Vec<NodeId> = (0..n as NodeId).filter(|&v| deg[v as usize] <= 1).collect();
    while let Some(v) = stack.pop() {
        if removed[v as usize] {
            continue;
        }
        removed[v as usize] = true;
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                deg[w as usize] -= 1;
                if deg[w as usize] <= 1 {
                    stack.push(w);
                }
            }
        }
    }
    let keep: Vec<NodeId> = (0..n as NodeId).filter(|&v| !removed[v as usize]).collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_prunes_to_nothing() {
        // Any tree collapses entirely under recursive leaf removal.
        let g = Graph::from_edges(7, vec![(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        let (c, _) = core(&g);
        assert_eq!(c.node_count(), 0);
    }

    #[test]
    fn cycle_survives() {
        let g = Graph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
        let (c, map) = core(&g);
        assert_eq!(c.node_count(), 5);
        assert_eq!(c.edge_count(), 5);
        assert_eq!(map.len(), 5);
    }

    #[test]
    fn cycle_with_tails_prunes_tails() {
        // Triangle 0-1-2 with a path 2-3-4 hanging off.
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let (c, map) = core(&g);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.edge_count(), 3);
        let mut orig: Vec<NodeId> = map.originals().to_vec();
        orig.sort_unstable();
        assert_eq!(orig, vec![0, 1, 2]);
    }

    #[test]
    fn isolated_nodes_dropped() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 0)]);
        let (c, _) = core(&g);
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn core_is_idempotent() {
        let g = Graph::from_edges(
            8,
            vec![
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
                (6, 7),
            ],
        );
        let (c1, _) = core(&g);
        let (c2, _) = core(&c1);
        assert_eq!(c1.node_count(), c2.node_count());
        assert_eq!(c1.edge_count(), c2.edge_count());
        // Every node in the core has degree >= 2.
        assert!(c1.nodes().all(|v| c1.degree(v) >= 2));
    }
}
