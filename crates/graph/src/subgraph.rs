//! Induced subgraphs and ball extraction.
//!
//! A *ball* of radius `h` around a node is the subgraph induced by all
//! nodes within `h` hops — the basic unit of the paper's ball-growing
//! methodology (§3.2.1): resilience, distortion, vertex cover,
//! biconnectivity and clustering are all computed on subgraphs inside
//! balls of growing radius.

use crate::bfs::ball_nodes;
use crate::{Graph, GraphBuilder, NodeId};

/// Mapping between a subgraph's dense node ids and the original graph's.
#[derive(Clone, Debug, Default)]
pub struct SubgraphMap {
    /// `to_orig[sub_id] = original_id`.
    to_orig: Vec<NodeId>,
}

impl SubgraphMap {
    /// An empty mapping.
    pub fn empty() -> Self {
        SubgraphMap {
            to_orig: Vec::new(),
        }
    }

    /// Build from an explicit `subgraph id → original id` table.
    pub fn from_originals(to_orig: Vec<NodeId>) -> Self {
        SubgraphMap { to_orig }
    }

    /// The original id of subgraph node `v`.
    pub fn to_original(&self, v: NodeId) -> NodeId {
        self.to_orig[v as usize]
    }

    /// Number of nodes in the subgraph.
    pub fn len(&self) -> usize {
        self.to_orig.len()
    }

    /// Whether the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.to_orig.is_empty()
    }

    /// Slice of original ids indexed by subgraph id.
    pub fn originals(&self) -> &[NodeId] {
        &self.to_orig
    }
}

/// The subgraph induced by `keep` (need not be sorted; duplicates are a
/// bug and panic in debug builds). Returns the new graph plus the mapping
/// to original ids; subgraph ids follow the order of `keep`.
pub fn induced_subgraph(g: &Graph, keep: &[NodeId]) -> (Graph, SubgraphMap) {
    let mut inv = vec![u32::MAX; g.node_count()];
    for (i, &v) in keep.iter().enumerate() {
        debug_assert_eq!(inv[v as usize], u32::MAX, "duplicate node in keep set");
        inv[v as usize] = i as u32;
    }
    let mut b = GraphBuilder::new(keep.len());
    for (i, &v) in keep.iter().enumerate() {
        for &w in g.neighbors(v) {
            let j = inv[w as usize];
            // Add each edge once (from the smaller subgraph id).
            if j != u32::MAX && (i as u32) < j {
                b.add_edge(i as NodeId, j);
            }
        }
    }
    (
        b.build(),
        SubgraphMap {
            to_orig: keep.to_vec(),
        },
    )
}

/// The ball of radius `h` centered at `center`: the subgraph induced by
/// all nodes within `h` hops. Node 0 of the returned subgraph is always
/// the center.
pub fn ball(g: &Graph, center: NodeId, h: u32) -> (Graph, SubgraphMap) {
    let nodes = ball_nodes(g, center, h);
    debug_assert_eq!(nodes.first(), Some(&center));
    induced_subgraph(g, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid3() -> Graph {
        // 3x3 grid, ids row-major.
        let mut e = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = r * 3 + c;
                if c + 1 < 3 {
                    e.push((v, v + 1));
                }
                if r + 1 < 3 {
                    e.push((v, v + 3));
                }
            }
        }
        Graph::from_edges(9, e)
    }

    #[test]
    fn induced_preserves_internal_edges() {
        let g = grid3();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 3, 4]);
        assert_eq!(sub.node_count(), 4);
        // 2x2 corner of the grid: 4 edges.
        assert_eq!(sub.edge_count(), 4);
        assert_eq!(map.to_original(0), 0);
        assert_eq!(map.to_original(3), 4);
    }

    #[test]
    fn induced_empty_keep() {
        let g = grid3();
        let (sub, map) = induced_subgraph(&g, &[]);
        assert_eq!(sub.node_count(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn ball_radius_zero_is_center() {
        let g = grid3();
        let (sub, map) = ball(&g, 4, 0);
        assert_eq!(sub.node_count(), 1);
        assert_eq!(sub.edge_count(), 0);
        assert_eq!(map.to_original(0), 4);
    }

    #[test]
    fn ball_radius_one_around_grid_center() {
        let g = grid3();
        let (sub, map) = ball(&g, 4, 1);
        // Center 4 plus its 4 neighbors; plus edges only among those:
        // the cross has 4 edges (no edges among the arms).
        assert_eq!(sub.node_count(), 5);
        assert_eq!(sub.edge_count(), 4);
        assert_eq!(map.to_original(0), 4);
    }

    #[test]
    fn ball_covers_whole_graph_at_diameter() {
        let g = grid3();
        let (sub, _) = ball(&g, 0, 4);
        assert_eq!(sub.node_count(), 9);
        assert_eq!(sub.edge_count(), 12);
    }

    #[test]
    fn ball_excludes_other_component() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]);
        let (sub, map) = ball(&g, 0, 10);
        assert_eq!(sub.node_count(), 3);
        assert!(map.originals().iter().all(|&v| v <= 2));
    }

    #[test]
    fn subgraph_ids_follow_keep_order() {
        let g = grid3();
        let (_, map) = induced_subgraph(&g, &[8, 2, 5]);
        assert_eq!(map.originals(), &[8, 2, 5]);
        assert_eq!(map.to_original(1), 2);
    }
}
