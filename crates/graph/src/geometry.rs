//! Plane geometry for location-aware generators.
//!
//! Waxman places nodes uniformly on a plane and biases link probability by
//! Euclidean distance; Tiers connects each tier with a Euclidean minimum
//! spanning tree and adds redundancy links in order of increasing
//! distance (§3.1.2). This module provides the shared point type, the
//! O(n²) Prim MST (exact, adequate for the paper's ≤ 10⁴-node networks),
//! and distance-ordered pair enumeration.

/// A point in the plane (coordinates typically in `[0, 1)`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper for comparisons).
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// Exact Euclidean minimum spanning tree over `points` via Prim's
/// algorithm in O(n²) time and O(n) memory. Returns the tree's edges as
/// index pairs. Empty and single-point inputs return no edges.
pub fn euclidean_mst(points: &[Point]) -> Vec<(u32, u32)> {
    let n = points.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n]; // best[i]: cheapest squared dist into tree
    let mut best_from = vec![0u32; n];
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for i in 1..n {
        best[i] = points[0].dist2(&points[i]);
    }
    for _ in 1..n {
        // Cheapest frontier vertex.
        let mut v = usize::MAX;
        let mut vd = f64::INFINITY;
        for i in 0..n {
            if !in_tree[i] && best[i] < vd {
                vd = best[i];
                v = i;
            }
        }
        debug_assert_ne!(v, usize::MAX);
        in_tree[v] = true;
        edges.push((best_from[v], v as u32));
        for i in 0..n {
            if !in_tree[i] {
                let d = points[v].dist2(&points[i]);
                if d < best[i] {
                    best[i] = d;
                    best_from[i] = v as u32;
                }
            }
        }
    }
    edges
}

/// All unordered index pairs sorted by increasing Euclidean distance.
/// O(n² log n); used by Tiers to add redundancy links "in order of
/// increasing inter-node Euclidean distance".
pub fn pairs_by_distance(points: &[Point]) -> Vec<(u32, u32)> {
    let n = points.len();
    let mut pairs = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push((points[i].dist2(&points[j]), i as u32, j as u32));
        }
    }
    pairs.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap()
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    pairs.into_iter().map(|(_, i, j)| (i, j)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
        assert!((a.dist2(&b) - 25.0).abs() < 1e-12);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn mst_trivial_inputs() {
        assert!(euclidean_mst(&[]).is_empty());
        assert!(euclidean_mst(&[Point::new(0.0, 0.0)]).is_empty());
        let e = euclidean_mst(&[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        assert_eq!(e, vec![(0, 1)]);
    }

    #[test]
    fn mst_collinear_points_chains() {
        // Points at x = 0, 1, 2, 3: MST must be the chain.
        let pts: Vec<Point> = (0..4).map(|i| Point::new(i as f64, 0.0)).collect();
        let mut edges = euclidean_mst(&pts);
        for e in edges.iter_mut() {
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn mst_has_n_minus_1_edges_and_spans() {
        use crate::unionfind::UnionFind;
        // Deterministic pseudo-random points via an LCG.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..50).map(|_| Point::new(next(), next())).collect();
        let edges = euclidean_mst(&pts);
        assert_eq!(edges.len(), 49);
        let mut uf = UnionFind::new(50);
        for (a, b) in &edges {
            assert!(uf.union(*a, *b), "MST must be acyclic");
        }
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn mst_weight_not_worse_than_star() {
        // Total MST weight must be <= weight of the star rooted at point 0.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.1),
            Point::new(2.0, -0.1),
            Point::new(3.0, 0.05),
        ];
        let mst_w: f64 = euclidean_mst(&pts)
            .iter()
            .map(|&(a, b)| pts[a as usize].dist(&pts[b as usize]))
            .sum();
        let star_w: f64 = (1..4).map(|i| pts[0].dist(&pts[i])).sum();
        assert!(mst_w <= star_w + 1e-12);
    }

    #[test]
    fn pairs_sorted_by_distance() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(0.0, 3.0),
        ];
        let pairs = pairs_by_distance(&pts);
        assert_eq!(pairs, vec![(0, 1), (1, 2), (0, 2)]);
    }

    #[test]
    fn pairs_count() {
        let pts: Vec<Point> = (0..6).map(|i| Point::new(i as f64, 0.0)).collect();
        assert_eq!(pairs_by_distance(&pts).len(), 15);
    }
}
