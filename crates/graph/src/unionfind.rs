//! Disjoint-set (union–find) with path halving and union by size.
//!
//! Used by the Euclidean MST construction in the Tiers generator and by
//! connectivity patch-up passes in several generators.

/// Union–find over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.set_count(), 4);
        assert!(!uf.same(0, 1));
        assert_eq!(uf.set_size(2), 1);
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.same(0, 1));
        assert!(!uf.union(1, 0)); // already merged
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.set_size(0), 2);
    }

    #[test]
    fn transitive_merge() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 2);
        assert!(uf.same(0, 3));
        assert!(!uf.same(0, 4));
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.set_size(3), 4);
    }

    #[test]
    fn chain_of_unions_single_set() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            assert!(uf.union(i, i + 1));
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.same(0, 99));
        assert_eq!(uf.set_size(42), 100);
    }
}
