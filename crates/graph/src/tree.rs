//! Rooted-tree utilities: BFS trees, LCA with binary lifting, tree
//! distances, and spanning-tree distortion evaluation.
//!
//! The distortion metric (§3.2.1) measures, for a spanning tree `T` of a
//! graph `G`, the average `T`-distance between the endpoints of each edge
//! of `G`. Evaluating that efficiently needs fast tree-distance queries,
//! which we answer with binary-lifting LCA in `O(log n)` per query.

use crate::{Graph, NodeId, UNREACHED};
use std::collections::VecDeque;

/// A rooted spanning tree over (a connected subset of) a graph's nodes,
/// stored as a parent array with depths.
#[derive(Clone, Debug)]
pub struct RootedTree {
    /// Parent of each node (root's parent is itself).
    pub parent: Vec<NodeId>,
    /// Depth of each node (root = 0; `u32::MAX` for nodes outside the tree).
    pub depth: Vec<u32>,
    /// The root node.
    pub root: NodeId,
}

impl RootedTree {
    /// BFS spanning tree of the component containing `root`.
    pub fn bfs_tree(g: &Graph, root: NodeId) -> RootedTree {
        let n = g.node_count();
        let mut parent = vec![NodeId::MAX; n];
        let mut depth = vec![UNREACHED; n];
        parent[root as usize] = root;
        depth[root as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if depth[v as usize] == UNREACHED {
                    depth[v as usize] = depth[u as usize] + 1;
                    parent[v as usize] = u;
                    q.push_back(v);
                }
            }
        }
        RootedTree {
            parent,
            depth,
            root,
        }
    }

    /// Build directly from a parent array (`parent[root] == root`).
    ///
    /// # Panics
    /// Panics if the parent array contains a cycle other than the root
    /// self-loop or a node whose chain does not reach the root.
    pub fn from_parents(parent: Vec<NodeId>, root: NodeId) -> RootedTree {
        let n = parent.len();
        let mut depth = vec![UNREACHED; n];
        depth[root as usize] = 0;
        for v in 0..n as NodeId {
            if parent[v as usize] == NodeId::MAX {
                continue; // outside the tree
            }
            // Walk up until a known depth, collecting the chain.
            let mut chain = Vec::new();
            let mut x = v;
            while depth[x as usize] == UNREACHED {
                chain.push(x);
                x = parent[x as usize];
                assert!(chain.len() <= n, "cycle in parent array at node {v}");
            }
            let mut d = depth[x as usize];
            for &c in chain.iter().rev() {
                d += 1;
                depth[c as usize] = d;
            }
        }
        RootedTree {
            parent,
            depth,
            root,
        }
    }

    /// Whether `v` belongs to the tree.
    pub fn contains(&self, v: NodeId) -> bool {
        self.depth[v as usize] != UNREACHED
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        self.depth.iter().filter(|&&d| d != UNREACHED).count()
    }
}

/// Lowest-common-ancestor oracle via binary lifting. Build once per tree
/// in `O(n log n)`, query in `O(log n)`.
#[derive(Clone, Debug)]
pub struct Lca {
    up: Vec<Vec<NodeId>>, // up[k][v] = 2^k-th ancestor of v
    depth: Vec<u32>,
}

impl Lca {
    /// Preprocess a rooted tree.
    pub fn new(tree: &RootedTree) -> Lca {
        let n = tree.parent.len();
        let levels = (usize::BITS - n.max(2).leading_zeros()) as usize;
        let mut up = Vec::with_capacity(levels);
        // Level 0: the parent itself (root points to itself; out-of-tree
        // nodes point to themselves to stay harmless).
        let base: Vec<NodeId> = (0..n as NodeId)
            .map(|v| {
                let p = tree.parent[v as usize];
                if p == NodeId::MAX {
                    v
                } else {
                    p
                }
            })
            .collect();
        up.push(base);
        for k in 1..levels {
            let prev = &up[k - 1];
            let next: Vec<NodeId> = (0..n).map(|v| prev[prev[v] as usize]).collect();
            up.push(next);
        }
        Lca {
            up,
            depth: tree.depth.clone(),
        }
    }

    /// Lowest common ancestor of `u` and `v` (both must be in the tree).
    pub fn lca(&self, mut u: NodeId, mut v: NodeId) -> NodeId {
        debug_assert_ne!(self.depth[u as usize], UNREACHED);
        debug_assert_ne!(self.depth[v as usize], UNREACHED);
        if self.depth[u as usize] < self.depth[v as usize] {
            std::mem::swap(&mut u, &mut v);
        }
        // Lift u to v's depth.
        let mut diff = self.depth[u as usize] - self.depth[v as usize];
        let mut k = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                u = self.up[k][u as usize];
            }
            diff >>= 1;
            k += 1;
        }
        if u == v {
            return u;
        }
        for k in (0..self.up.len()).rev() {
            if self.up[k][u as usize] != self.up[k][v as usize] {
                u = self.up[k][u as usize];
                v = self.up[k][v as usize];
            }
        }
        self.up[0][u as usize]
    }

    /// Hop distance between `u` and `v` along the tree.
    pub fn tree_distance(&self, u: NodeId, v: NodeId) -> u32 {
        let a = self.lca(u, v);
        self.depth[u as usize] + self.depth[v as usize] - 2 * self.depth[a as usize]
    }
}

/// Average tree-distance between the endpoints of every edge of `g`,
/// using spanning tree `tree` — the paper's *distortion* of `g` w.r.t.
/// `tree` (§3.2.1, after Hu \[22\]). The tree must span all of `g`'s
/// non-isolated nodes. Returns `None` if `g` has no edges.
pub fn distortion_of_tree(g: &Graph, tree: &RootedTree) -> Option<f64> {
    if g.edge_count() == 0 {
        return None;
    }
    let lca = Lca::new(tree);
    let mut total = 0u64;
    for e in g.edges() {
        total += lca.tree_distance(e.a, e.b) as u64;
    }
    Some(total as f64 / g.edge_count() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid3() -> Graph {
        let mut e = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = r * 3 + c;
                if c + 1 < 3 {
                    e.push((v, v + 1));
                }
                if r + 1 < 3 {
                    e.push((v, v + 3));
                }
            }
        }
        Graph::from_edges(9, e)
    }

    #[test]
    fn bfs_tree_depths() {
        let g = grid3();
        let t = RootedTree::bfs_tree(&g, 0);
        assert_eq!(t.depth[0], 0);
        assert_eq!(t.depth[4], 2);
        assert_eq!(t.depth[8], 4);
        assert_eq!(t.size(), 9);
        assert_eq!(t.parent[0], 0);
    }

    #[test]
    fn bfs_tree_partial_component() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let t = RootedTree::bfs_tree(&g, 0);
        assert!(t.contains(0));
        assert!(t.contains(1));
        assert!(!t.contains(2));
        assert_eq!(t.size(), 2);
    }

    #[test]
    fn lca_on_path() {
        let g = Graph::from_edges(5, (0..4).map(|i| (i, i + 1)));
        let t = RootedTree::bfs_tree(&g, 0);
        let l = Lca::new(&t);
        assert_eq!(l.lca(3, 4), 3);
        assert_eq!(l.lca(1, 4), 1);
        assert_eq!(l.tree_distance(0, 4), 4);
        assert_eq!(l.tree_distance(2, 2), 0);
    }

    #[test]
    fn lca_on_binary_tree() {
        // Perfect binary tree: node i has children 2i+1, 2i+2 (7 nodes).
        let edges: Vec<(NodeId, NodeId)> = (0..3)
            .flat_map(|i| vec![(i, 2 * i + 1), (i, 2 * i + 2)])
            .collect();
        let g = Graph::from_edges(7, edges);
        let t = RootedTree::bfs_tree(&g, 0);
        let l = Lca::new(&t);
        assert_eq!(l.lca(3, 4), 1);
        assert_eq!(l.lca(3, 5), 0);
        assert_eq!(l.lca(5, 6), 2);
        assert_eq!(l.tree_distance(3, 4), 2);
        assert_eq!(l.tree_distance(3, 6), 4);
    }

    #[test]
    fn distortion_of_tree_on_tree_is_one() {
        // Spanning tree of a tree is the tree itself: every edge at
        // distance exactly 1.
        let g = Graph::from_edges(5, (0..4).map(|i| (i, i + 1)));
        let t = RootedTree::bfs_tree(&g, 0);
        assert_eq!(distortion_of_tree(&g, &t), Some(1.0));
    }

    #[test]
    fn distortion_on_cycle() {
        // 4-cycle, BFS tree from 0 misses one edge whose endpoints are at
        // tree distance... BFS tree from 0: 1 and 3 children of 0, 2 child
        // of 1 (or 3). Missing edge (2,3): distance 3 via tree (2-1-0-3).
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let t = RootedTree::bfs_tree(&g, 0);
        let d = distortion_of_tree(&g, &t).unwrap();
        // 3 tree edges at distance 1 + one chord at distance 3 → 6/4.
        assert!((d - 1.5).abs() < 1e-12);
    }

    #[test]
    fn distortion_none_for_edgeless() {
        let g = Graph::empty(3);
        let t = RootedTree::from_parents(vec![0, NodeId::MAX, NodeId::MAX], 0);
        assert_eq!(distortion_of_tree(&g, &t), None);
    }

    #[test]
    fn from_parents_roundtrip() {
        // Star rooted at 0.
        let parent = vec![0, 0, 0, 0];
        let t = RootedTree::from_parents(parent, 0);
        assert_eq!(t.depth, vec![0, 1, 1, 1]);
        assert_eq!(t.size(), 4);
    }

    #[test]
    #[should_panic]
    fn from_parents_detects_cycle() {
        // 1 → 2 → 1 cycle, disconnected from root 0.
        let parent = vec![0, 2, 1];
        let _ = RootedTree::from_parents(parent, 0);
    }
}
