//! Minimal edge-list interchange format.
//!
//! One `u v` pair per line, `#`-prefixed comment lines ignored. The node
//! count is `max id + 1` unless a `# nodes: N` header raises it. This is
//! the least-common-denominator format the original generator tools
//! (GT-ITM, Tiers, BRITE, Inet) all export to, letting users feed real
//! measured graphs into the metric suite.

use crate::{Graph, GraphBuilder, NodeId};
use std::fmt::Write as _;

/// Errors from parsing an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A data line did not consist of two integers.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine { line, content } => {
                write!(f, "line {line}: expected `u v`, got {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse an edge list. Self-loops are dropped and duplicate edges
/// collapsed, matching [`GraphBuilder`] semantics.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut n: usize = 0;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            // Optional "# nodes: N" header.
            if let Some(v) = rest.trim().strip_prefix("nodes:") {
                if let Ok(k) = v.trim().parse::<usize>() {
                    n = n.max(k);
                }
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let (a, b) = match (it.next(), it.next(), it.next()) {
            (Some(a), Some(b), None) => (a, b),
            _ => {
                return Err(ParseError::BadLine {
                    line: i + 1,
                    content: line.to_string(),
                })
            }
        };
        let parse = |s: &str, i: usize, line: &str| {
            s.parse::<NodeId>().map_err(|_| ParseError::BadLine {
                line: i + 1,
                content: line.to_string(),
            })
        };
        let u = parse(a, i, line)?;
        let v = parse(b, i, line)?;
        n = n.max(u as usize + 1).max(v as usize + 1);
        edges.push((u, v));
    }
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Serialize a graph as an edge list (with a `# nodes:` header so
/// trailing isolated nodes round-trip).
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# nodes: {}", g.node_count());
    for e in g.edges() {
        let _ = writeln!(out, "{} {}", e.a, e.b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]);
        let text = to_edge_list(&g);
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g2.node_count(), 5);
        assert_eq!(g2.edges(), g.edges());
    }

    #[test]
    fn roundtrip_trailing_isolated_node() {
        let g = Graph::from_edges(4, vec![(0, 1)]);
        let g2 = parse_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(g2.node_count(), 4);
    }

    #[test]
    fn comments_and_blank_lines() {
        let g = parse_edge_list("# a comment\n\n0 1\n  # another\n1 2\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn nodes_header() {
        let g = parse_edge_list("# nodes: 10\n0 1\n").unwrap();
        assert_eq!(g.node_count(), 10);
    }

    #[test]
    fn bad_line_reports_position() {
        let err = parse_edge_list("0 1\nfoo bar\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::BadLine {
                line: 2,
                content: "foo bar".into()
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("line 2"));
    }

    #[test]
    fn too_many_fields_rejected() {
        assert!(parse_edge_list("0 1 2\n").is_err());
    }

    #[test]
    fn self_loops_and_duplicates_normalized() {
        let g = parse_edge_list("0 0\n0 1\n1 0\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn empty_input() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
