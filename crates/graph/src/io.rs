//! Minimal edge-list interchange format.
//!
//! One `u v` pair per line, `#`-prefixed comment lines ignored. The node
//! count is `max id + 1` unless a `# nodes: N` header raises it. This is
//! the least-common-denominator format the original generator tools
//! (GT-ITM, Tiers, BRITE, Inet) all export to, letting users feed real
//! measured graphs into the metric suite.

use crate::{Graph, GraphBuilder, NodeId};
use std::fmt::Write as _;

/// Errors from parsing an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A data line did not consist of two integers.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine { line, content } => {
                write!(f, "line {line}: expected `u v`, got {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors from loading an edge-list file, with enough context
/// (file, line) for a one-line diagnostic — the suite runner prints
/// these and exits 3 instead of unwinding with a backtrace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The file could not be read at all.
    Io {
        /// The path as given.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// The file was read but a line failed to parse.
    Parse {
        /// The path as given.
        path: String,
        /// The parse failure (carries the 1-based line number).
        source: ParseError,
    },
    /// The file parsed but holds no edges — almost always a wrong path
    /// or an export in a different format whose lines all look like
    /// comments.
    Empty {
        /// The path as given.
        path: String,
    },
    /// The file is a binary `.tgr` graph that failed to decode. The
    /// message carries the codec's byte-offset context (this crate
    /// stays independent of the codec, so the error arrives as text).
    Binary {
        /// The path as given.
        path: String,
        /// Decode failure with offset context.
        message: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io { path, message } => write!(f, "{path}: {message}"),
            LoadError::Parse { path, source } => write!(f, "{path}: {source}"),
            LoadError::Empty { path } => write!(f, "{path}: edge list holds no edges"),
            LoadError::Binary { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Load an edge list from disk. Every failure mode — unreadable file,
/// malformed line, edge-free content — comes back as a typed
/// [`LoadError`] naming the file (and line, where there is one).
pub fn load_edge_list(path: &str) -> Result<Graph, LoadError> {
    let text = std::fs::read_to_string(path).map_err(|e| LoadError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    let g = parse_edge_list(&text).map_err(|source| LoadError::Parse {
        path: path.to_string(),
        source,
    })?;
    if g.edge_count() == 0 {
        return Err(LoadError::Empty {
            path: path.to_string(),
        });
    }
    Ok(g)
}

/// Parse an edge list. Self-loops are dropped and duplicate edges
/// collapsed, matching [`GraphBuilder`] semantics.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut n: usize = 0;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            // Optional "# nodes: N" header.
            if let Some(v) = rest.trim().strip_prefix("nodes:") {
                if let Ok(k) = v.trim().parse::<usize>() {
                    n = n.max(k);
                }
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let (a, b) = match (it.next(), it.next(), it.next()) {
            (Some(a), Some(b), None) => (a, b),
            _ => {
                return Err(ParseError::BadLine {
                    line: i + 1,
                    content: line.to_string(),
                })
            }
        };
        let parse = |s: &str, i: usize, line: &str| {
            s.parse::<NodeId>().map_err(|_| ParseError::BadLine {
                line: i + 1,
                content: line.to_string(),
            })
        };
        let u = parse(a, i, line)?;
        let v = parse(b, i, line)?;
        n = n.max(u as usize + 1).max(v as usize + 1);
        edges.push((u, v));
    }
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Serialize a graph as an edge list (with a `# nodes:` header so
/// trailing isolated nodes round-trip).
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# nodes: {}", g.node_count());
    for e in g.edges() {
        let _ = writeln!(out, "{} {}", e.a, e.b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]);
        let text = to_edge_list(&g);
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g2.node_count(), 5);
        assert_eq!(g2.edges(), g.edges());
    }

    #[test]
    fn roundtrip_trailing_isolated_node() {
        let g = Graph::from_edges(4, vec![(0, 1)]);
        let g2 = parse_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(g2.node_count(), 4);
    }

    #[test]
    fn comments_and_blank_lines() {
        let g = parse_edge_list("# a comment\n\n0 1\n  # another\n1 2\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn nodes_header() {
        let g = parse_edge_list("# nodes: 10\n0 1\n").unwrap();
        assert_eq!(g.node_count(), 10);
    }

    #[test]
    fn bad_line_reports_position() {
        let err = parse_edge_list("0 1\nfoo bar\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::BadLine {
                line: 2,
                content: "foo bar".into()
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("line 2"));
    }

    #[test]
    fn too_many_fields_rejected() {
        assert!(parse_edge_list("0 1 2\n").is_err());
    }

    #[test]
    fn self_loops_and_duplicates_normalized() {
        let g = parse_edge_list("0 0\n0 1\n1 0\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn empty_input() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn load_missing_file_names_the_path() {
        let err = load_edge_list("/nonexistent/topogen-no-such.edges").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.starts_with("/nonexistent/topogen-no-such.edges: "),
            "{msg}"
        );
        assert!(matches!(err, LoadError::Io { .. }));
    }

    #[test]
    fn load_corrupt_file_names_path_and_line() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("topogen-io-test-{}.edges", std::process::id()));
        std::fs::write(&path, "0 1\nnot an edge\n").unwrap();
        let err = load_edge_list(path.to_str().unwrap()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("topogen-io-test"), "{msg}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_edge_free_file_is_an_error() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("topogen-io-empty-{}.edges", std::process::id()));
        std::fs::write(&path, "# just a comment\n").unwrap();
        let err = load_edge_list(path.to_str().unwrap()).unwrap_err();
        assert!(matches!(err, LoadError::Empty { .. }));
        let _ = std::fs::remove_file(&path);
    }
}
