//! Biconnected components and articulation points (iterative Tarjan).
//!
//! The paper's Appendix B (Figure 8(d–f)) plots the number of biconnected
//! components inside balls of growing size, following Zegura et al.'s
//! original biconnectivity analysis \[50\].

use crate::{Graph, NodeId};

/// Result of the biconnectivity analysis.
#[derive(Clone, Debug)]
pub struct Biconnectivity {
    /// Number of biconnected components (edge-sharing equivalence classes;
    /// every bridge is its own component).
    pub component_count: usize,
    /// For each edge (indexed as in [`Graph::edges`]) the biconnected
    /// component it belongs to.
    pub edge_component: Vec<u32>,
    /// Articulation points (cut vertices), sorted.
    pub articulation_points: Vec<NodeId>,
}

/// Compute biconnected components with an iterative DFS (the measured
/// router graph is deep enough to overflow the stack recursively).
pub fn biconnected_components(g: &Graph) -> Biconnectivity {
    let n = g.node_count();
    let m = g.edge_count();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise discovery time + 1
    let mut low = vec![0u32; n];
    let mut is_art = vec![false; n];
    let mut edge_component = vec![u32::MAX; m];
    let mut comp = 0u32;
    let mut timer = 1u32;
    let mut edge_stack: Vec<usize> = Vec::new(); // edge indices

    // Iterative DFS frame: (node, parent, neighbor cursor, child count for root).
    struct Frame {
        v: NodeId,
        parent: NodeId,
        next: usize,
        root_children: usize,
    }

    for start in 0..n as NodeId {
        if disc[start as usize] != 0 {
            continue;
        }
        disc[start as usize] = timer;
        low[start as usize] = timer;
        timer += 1;
        let mut stack = vec![Frame {
            v: start,
            parent: NodeId::MAX,
            next: 0,
            root_children: 0,
        }];
        while let Some(top) = stack.last_mut() {
            let v = top.v;
            let parent = top.parent;
            let neigh = g.neighbors(v);
            if top.next < neigh.len() {
                let w = neigh[top.next];
                top.next += 1;
                if w == parent {
                    // Skip exactly one traversal back to the parent; the
                    // graph is simple so there is exactly one such edge.
                    // Mark parent consumed so parallel logic stays simple.
                    // (Set parent to MAX so a second w==parent can't occur;
                    // in a simple graph it cannot anyway.)
                    top.parent = NodeId::MAX;
                    continue;
                }
                let ei = g.edge_index(v, w).expect("neighbor implies edge");
                if disc[w as usize] == 0 {
                    // Tree edge.
                    edge_stack.push(ei);
                    if parent == NodeId::MAX && stack.len() == 1 {
                        // (root child counting handled on return)
                    }
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push(Frame {
                        v: w,
                        parent: v,
                        next: 0,
                        root_children: 0,
                    });
                } else if disc[w as usize] < disc[v as usize] {
                    // Back edge to an ancestor.
                    edge_stack.push(ei);
                    if disc[w as usize] < low[v as usize] {
                        low[v as usize] = disc[w as usize];
                    }
                }
                // Forward "back edges" to descendants (disc[w] > disc[v])
                // were already handled when the descendant saw v.
            } else {
                // All neighbors of v processed; pop and update parent.
                let frame = stack.pop().unwrap();
                let root = stack.len() == 1;
                if let Some(pf) = stack.last_mut() {
                    let p = pf.v;
                    if low[frame.v as usize] < low[p as usize] {
                        low[p as usize] = low[frame.v as usize];
                    }
                    if root {
                        pf.root_children += 1;
                    }
                    if (!root && low[frame.v as usize] >= disc[p as usize])
                        || (root && pf.root_children > 1)
                    {
                        is_art[p as usize] = true;
                    }
                    if low[frame.v as usize] >= disc[p as usize] {
                        // Pop one biconnected component: all edges pushed
                        // since (and including) tree edge (p, frame.v).
                        let cut = g.edge_index(p, frame.v).expect("tree edge");
                        loop {
                            let e = edge_stack.pop().expect("component edge");
                            edge_component[e] = comp;
                            if e == cut {
                                break;
                            }
                        }
                        comp += 1;
                    }
                }
            }
        }
    }

    let articulation_points = (0..n as NodeId).filter(|&v| is_art[v as usize]).collect();
    Biconnectivity {
        component_count: comp as usize,
        edge_component,
        articulation_points,
    }
}

/// Convenience: just the number of biconnected components.
pub fn biconnected_component_count(g: &Graph) -> usize {
    biconnected_components(g).component_count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_is_one_component() {
        let g = Graph::from_edges(2, vec![(0, 1)]);
        let b = biconnected_components(&g);
        assert_eq!(b.component_count, 1);
        assert!(b.articulation_points.is_empty());
    }

    #[test]
    fn triangle_is_biconnected() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let b = biconnected_components(&g);
        assert_eq!(b.component_count, 1);
        assert!(b.articulation_points.is_empty());
        assert!(b.edge_component.iter().all(|&c| c == 0));
    }

    #[test]
    fn path_every_edge_own_component() {
        let g = Graph::from_edges(5, (0..4).map(|i| (i, i + 1)));
        let b = biconnected_components(&g);
        assert_eq!(b.component_count, 4);
        assert_eq!(b.articulation_points, vec![1, 2, 3]);
    }

    #[test]
    fn bowtie_two_triangles() {
        // Two triangles sharing node 2.
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let b = biconnected_components(&g);
        assert_eq!(b.component_count, 2);
        assert_eq!(b.articulation_points, vec![2]);
        // Edges of the same triangle share a component.
        let c01 = b.edge_component[g.edge_index(0, 1).unwrap()];
        let c12 = b.edge_component[g.edge_index(1, 2).unwrap()];
        let c34 = b.edge_component[g.edge_index(3, 4).unwrap()];
        assert_eq!(c01, c12);
        assert_ne!(c01, c34);
    }

    #[test]
    fn star_center_is_articulation() {
        let g = Graph::from_edges(5, (1..5).map(|i| (0, i)));
        let b = biconnected_components(&g);
        assert_eq!(b.component_count, 4);
        assert_eq!(b.articulation_points, vec![0]);
    }

    #[test]
    fn disconnected_graphs_sum() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]);
        let b = biconnected_components(&g);
        assert_eq!(b.component_count, 3); // triangle + 2 bridges
    }

    #[test]
    fn cycle_is_single_component() {
        let g = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
        let b = biconnected_components(&g);
        assert_eq!(b.component_count, 1);
        assert!(b.articulation_points.is_empty());
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 with tail 2-3.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        let b = biconnected_components(&g);
        assert_eq!(b.component_count, 2);
        assert_eq!(b.articulation_points, vec![2]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        let b = biconnected_components(&g);
        assert_eq!(b.component_count, 0);
        assert!(b.articulation_points.is_empty());
    }

    #[test]
    fn every_edge_assigned() {
        let g = Graph::from_edges(
            8,
            vec![
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
                (6, 7),
            ],
        );
        let b = biconnected_components(&g);
        assert!(b.edge_component.iter().all(|&c| c != u32::MAX));
        // {0,1,2} triangle; (2,3) bridge; {3,4,5} triangle; (5,6) bridge;
        // (6,7) bridge — five biconnected components in total.
        assert_eq!(b.component_count, 5);
    }
}
