//! Breadth-first search primitives.
//!
//! The paper's ball-growing methodology (§3.2.1) is built entirely on
//! hop-count shortest paths: balls of radius `h`, reachable-set sizes per
//! radius (the expansion metric), and — for the hierarchy analysis of §5 —
//! shortest-path counts σ and the shortest-path DAG used to distribute
//! equal-cost traversal weights over links (footnote 27).

use crate::{Graph, NodeId, UNREACHED};
use std::cell::RefCell;
use std::collections::VecDeque;

/// Hop distances from `src` to every node (`UNREACHED` where unreachable).
pub fn distances(g: &Graph, src: NodeId) -> Vec<u32> {
    distances_bounded(g, src, u32::MAX)
}

/// Hop distances from `src`, exploring only up to `max_h` hops.
/// Nodes farther than `max_h` are left `UNREACHED`.
pub fn distances_bounded(g: &Graph, src: NodeId, max_h: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHED; g.node_count()];
    dist[src as usize] = 0;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        if du >= max_h {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Reusable per-worker BFS scratch: an epoch-stamped distance field plus
/// the list of nodes it touched.
///
/// `distances_bounded` allocates (and later scans) a full `n`-sized
/// vector per call, which churns the allocator when large-scale sampled
/// runs grow thousands of radius-bounded balls that each touch only a
/// tiny fraction of the graph. The scratch keeps one distance field per
/// worker alive across calls — same pattern as the hierarchy arena — and
/// invalidates it in O(1) by bumping an epoch, so a bounded BFS costs
/// O(ball) work and zero steady-state allocation.
#[derive(Debug, Default)]
pub struct DistScratch {
    /// `dist[v]` is valid iff `stamp[v] == epoch`.
    stamp: Vec<u32>,
    epoch: u32,
    dist: Vec<u32>,
    touched: Vec<NodeId>,
    queue: VecDeque<NodeId>,
}

impl DistScratch {
    /// A fresh scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run a bounded BFS from `src`, replacing any previous contents.
    /// Nodes farther than `max_h` hops are left untouched.
    pub fn run_bounded(&mut self, g: &Graph, src: NodeId, max_h: u32) {
        let n = g.node_count();
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale stamps could alias the new epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
        self.queue.clear();
        self.stamp[src as usize] = self.epoch;
        self.dist[src as usize] = 0;
        self.touched.push(src);
        self.queue.push_back(src);
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u as usize];
            if du >= max_h {
                continue;
            }
            for &v in g.neighbors(u) {
                if self.stamp[v as usize] != self.epoch {
                    self.stamp[v as usize] = self.epoch;
                    self.dist[v as usize] = du + 1;
                    self.touched.push(v);
                    self.queue.push_back(v);
                }
            }
        }
    }

    /// Distance of `v` in the most recent run (`UNREACHED` if untouched).
    pub fn dist(&self, v: NodeId) -> u32 {
        if self.stamp.get(v as usize) == Some(&self.epoch) {
            self.dist[v as usize]
        } else {
            UNREACHED
        }
    }

    /// Nodes reached by the most recent run, in visitation order
    /// (non-decreasing distance; order within a level is unspecified).
    pub fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    /// Nodes reached by the most recent run, sorted by `(distance, id)`
    /// — the deterministic ball order of [`ball_nodes`].
    pub fn ball_nodes_sorted(&self) -> Vec<NodeId> {
        let mut out = self.touched.clone();
        out.sort_by_key(|&v| (self.dist[v as usize], v));
        out
    }

    /// Counts of nodes at *exactly* each hop distance `0..=max_h` for
    /// the most recent run (which must have been bounded by `max_h`).
    pub fn ring_sizes(&self, max_h: u32) -> Vec<usize> {
        let mut rings = vec![0usize; max_h as usize + 1];
        for &v in &self.touched {
            rings[self.dist[v as usize] as usize] += 1;
        }
        rings
    }
}

thread_local! {
    static SCRATCH: RefCell<DistScratch> = RefCell::new(DistScratch::new());
}

/// Run `f` against this worker thread's shared [`DistScratch`].
pub fn with_scratch<R>(f: impl FnOnce(&mut DistScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Nodes within `h` hops of `src` (including `src`), in BFS order.
pub fn ball_nodes(g: &Graph, src: NodeId, h: u32) -> Vec<NodeId> {
    with_scratch(|s| {
        s.run_bounded(g, src, h);
        // BFS order by distance, ties by id — deterministic.
        s.ball_nodes_sorted()
    })
}

/// For one source, the number of nodes at *exactly* each hop distance
/// `0..=max_h` (index 0 counts the source itself).
pub fn ring_sizes(g: &Graph, src: NodeId, max_h: u32) -> Vec<usize> {
    with_scratch(|s| {
        s.run_bounded(g, src, max_h);
        s.ring_sizes(max_h)
    })
}

/// Eccentricity of `src`: the maximum finite hop distance to any reachable
/// node.
pub fn eccentricity(g: &Graph, src: NodeId) -> u32 {
    distances(g, src)
        .into_iter()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0)
}

/// Result of a full single-source shortest-path analysis: distances, the
/// number of distinct shortest paths σ to each node, and for each node the
/// list of DAG predecessors (neighbors one hop closer to the source).
#[derive(Clone, Debug)]
pub struct ShortestPathDag {
    /// Hop distance from the source (UNREACHED if disconnected).
    pub dist: Vec<u32>,
    /// σ\[v\]: number of distinct shortest paths source→v (saturating; the
    /// count can explode combinatorially on dense graphs, so it is an
    /// `f64` — only *ratios* of σ are ever consumed, per footnote 27).
    pub sigma: Vec<f64>,
    /// Predecessors of each node in the shortest-path DAG.
    pub preds: Vec<Vec<NodeId>>,
    /// Nodes in non-decreasing distance order (valid processing order).
    pub order: Vec<NodeId>,
    /// The source node.
    pub source: NodeId,
}

/// Compute the shortest-path DAG from `src` (Brandes-style forward pass).
pub fn shortest_path_dag(g: &Graph, src: NodeId) -> ShortestPathDag {
    let n = g.node_count();
    let mut dist = vec![UNREACHED; n];
    let mut sigma = vec![0.0f64; n];
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut order = Vec::with_capacity(n);
    dist[src as usize] = 0;
    sigma[src as usize] = 1.0;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        order.push(u);
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            let dv = dist[v as usize];
            if dv == UNREACHED {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
            if dist[v as usize] == du + 1 {
                sigma[v as usize] += sigma[u as usize];
                preds[v as usize].push(u);
            }
        }
    }
    ShortestPathDag {
        dist,
        sigma,
        preds,
        order,
        source: src,
    }
}

/// Average shortest-path length over all connected ordered pairs, computed
/// by running BFS from every node in `sources` (pass all nodes for the
/// exact value, or a sample for an estimate). Returns `None` when no pair
/// is connected.
pub fn average_path_length(g: &Graph, sources: &[NodeId]) -> Option<f64> {
    let mut total = 0u64;
    let mut pairs = 0u64;
    for &s in sources {
        for &d in &distances(g, s) {
            if d != UNREACHED && d > 0 {
                total += d as u64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3-4.
    fn path5() -> Graph {
        Graph::from_edges(5, (0..4).map(|i| (i, i + 1)))
    }

    #[test]
    fn distances_on_path() {
        let g = path5();
        assert_eq!(distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bounded_distances() {
        let g = path5();
        let d = distances_bounded(&g, 0, 2);
        assert_eq!(d, vec![0, 1, 2, UNREACHED, UNREACHED]);
    }

    #[test]
    fn disconnected_unreached() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let d = distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHED);
        assert_eq!(d[3], UNREACHED);
    }

    #[test]
    fn ball_nodes_radius() {
        let g = path5();
        assert_eq!(ball_nodes(&g, 2, 0), vec![2]);
        assert_eq!(ball_nodes(&g, 2, 1), vec![2, 1, 3]);
        assert_eq!(ball_nodes(&g, 0, 10), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_sizes_on_star() {
        let g = Graph::from_edges(5, (1..5).map(|i| (0, i)));
        assert_eq!(ring_sizes(&g, 0, 2), vec![1, 4, 0]);
        assert_eq!(ring_sizes(&g, 1, 2), vec![1, 1, 3]);
    }

    #[test]
    fn scratch_matches_fresh_allocation_across_reuse() {
        let g = path5();
        let star = Graph::from_edges(5, (1..5).map(|i| (0, i)));
        let mut s = DistScratch::new();
        // Interleave graphs and bounds to exercise epoch invalidation.
        for round in 0..3 {
            for src in 0..5u32 {
                for max_h in [0, 1, 2, u32::MAX] {
                    for g in [&g, &star] {
                        s.run_bounded(g, src, max_h);
                        let oracle = distances_bounded(g, src, max_h);
                        for v in 0..5u32 {
                            assert_eq!(
                                s.dist(v),
                                oracle[v as usize],
                                "round {round} src {src} max_h {max_h} v {v}"
                            );
                        }
                        let mut reached: Vec<NodeId> = oracle
                            .iter()
                            .enumerate()
                            .filter(|(_, &d)| d != UNREACHED)
                            .map(|(i, _)| i as NodeId)
                            .collect();
                        reached.sort_by_key(|&v| (oracle[v as usize], v));
                        assert_eq!(s.ball_nodes_sorted(), reached);
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_epoch_wrap_resets_stamps() {
        let g = path5();
        let mut s = DistScratch::new();
        s.run_bounded(&g, 0, u32::MAX);
        // Force the wrap path: the next bump lands on 0 and must clear.
        s.epoch = u32::MAX;
        s.run_bounded(&g, 4, 1);
        assert_eq!(s.dist(4), 0);
        assert_eq!(s.dist(3), 1);
        assert_eq!(s.dist(0), UNREACHED);
    }

    #[test]
    fn eccentricity_values() {
        let g = path5();
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
        let iso = Graph::empty(3);
        assert_eq!(eccentricity(&iso, 0), 0);
    }

    #[test]
    fn sigma_counts_equal_cost_paths() {
        // 4-cycle: two shortest paths between opposite corners.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let dag = shortest_path_dag(&g, 0);
        assert_eq!(dag.dist, vec![0, 1, 2, 1]);
        assert_eq!(dag.sigma[2], 2.0);
        assert_eq!(dag.sigma[1], 1.0);
        let mut preds2 = dag.preds[2].clone();
        preds2.sort_unstable();
        assert_eq!(preds2, vec![1, 3]);
    }

    #[test]
    fn dag_order_is_by_distance() {
        let g = path5();
        let dag = shortest_path_dag(&g, 0);
        let ds: Vec<u32> = dag.order.iter().map(|&v| dag.dist[v as usize]).collect();
        assert!(ds.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(dag.order.len(), 5);
    }

    #[test]
    fn apl_on_path() {
        let g = path5();
        let nodes: Vec<NodeId> = g.nodes().collect();
        // Sum over ordered pairs of |i-j| = 2*(4*1+3*2+2*3+1*4)=40; pairs=20.
        assert_eq!(average_path_length(&g, &nodes), Some(2.0));
    }

    #[test]
    fn apl_disconnected_none() {
        let g = Graph::empty(3);
        let nodes: Vec<NodeId> = g.nodes().collect();
        assert_eq!(average_path_length(&g, &nodes), None);
    }

    #[test]
    fn grid_sigma() {
        // 3x3 grid; paths from corner (0) to opposite corner (8):
        // number of monotone lattice paths = C(4,2) = 6.
        let mut edges = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = r * 3 + c;
                if c + 1 < 3 {
                    edges.push((v, v + 1));
                }
                if r + 1 < 3 {
                    edges.push((v, v + 3));
                }
            }
        }
        let g = Graph::from_edges(9, edges);
        let dag = shortest_path_dag(&g, 0);
        assert_eq!(dag.dist[8], 4);
        assert_eq!(dag.sigma[8], 6.0);
    }
}
