//! Connected components and largest-component extraction.
//!
//! Several generators in the paper (PLRG in particular, see footnote 6;
//! Waxman under extreme geographic bias, §4.4) can produce disconnected
//! graphs; the paper always analyzes the largest connected component.

use crate::subgraph::{induced_subgraph, SubgraphMap};
use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Component labeling: `label[v]` is the component index of `v` and
/// `sizes[c]` the size of component `c`. Components are numbered in
/// discovery order of their smallest node.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component index per node.
    pub label: Vec<u32>,
    /// Size (node count) per component.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Index of the largest component (ties broken by lowest index).
    pub fn largest(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, usize::MAX - i))
            .map(|(i, _)| i as u32)
    }

    /// Whether the graph is connected (and non-empty).
    pub fn is_connected(&self) -> bool {
        self.count() == 1
    }
}

/// Label connected components via BFS.
pub fn components(g: &Graph) -> Components {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut q = VecDeque::new();
    for s in 0..n as NodeId {
        if label[s as usize] != u32::MAX {
            continue;
        }
        let c = sizes.len() as u32;
        let mut size = 0usize;
        label[s as usize] = c;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = c;
                    q.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { label, sizes }
}

/// Whether `g` is connected. The empty graph is vacuously connected; a
/// graph with ≥2 nodes and no path between some pair is not.
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() <= 1 || components(g).is_connected()
}

/// Extract the largest connected component as a new graph, together with
/// the node mapping back to the original ids.
pub fn largest_component(g: &Graph) -> (Graph, SubgraphMap) {
    let comps = components(g);
    match comps.largest() {
        None => (Graph::empty(0), SubgraphMap::empty()),
        Some(c) => {
            let keep: Vec<NodeId> = (0..g.node_count() as NodeId)
                .filter(|&v| comps.label[v as usize] == c)
                .collect();
            induced_subgraph(g, &keep)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let c = components(&g);
        assert_eq!(c.count(), 1);
        assert!(c.is_connected());
        assert_eq!(c.sizes, vec![4]);
        assert!(is_connected(&g));
    }

    #[test]
    fn two_components_and_isolated() {
        let g = Graph::from_edges(5, vec![(0, 1), (2, 3)]);
        let c = components(&g);
        assert_eq!(c.count(), 3); // {0,1}, {2,3}, {4}
        assert_eq!(c.sizes, vec![2, 2, 1]);
        assert_eq!(c.largest(), Some(0)); // tie broken by lowest index
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_and_singleton_connected() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn largest_component_extraction() {
        // Triangle {0,1,2} plus edge {3,4} plus isolated 5.
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (2, 0), (3, 4)]);
        let (lcc, map) = largest_component(&g);
        assert_eq!(lcc.node_count(), 3);
        assert_eq!(lcc.edge_count(), 3);
        let originals: Vec<NodeId> = (0..3).map(|v| map.to_original(v)).collect();
        assert_eq!(originals, vec![0, 1, 2]);
    }

    #[test]
    fn largest_component_of_empty() {
        let (lcc, _) = largest_component(&Graph::empty(0));
        assert_eq!(lcc.node_count(), 0);
    }

    #[test]
    fn labels_partition_nodes() {
        let g = Graph::from_edges(7, vec![(0, 1), (2, 3), (3, 4), (5, 6)]);
        let c = components(&g);
        let total: usize = c.sizes.iter().sum();
        assert_eq!(total, 7);
        for v in 0..7 {
            assert!((c.label[v] as usize) < c.count());
        }
        // Nodes in the same edge share a label.
        for e in g.edges() {
            assert_eq!(c.label[e.a as usize], c.label[e.b as usize]);
        }
    }
}
