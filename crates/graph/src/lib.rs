//! # topogen-graph
//!
//! Undirected simple-graph substrate for the reproduction of
//! *"Network Topology Generators: Degree-Based vs. Structural"*
//! (Tangmunarunkit, Govindan, Jamin, Shenker, Willinger — SIGCOMM 2002).
//!
//! Everything in the paper — generators, ball-growing metrics, policy
//! routing, and the hierarchy analysis — operates on plain undirected
//! simple graphs (the paper explicitly discards self-loops and duplicate
//! links produced by generators such as PLRG, see its footnote 6). This
//! crate provides that substrate:
//!
//! * [`Graph`] — an immutable compressed-sparse-row (CSR) undirected simple
//!   graph, built through [`GraphBuilder`] which deduplicates multi-edges
//!   and drops self-loops.
//! * [`bfs`] — breadth-first distance fields, hop-bounded balls, shortest
//!   path counting (σ) and shortest-path DAGs for traversal-set analysis.
//! * [`bfs_bitset`] — batched bitset BFS kernels (direction-optimizing
//!   single-source + 64-lane multi-source) for large sampled-center runs,
//!   bit-identical to the [`bfs`] oracle.
//! * [`components`] — connected components and largest-component
//!   extraction (the paper analyzes the largest connected component of
//!   every generated graph).
//! * [`bicon`] — Tarjan biconnected components and articulation points
//!   (Appendix B, Figure 8(d–f)).
//! * [`subgraph`] — induced subgraphs and *balls* of radius `h`, the unit
//!   of the paper's ball-growing methodology (§3.2.1).
//! * [`tree`] — rooted-tree utilities (LCA, tree distance) used by the
//!   distortion metric.
//! * [`geometry`] — points in the unit square and Euclidean MSTs used by
//!   the Waxman and Tiers generators.
//! * [`flow`] — unit-capacity max flow (Menger cross-checks and the
//!   footnote-22 center-to-surface flow metric).
//! * [`prune`] — recursive degree-1 pruning ("core" extraction, the
//!   paper's footnote 29).
//! * [`stream`] — memory-budgeted streaming CSR construction: generators
//!   emit through an [`stream::EdgeSink`], spilling sorted runs to disk
//!   and k-way merging when over budget (the xl-tier build path).
//! * [`apsp`] — all-pairs shortest paths over small subgraphs.
//! * [`io`] — a tiny edge-list interchange format.
//!
//! The crate is dependency-free and deterministic; all randomness lives in
//! the generator crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apsp;
pub mod bfs;
pub mod bfs_bitset;
pub mod bicon;
pub mod components;
pub mod flow;
pub mod geometry;
mod graph;
pub mod io;
pub mod prune;
pub mod stream;
pub mod subgraph;
pub mod tree;
pub mod unionfind;

pub use graph::{Edge, Graph, GraphBuilder, NodeId};

/// Sentinel distance meaning "unreached" in BFS distance fields.
pub const UNREACHED: u32 = u32::MAX;
