//! Batched bitset BFS kernels for large sampled-center runs.
//!
//! The paper's ball-growing methodology samples centers on large graphs
//! (§3.2.1: "a sufficiently large number of randomly chosen nodes"), and
//! at router-level scale (~170k nodes) the per-center adjacency-list BFS
//! in [`crate::bfs`] becomes the hot path. This module provides two
//! denser kernels over the same CSR adjacency:
//!
//! * A **single-source** bounded BFS ([`BitsetScratch::run_bounded`])
//!   whose visited set is a `u64`-word bitset and which switches between
//!   classic top-down frontier expansion and Beamer-style bottom-up
//!   pulls (scan unvisited nodes, probe their neighbors against a
//!   frontier bitset) when the frontier grows past `2m/α` edges — the
//!   dense small-diameter regime where top-down rescans most of the
//!   edge set per level.
//! * A **multi-source** kernel ([`multi_source_ring_counts`]) advancing
//!   up to 64 sources per pass: each node carries a `u64` lane mask (bit
//!   `k` = "source `k` has reached this node"), and one frontier
//!   expansion ORs whole lane words across edges (`next[u] |= front[v]`,
//!   `new = next & !visited`), so 64 expansion-source traversals cost
//!   one sweep. The multi-source kernel is deliberately top-down only:
//!   bottom-up's payoff is the early exit on the first frontier
//!   neighbor, and with 64 independent lanes a node almost never
//!   completes all lanes on its first probe, while the lane-parallel
//!   top-down sweep already caps per-level work at one word-op per
//!   frontier edge.
//!
//! Both kernels produce exactly the distances of the scalar oracle
//! (hop-count BFS levels are unique), so every downstream aggregate —
//! ring sizes, ball memberships sorted by `(distance, id)`, and the
//! L/H-signature curves — is bit-identical to the scalar path. Only
//! visitation *order* within a level is unspecified.
//!
//! [`KernelPolicy`] + [`select_kernel`] hold the engine-facing heuristic
//! for choosing between the scalar and bitset paths, so the batch CLI
//! and the serve daemon share one instrumented decision point.

use crate::{Graph, NodeId, UNREACHED};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which BFS kernel the metrics engine should use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelPolicy {
    /// Decide per plan from graph size, density, and centers requested
    /// (see [`select_kernel`]).
    #[default]
    Auto,
    /// Always the per-center scalar BFS (the PR-1 engine path).
    Scalar,
    /// Always the batched bitset kernels.
    Bitset,
}

impl KernelPolicy {
    /// Parse a CLI tag (`auto` / `scalar` / `bitset`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(KernelPolicy::Auto),
            "scalar" => Some(KernelPolicy::Scalar),
            "bitset" => Some(KernelPolicy::Bitset),
            _ => None,
        }
    }

    /// The CLI/trace tag for this policy.
    pub fn tag(self) -> &'static str {
        match self {
            KernelPolicy::Auto => "auto",
            KernelPolicy::Scalar => "scalar",
            KernelPolicy::Bitset => "bitset",
        }
    }
}

/// Process-default kernel policy (what `RunCtx::ambient()` picks up);
/// set once by the CLI from `--kernel`, defaults to [`KernelPolicy::Auto`].
static DEFAULT_POLICY: AtomicU8 = AtomicU8::new(0);

/// Set the process-default kernel policy.
pub fn set_default_policy(p: KernelPolicy) {
    let v = match p {
        KernelPolicy::Auto => 0,
        KernelPolicy::Scalar => 1,
        KernelPolicy::Bitset => 2,
    };
    DEFAULT_POLICY.store(v, Ordering::Relaxed);
}

/// Read the process-default kernel policy.
pub fn default_policy() -> KernelPolicy {
    match DEFAULT_POLICY.load(Ordering::Relaxed) {
        1 => KernelPolicy::Scalar,
        2 => KernelPolicy::Bitset,
        _ => KernelPolicy::Auto,
    }
}

/// The kernel actually selected for one plan run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    /// Per-center scalar BFS.
    Scalar,
    /// Batched bitset kernels.
    Bitset,
}

impl KernelChoice {
    /// The trace/report tag for this choice.
    pub fn tag(self) -> &'static str {
        match self {
            KernelChoice::Scalar => "scalar",
            KernelChoice::Bitset => "bitset",
        }
    }
}

/// `Auto` switches to the bitset kernels at this node count.
pub const AUTO_MIN_NODES: usize = 8192;
/// …or at this node count when the graph is dense (avg degree ≥ 32),
/// where per-level edge rescans make the direction switch pay earlier.
pub const AUTO_MIN_NODES_DENSE: usize = 2048;

/// Pick the kernel for a plan over a graph with `n` nodes and `m`
/// (undirected) edges, serving `centers` total sampled centers.
///
/// The `Auto` heuristic is deliberately coarse and fully deterministic:
/// the bitset path pays off once bitmap sweeps amortize over enough
/// nodes (`n ≥ 8192`, or `n ≥ 2048` on dense graphs where `m/n ≥ 16`)
/// and at least two centers share the batched setup. Everything at the
/// calibration scales (`Scale::Small`, ≤ ~1.5k nodes) therefore keeps
/// the scalar path — and its archived byte-identical outputs — while
/// paper-RL-sized runs (~170k) get the kernels.
pub fn select_kernel(policy: KernelPolicy, n: usize, m: usize, centers: usize) -> KernelChoice {
    match policy {
        KernelPolicy::Scalar => KernelChoice::Scalar,
        KernelPolicy::Bitset => KernelChoice::Bitset,
        KernelPolicy::Auto => {
            let min_n = if m >= n.saturating_mul(16) {
                AUTO_MIN_NODES_DENSE
            } else {
                AUTO_MIN_NODES
            };
            if n >= min_n && centers >= 2 {
                KernelChoice::Bitset
            } else {
                KernelChoice::Scalar
            }
        }
    }
}

/// Deterministic work counters for the bitset kernels: `u64` words
/// touched by bitmap sweeps/probes and frontier passes executed. Counts
/// depend only on the graph and the sources, never on thread count or
/// timing, so they can feed the ratcheting perf gate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BfsStats {
    /// Bitset words read or written.
    pub words_scanned: u64,
    /// Level-synchronous frontier passes executed.
    pub frontier_passes: u64,
}

impl BfsStats {
    /// Sum another kernel invocation's counters into this one.
    pub fn merge(&mut self, other: &BfsStats) {
        self.words_scanned += other.words_scanned;
        self.frontier_passes += other.frontier_passes;
    }
}

/// Frontier edges must exceed `2m/ALPHA` before a level runs bottom-up
/// (Beamer's α; the conventional value for direction-optimizing BFS).
const ALPHA: u64 = 14;

/// Reusable single-source bitset BFS state: one visited bitmap, one
/// frontier bitmap (materialized only for bottom-up levels), a distance
/// field valid where the visited bit is set, and the touched-node list.
///
/// Like [`crate::bfs::DistScratch`] this lives per worker thread and is
/// reused across centers, so steady-state cost is O(ball + n/64) per
/// BFS with zero allocation.
#[derive(Debug, Default)]
pub struct BitsetScratch {
    /// Visited bitmap; `dist[v]` is valid iff bit `v` is set.
    visited: Vec<u64>,
    /// Frontier bitmap, nonzero only inside a bottom-up level.
    front_bits: Vec<u64>,
    dist: Vec<u32>,
    front: Vec<NodeId>,
    next: Vec<NodeId>,
    touched: Vec<NodeId>,
}

impl BitsetScratch {
    /// A fresh scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run a bounded direction-optimizing BFS from `src`, replacing any
    /// previous contents. Nodes farther than `max_h` hops are left
    /// unvisited. Work counters accumulate into `stats`.
    pub fn run_bounded(&mut self, g: &Graph, src: NodeId, max_h: u32, stats: &mut BfsStats) {
        let n = g.node_count();
        let words = n.div_ceil(64);
        if self.visited.len() < words {
            self.visited.resize(words, 0);
            self.front_bits.resize(words, 0);
        }
        self.visited[..words].fill(0);
        if self.dist.len() < n {
            self.dist.resize(n, 0);
        }
        self.touched.clear();
        self.front.clear();
        self.next.clear();

        self.visited[src as usize / 64] |= 1u64 << (src % 64);
        self.dist[src as usize] = 0;
        self.touched.push(src);
        self.front.push(src);
        stats.words_scanned += 1;

        let m2 = 2 * g.edge_count() as u64; // directed edge endpoints
        let mut level = 1u32;
        while !self.front.is_empty() && level <= max_h {
            let frontier_edges: u64 = self
                .front
                .iter()
                .map(|&u| g.neighbors(u).len() as u64)
                .sum();
            self.next.clear();
            if frontier_edges * ALPHA > m2 {
                // Bottom-up: scan unvisited nodes, probe their
                // neighbors against the frontier bitmap, stop at the
                // first hit.
                for &u in &self.front {
                    self.front_bits[u as usize / 64] |= 1u64 << (u % 64);
                }
                let mut probes = 0u64;
                for w in 0..words {
                    let mut unvis = !self.visited[w];
                    if w == words - 1 && !n.is_multiple_of(64) {
                        unvis &= (1u64 << (n % 64)) - 1;
                    }
                    while unvis != 0 {
                        let b = unvis.trailing_zeros();
                        unvis &= unvis - 1;
                        let v = (w * 64 + b as usize) as NodeId;
                        for &nb in g.neighbors(v) {
                            probes += 1;
                            if self.front_bits[nb as usize / 64] & (1u64 << (nb % 64)) != 0 {
                                self.visited[w] |= 1u64 << b;
                                self.dist[v as usize] = level;
                                self.touched.push(v);
                                self.next.push(v);
                                break;
                            }
                        }
                    }
                }
                for &u in &self.front {
                    self.front_bits[u as usize / 64] = 0;
                }
                stats.words_scanned += words as u64 + probes + 2 * self.front.len() as u64;
            } else {
                // Top-down: expand the frontier list, one visited-word
                // probe per edge.
                for &u in &self.front {
                    for &v in g.neighbors(u) {
                        let w = v as usize / 64;
                        let bit = 1u64 << (v % 64);
                        if self.visited[w] & bit == 0 {
                            self.visited[w] |= bit;
                            self.dist[v as usize] = level;
                            self.touched.push(v);
                            self.next.push(v);
                        }
                    }
                }
                stats.words_scanned += frontier_edges;
            }
            stats.frontier_passes += 1;
            std::mem::swap(&mut self.front, &mut self.next);
            level += 1;
        }
    }

    /// Distance of `v` in the most recent run (`UNREACHED` if unvisited).
    pub fn dist(&self, v: NodeId) -> u32 {
        let w = v as usize / 64;
        if self
            .visited
            .get(w)
            .is_some_and(|word| word & (1u64 << (v % 64)) != 0)
        {
            self.dist[v as usize]
        } else {
            UNREACHED
        }
    }

    /// Nodes reached by the most recent run, in visitation order
    /// (non-decreasing distance; order within a level is unspecified).
    pub fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    /// Nodes reached by the most recent run, sorted by `(distance, id)`
    /// — the deterministic ball order of [`crate::bfs::ball_nodes`].
    pub fn ball_nodes_sorted(&self) -> Vec<NodeId> {
        let mut out = self.touched.clone();
        out.sort_by_key(|&v| (self.dist[v as usize], v));
        out
    }

    /// Counts of nodes at *exactly* each hop distance `0..=max_h` for
    /// the most recent run (which must have been bounded by `max_h`).
    pub fn ring_sizes(&self, max_h: u32) -> Vec<usize> {
        let mut rings = vec![0usize; max_h as usize + 1];
        for &v in &self.touched {
            rings[self.dist[v as usize] as usize] += 1;
        }
        rings
    }
}

/// Bounded single-source distances via the bitset kernel, as a full
/// distance field (`UNREACHED` where unvisited) — the drop-in
/// equivalent of [`crate::bfs::distances_bounded`] for differential
/// tests and one-off callers.
pub fn distances_bounded(g: &Graph, src: NodeId, max_h: u32, stats: &mut BfsStats) -> Vec<u32> {
    let mut s = BitsetScratch::new();
    s.run_bounded(g, src, max_h, stats);
    let mut out = vec![UNREACHED; g.node_count()];
    for &v in s.touched() {
        out[v as usize] = s.dist[v as usize];
    }
    out
}

/// Maximum sources per multi-source pass (one bit-lane each).
pub const MAX_LANES: usize = 64;

/// Ring sizes (node counts at *exactly* each hop distance `0..=max_h`)
/// for up to [`MAX_LANES`] sources in one batched traversal.
///
/// Returns one `max_h + 1`-length counts vector per source, in source
/// order — exactly what [`crate::bfs::ring_sizes`] returns per source,
/// at one lane-parallel frontier sweep per level instead of one BFS per
/// source. Prefix-summing a row yields the expansion metric's
/// cumulative reachable-set sizes.
///
/// # Panics
/// Panics if `sources.len() > 64`.
pub fn multi_source_ring_counts(
    g: &Graph,
    sources: &[NodeId],
    max_h: u32,
    stats: &mut BfsStats,
) -> Vec<Vec<usize>> {
    assert!(
        sources.len() <= MAX_LANES,
        "at most {MAX_LANES} sources per pass, got {}",
        sources.len()
    );
    let n = g.node_count();
    let lanes = sources.len();
    let mut rings = vec![vec![0usize; max_h as usize + 1]; lanes];
    if lanes == 0 {
        return rings;
    }

    // Per-node lane masks: bit k set in visited[v] = source k reached v.
    let mut visited = vec![0u64; n];
    let mut front = vec![0u64; n];
    let mut next = vec![0u64; n];
    let mut front_nodes: Vec<NodeId> = Vec::new();
    let mut next_nodes: Vec<NodeId> = Vec::new();

    for (k, &s) in sources.iter().enumerate() {
        if front[s as usize] == 0 {
            front_nodes.push(s);
        }
        visited[s as usize] |= 1u64 << k;
        front[s as usize] |= 1u64 << k;
        rings[k][0] += 1;
    }
    stats.words_scanned += lanes as u64;

    let mut level = 1u32;
    while !front_nodes.is_empty() && level <= max_h {
        next_nodes.clear();
        let mut edge_words = 0u64;
        for &v in &front_nodes {
            let f = front[v as usize];
            for &u in g.neighbors(v) {
                if next[u as usize] == 0 {
                    next_nodes.push(u);
                }
                next[u as usize] |= f;
            }
            edge_words += g.neighbors(v).len() as u64;
        }
        for &v in &front_nodes {
            front[v as usize] = 0;
        }
        front_nodes.clear();
        for &u in &next_nodes {
            let new = next[u as usize] & !visited[u as usize];
            next[u as usize] = 0;
            if new != 0 {
                visited[u as usize] |= new;
                front[u as usize] = new;
                front_nodes.push(u);
                let mut bits = new;
                while bits != 0 {
                    let k = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    rings[k][level as usize] += 1;
                }
            }
        }
        // `front_nodes` was cleared above and now holds the new
        // frontier; `next_nodes` is free scratch for the next level.
        stats.words_scanned += edge_words + 3 * next_nodes.len() as u64;
        stats.frontier_passes += 1;
        level += 1;
    }
    rings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;

    fn path5() -> Graph {
        Graph::from_edges(5, (0..4).map(|i| (i, i + 1)))
    }

    /// A small graph mixing a dense clique (to trip bottom-up) with a
    /// pendant path and an isolated node.
    fn mixed() -> Graph {
        let mut edges = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                edges.push((a, b));
            }
        }
        edges.extend([(7, 8), (8, 9), (9, 10)]);
        Graph::from_edges(12, edges)
    }

    #[test]
    fn single_source_matches_scalar_oracle() {
        for g in [path5(), mixed()] {
            let mut stats = BfsStats::default();
            for src in 0..g.node_count() as NodeId {
                for max_h in [0, 1, 2, 3, u32::MAX] {
                    let got = distances_bounded(&g, src, max_h, &mut stats);
                    let want = bfs::distances_bounded(&g, src, max_h);
                    assert_eq!(got, want, "src {src} max_h {max_h}");
                }
            }
            assert!(stats.words_scanned > 0);
            assert!(stats.frontier_passes > 0);
        }
    }

    #[test]
    fn scratch_reuse_and_ball_order_match_oracle() {
        let g = mixed();
        let mut s = BitsetScratch::new();
        let mut stats = BfsStats::default();
        for src in [0u32, 7, 8, 11] {
            for max_h in [1, 2, u32::MAX] {
                s.run_bounded(&g, src, max_h, &mut stats);
                assert_eq!(s.ball_nodes_sorted(), bfs::ball_nodes(&g, src, max_h));
                if max_h != u32::MAX {
                    assert_eq!(s.ring_sizes(max_h), bfs::ring_sizes(&g, src, max_h));
                }
            }
        }
    }

    #[test]
    fn multi_source_rings_match_per_source_scalar() {
        let g = mixed();
        let sources: Vec<NodeId> = vec![0, 5, 8, 11, 0]; // duplicate lane is fine
        let mut stats = BfsStats::default();
        let rings = multi_source_ring_counts(&g, &sources, 4, &mut stats);
        for (k, &s) in sources.iter().enumerate() {
            assert_eq!(rings[k], bfs::ring_sizes(&g, s, 4), "lane {k} source {s}");
        }
        assert!(stats.frontier_passes > 0);
    }

    #[test]
    fn multi_source_full_64_lanes() {
        let g = mixed();
        let sources: Vec<NodeId> = (0..64).map(|i| (i % g.node_count()) as NodeId).collect();
        let mut stats = BfsStats::default();
        let rings = multi_source_ring_counts(&g, &sources, 3, &mut stats);
        for (k, &s) in sources.iter().enumerate() {
            assert_eq!(rings[k], bfs::ring_sizes(&g, s, 3), "lane {k}");
        }
    }

    #[test]
    fn multi_source_empty_and_zero_radius() {
        let g = path5();
        let mut stats = BfsStats::default();
        assert!(multi_source_ring_counts(&g, &[], 3, &mut stats).is_empty());
        let rings = multi_source_ring_counts(&g, &[2], 0, &mut stats);
        assert_eq!(rings, vec![vec![1]]);
    }

    #[test]
    fn auto_heuristic_thresholds() {
        use KernelPolicy::{Auto, Bitset, Scalar};
        let pick = |p, n, m, c| select_kernel(p, n, m, c) == KernelChoice::Bitset;
        // Forced policies ignore the shape.
        assert!(!pick(Scalar, 1 << 20, 1 << 22, 64));
        assert!(pick(Bitset, 10, 9, 1));
        // Auto: small stays scalar, large goes bitset.
        assert!(!pick(Auto, 1500, 3000, 42));
        assert!(pick(Auto, 8192, 16000, 42));
        // Dense graphs flip earlier…
        assert!(pick(Auto, 4096, 4096 * 16, 42));
        assert!(!pick(Auto, 4096, 4096 * 4, 42));
        // …and a single center never pays for batch setup.
        assert!(!pick(Auto, 1 << 20, 1 << 22, 1));
    }

    #[test]
    fn default_policy_roundtrip() {
        assert_eq!(KernelPolicy::parse("auto"), Some(KernelPolicy::Auto));
        assert_eq!(KernelPolicy::parse("scalar"), Some(KernelPolicy::Scalar));
        assert_eq!(KernelPolicy::parse("bitset"), Some(KernelPolicy::Bitset));
        assert_eq!(KernelPolicy::parse("simd"), None);
        assert_eq!(KernelPolicy::Bitset.tag(), "bitset");
        // Global default: exercise set/get and restore Auto for other
        // tests in this binary.
        set_default_policy(KernelPolicy::Scalar);
        assert_eq!(default_policy(), KernelPolicy::Scalar);
        set_default_policy(KernelPolicy::Auto);
        assert_eq!(default_policy(), KernelPolicy::Auto);
    }

    #[test]
    fn stats_merge_sums() {
        let mut a = BfsStats {
            words_scanned: 3,
            frontier_passes: 1,
        };
        a.merge(&BfsStats {
            words_scanned: 4,
            frontier_passes: 2,
        });
        assert_eq!(a.words_scanned, 7);
        assert_eq!(a.frontier_passes, 3);
    }
}
