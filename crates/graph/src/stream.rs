//! Memory-budgeted streaming CSR construction.
//!
//! Generators normally accumulate their full raw edge list in a
//! [`GraphBuilder`] before the sort/dedup/CSR pass — at the xl tier
//! (~1M nodes, millions of raw edges with duplicates) that transient
//! buffer dominates peak memory. [`StreamingBuilder`] bounds it:
//! edges stream through a fixed-capacity buffer that, when full, is
//! sorted, deduplicated, and spilled to a binary *run* file under a
//! scratch directory; [`StreamingBuilder::build`] k-way-merges the
//! sorted runs (deduplicating across runs on the fly) straight into
//! the CSR constructor.
//!
//! The budget bounds the builder's *construction scratch* — the edge
//! buffer while filling, and the merge read buffers while draining —
//! not the finished CSR (which is the output, sized by the graph).
//! Both builders implement [`EdgeSink`], and generators emit through
//! that trait from a single code path, so the streamed graph is
//! **identical** to the in-memory one by construction: same RNG
//! consumption, same normalization, and sort+dedup is order-independent.
//!
//! The crate stays dependency-free: the builder *returns* its
//! [`StreamStats`]; callers that hold an instrument report them (the
//! same convention as [`crate::bfs_bitset::BfsStats`]).

use crate::graph::{Edge, Graph, GraphBuilder, NodeId};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A consumer of generator-emitted edges. Implemented by the plain
/// in-memory [`GraphBuilder`] and the spilling [`StreamingBuilder`];
/// generator `*_into` functions are generic over it so both paths share
/// one body (and therefore one RNG consumption order).
pub trait EdgeSink {
    /// Grow the node set to at least `n` nodes.
    fn ensure_nodes(&mut self, n: usize);
    /// Add an undirected edge (self-loops dropped, duplicates collapsed
    /// at build time).
    fn add_edge(&mut self, u: NodeId, v: NodeId);
}

impl EdgeSink for GraphBuilder {
    fn ensure_nodes(&mut self, n: usize) {
        GraphBuilder::ensure_nodes(self, n);
    }

    fn add_edge(&mut self, u: NodeId, v: NodeId) {
        GraphBuilder::add_edge(self, u, v);
    }
}

/// Process-wide default construction budget in bytes (0 = unbounded).
/// Mirrors [`crate::bfs_bitset`]'s default-policy plumbing: the CLI sets
/// it once from `--mem-budget`, and every subsequent topology build —
/// including cache-miss rebuilds deep inside the store — picks it up
/// without threading a parameter through every call site.
static DEFAULT_BUDGET: AtomicU64 = AtomicU64::new(0);

/// Set (or clear, with `None`) the process-wide construction budget.
pub fn set_default_budget(bytes: Option<u64>) {
    DEFAULT_BUDGET.store(bytes.unwrap_or(0), Ordering::Relaxed);
}

/// The process-wide construction budget, if one is set.
pub fn default_budget() -> Option<u64> {
    match DEFAULT_BUDGET.load(Ordering::Relaxed) {
        0 => None,
        b => Some(b),
    }
}

/// Construction-scratch accounting for one streamed build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Peak construction-scratch bytes: the larger of the fill-time edge
    /// buffer and the merge-time read buffers.
    pub peak_bytes: u64,
    /// Sorted runs spilled to disk (0 when the build fit in the buffer).
    pub spill_runs: u64,
    /// Edges written across all spilled runs (post per-run dedup).
    pub spilled_edges: u64,
}

/// Distinguishes concurrent builders' run files within one process.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// A [`GraphBuilder`] work-alike whose transient edge buffer is bounded
/// by a byte budget, spilling sorted runs to `dir` and merging them at
/// [`build`](Self::build) time. See the module docs for the contract.
#[derive(Debug)]
pub struct StreamingBuilder {
    n: usize,
    buf: Vec<Edge>,
    /// Edges held in memory before a spill.
    cap: usize,
    /// Per-run merge read-buffer bytes (budget's other half).
    merge_budget: u64,
    dir: PathBuf,
    runs: Vec<PathBuf>,
    self_loops_dropped: usize,
    stats: StreamStats,
}

/// Smallest usable in-memory run (edges); below this, spill churn
/// would dominate and tiny budgets would thrash.
const MIN_RUN_EDGES: usize = 1024;

impl StreamingBuilder {
    /// A builder for `n` isolated nodes spilling under `dir` when the
    /// construction scratch would exceed `budget_bytes` (`None` =
    /// unbounded: never spills, equivalent to [`GraphBuilder`]).
    pub fn new(n: usize, budget_bytes: Option<u64>, dir: &Path) -> Self {
        let edge = std::mem::size_of::<Edge>() as u64;
        let (cap, merge_budget) = match budget_bytes {
            None => (usize::MAX, u64::MAX),
            Some(b) => {
                // Half the budget buys the fill buffer, half the merge
                // readers; both clamped to a usable floor.
                let half = b / 2;
                let cap = ((half / edge) as usize).max(MIN_RUN_EDGES);
                (cap, half.max((MIN_RUN_EDGES as u64) * edge))
            }
        };
        StreamingBuilder {
            n,
            buf: Vec::new(),
            cap,
            merge_budget,
            dir: dir.to_path_buf(),
            runs: Vec::new(),
            self_loops_dropped: 0,
            stats: StreamStats::default(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// How many self-loops were dropped.
    pub fn self_loops_dropped(&self) -> usize {
        self.self_loops_dropped
    }

    fn note_buf_bytes(&mut self) {
        let bytes = (self.buf.len() * std::mem::size_of::<Edge>()) as u64;
        self.stats.peak_bytes = self.stats.peak_bytes.max(bytes);
    }

    /// Sort+dedup the in-memory buffer and write it out as one run.
    fn spill(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.note_buf_bytes();
        self.buf.sort_unstable();
        self.buf.dedup();
        std::fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!(
            "stream-run-{}-{}.bin",
            std::process::id(),
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut w = BufWriter::new(File::create(&path)?);
        for e in &self.buf {
            w.write_all(&e.a.to_le_bytes())?;
            w.write_all(&e.b.to_le_bytes())?;
        }
        w.flush()?;
        self.stats.spill_runs += 1;
        self.stats.spilled_edges += self.buf.len() as u64;
        self.runs.push(path);
        self.buf.clear();
        Ok(())
    }

    /// Finalize into an immutable [`Graph`] plus the scratch accounting.
    ///
    /// # Panics
    /// Panics if a spill-run file cannot be written or read back (the
    /// scratch directory vanished mid-build); runs are deleted on the
    /// way out in every other case.
    pub fn build(mut self) -> (Graph, StreamStats) {
        if self.runs.is_empty() {
            self.note_buf_bytes();
            let mut edges = std::mem::take(&mut self.buf);
            edges.sort_unstable();
            edges.dedup();
            let stats = self.stats;
            let n = self.n;
            return (Graph::from_normalized_edges(n, edges), stats);
        }
        self.spill().expect("spill final streaming run");
        let read_buf = ((self.merge_budget / self.runs.len() as u64) as usize).clamp(4096, 1 << 20);
        self.stats.peak_bytes = self
            .stats
            .peak_bytes
            .max((read_buf * self.runs.len()) as u64);
        let mut readers: Vec<RunReader> = self
            .runs
            .iter()
            .map(|p| RunReader::open(p, read_buf).expect("open streaming run"))
            .collect();
        // K-way merge by always advancing the reader with the smallest
        // head; runs are few (merge fan-in = spill count), so a linear
        // min scan beats heap bookkeeping until far beyond realistic
        // budgets.
        let mut edges: Vec<Edge> = Vec::new();
        loop {
            let mut min: Option<(usize, Edge)> = None;
            for (i, r) in readers.iter().enumerate() {
                if let Some(e) = r.head {
                    if min.map(|(_, m)| e < m).unwrap_or(true) {
                        min = Some((i, e));
                    }
                }
            }
            let Some((i, e)) = min else { break };
            readers[i].advance().expect("read streaming run");
            if edges.last() != Some(&e) {
                edges.push(e);
            }
        }
        drop(readers);
        for p in &self.runs {
            let _ = std::fs::remove_file(p);
        }
        self.runs.clear();
        let stats = self.stats;
        let n = self.n;
        (Graph::from_normalized_edges(n, edges), stats)
    }
}

impl EdgeSink for StreamingBuilder {
    fn ensure_nodes(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
        }
    }

    fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} nodes",
            self.n
        );
        if u == v {
            self.self_loops_dropped += 1;
            return;
        }
        self.buf.push(Edge::new(u, v));
        if self.buf.len() >= self.cap {
            self.spill().expect("spill streaming run");
        }
    }
}

impl Drop for StreamingBuilder {
    fn drop(&mut self) {
        // Abandoned build (never reached `build()`): reclaim the runs.
        for p in &self.runs {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// One sorted run being merged: a bounded buffered reader plus the
/// current head edge.
struct RunReader {
    r: BufReader<File>,
    head: Option<Edge>,
}

impl RunReader {
    fn open(path: &Path, buf_bytes: usize) -> std::io::Result<RunReader> {
        let mut rr = RunReader {
            r: BufReader::with_capacity(buf_bytes, File::open(path)?),
            head: None,
        };
        rr.advance()?;
        Ok(rr)
    }

    fn advance(&mut self) -> std::io::Result<()> {
        let mut bytes = [0u8; 8];
        self.head = match self.r.read_exact(&mut bytes) {
            Ok(()) => Some(Edge {
                a: NodeId::from_le_bytes(bytes[0..4].try_into().unwrap()),
                b: NodeId::from_le_bytes(bytes[4..8].try_into().unwrap()),
            }),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => None,
            Err(e) => return Err(e),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("topogen-stream-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Deterministic edge soup with duplicates, reversals, and
    /// self-loops — everything the builders must normalize away.
    fn soup(n: u32, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..count)
            .map(|_| ((next() % n as u64) as NodeId, (next() % n as u64) as NodeId))
            .collect()
    }

    #[test]
    fn streamed_build_matches_in_memory_with_spills() {
        let dir = scratch("identity");
        let edges = soup(97, 5000, 42);
        let mut plain = GraphBuilder::new(97);
        // 64 KB budget: 5000 raw edges (40 KB) overflow the 32 KB fill
        // half and must spill.
        let mut streamed = StreamingBuilder::new(97, Some(64 * 1024), &dir);
        for &(u, v) in &edges {
            plain.add_edge(u, v);
            streamed.add_edge(u, v);
        }
        let expected = plain.build();
        let (got, stats) = streamed.build();
        assert!(stats.spill_runs >= 2, "budget too large to force spills");
        assert!(stats.peak_bytes > 0 && stats.peak_bytes <= 64 * 1024);
        assert_eq!(got.node_count(), expected.node_count());
        assert_eq!(got.edges(), expected.edges());
        for v in got.nodes() {
            assert_eq!(got.neighbors(v), expected.neighbors(v));
        }
        // Runs are cleaned up after the merge.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_never_spills() {
        let dir = scratch("unbounded");
        let mut b = StreamingBuilder::new(50, None, &dir);
        for (u, v) in soup(50, 2000, 7) {
            b.add_edge(u, v);
        }
        let (g, stats) = b.build();
        assert_eq!(stats.spill_runs, 0);
        assert_eq!(stats.spilled_edges, 0);
        let mut plain = GraphBuilder::new(50);
        for (u, v) in soup(50, 2000, 7) {
            plain.add_edge(u, v);
        }
        assert_eq!(g.edges(), plain.build().edges());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn self_loops_dropped_and_nodes_grow() {
        let dir = scratch("loops");
        let mut b = StreamingBuilder::new(2, Some(64 * 1024), &dir);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.ensure_nodes(4);
        b.add_edge(3, 1);
        assert_eq!(b.self_loops_dropped(), 1);
        let (g, _) = b.build();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abandoned_builder_removes_runs() {
        let dir = scratch("abandon");
        let mut b = StreamingBuilder::new(64, Some(16 * 1024), &dir);
        for (u, v) in soup(64, 5000, 3) {
            b.add_edge(u, v);
        }
        assert!(std::fs::read_dir(&dir).unwrap().count() > 0);
        drop(b);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_budget_roundtrips() {
        // Serial within the test binary: set, read, clear.
        set_default_budget(Some(123));
        assert_eq!(default_budget(), Some(123));
        set_default_budget(None);
        assert_eq!(default_budget(), None);
    }
}
