//! All-pairs shortest paths over small (sub)graphs.
//!
//! Several per-ball computations — the distortion heuristic's "center"
//! selection (paper footnote 14) and pairwise statistics — need all-pairs
//! hop distances on ball subgraphs. Dense Floyd–Warshall would be O(n³);
//! repeated BFS is O(n·m) and wins on the sparse graphs at hand.

use crate::bfs::{distances, shortest_path_dag};
use crate::{Graph, NodeId, UNREACHED};

/// All-pairs hop distance matrix, row-major: `d[u * n + v]`.
/// `UNREACHED` marks disconnected pairs.
pub fn all_pairs_distances(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    let mut d = vec![UNREACHED; n * n];
    for u in 0..n as NodeId {
        let du = distances(g, u);
        d[(u as usize) * n..(u as usize + 1) * n].copy_from_slice(&du);
    }
    d
}

/// Node betweenness centrality (Brandes' algorithm, unweighted). Returns
/// the per-node betweenness (sum over ordered source–target pairs of the
/// fraction of shortest paths through the node). Used to pick ball
/// "centers" for the distortion metric.
#[allow(clippy::needless_range_loop)] // index loops mirror Brandes' pseudocode
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut bc = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    for s in 0..n as NodeId {
        let dag = shortest_path_dag(g, s);
        for d in delta.iter_mut() {
            *d = 0.0;
        }
        // Accumulate in reverse BFS order.
        for &w in dag.order.iter().rev() {
            for &v in &dag.preds[w as usize] {
                let share =
                    dag.sigma[v as usize] / dag.sigma[w as usize] * (1.0 + delta[w as usize]);
                delta[v as usize] += share;
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    bc
}

/// The node with maximum betweenness — the paper's "center" of a ball:
/// "the node through which the highest number of pairs traverse"
/// (footnote 14). Ties break to the lowest id. Returns `None` for the
/// empty graph.
pub fn betweenness_center(g: &Graph) -> Option<NodeId> {
    let bc = betweenness(g);
    bc.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
        .map(|(i, _)| i as NodeId)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn apsp_on_path() {
        let g = Graph::from_edges(4, (0..3).map(|i| (i, i + 1)));
        let d = all_pairs_distances(&g);
        let n = 4;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(d[u * n + v], (u as i64 - v as i64).unsigned_abs() as u32);
            }
        }
    }

    #[test]
    fn apsp_disconnected() {
        let g = Graph::from_edges(3, vec![(0, 1)]);
        let d = all_pairs_distances(&g);
        assert_eq!(d[2], UNREACHED);
        assert_eq!(d[2 * 3 + 2], 0);
    }

    #[test]
    fn betweenness_path_middle_highest() {
        let g = Graph::from_edges(5, (0..4).map(|i| (i, i + 1)));
        let bc = betweenness(&g);
        // Middle node lies on the most shortest paths.
        assert!(bc[2] > bc[1]);
        assert!(bc[1] > bc[0]);
        assert_eq!(bc[0], 0.0);
        assert_eq!(betweenness_center(&g), Some(2));
    }

    #[test]
    fn betweenness_star_center() {
        let g = Graph::from_edges(5, (1..5).map(|i| (0, i)));
        let bc = betweenness(&g);
        // Ordered pairs among 4 leaves = 12, all through the hub.
        assert!((bc[0] - 12.0).abs() < 1e-9);
        for v in 1..5 {
            assert_eq!(bc[v], 0.0);
        }
        assert_eq!(betweenness_center(&g), Some(0));
    }

    #[test]
    fn betweenness_cycle_symmetric() {
        let g = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
        let bc = betweenness(&g);
        for v in 1..6 {
            assert!(
                (bc[v] - bc[0]).abs() < 1e-9,
                "cycle betweenness must be uniform"
            );
        }
    }

    #[test]
    fn betweenness_equal_cost_split() {
        // 4-cycle: paths between opposite nodes split over both sides.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let bc = betweenness(&g);
        // By symmetry all nodes have the same betweenness: each pair of
        // opposite nodes contributes 1/2 to each intermediate node, and
        // there are 2 ordered pairs through each node → 1.0.
        for v in 0..4 {
            assert!((bc[v] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn center_of_empty_graph() {
        assert_eq!(betweenness_center(&Graph::empty(0)), None);
    }
}
