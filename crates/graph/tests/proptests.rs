//! Property-based tests for the graph substrate: invariants that every
//! algorithm in the workspace silently relies on, over arbitrary graphs.

use proptest::prelude::*;
use topogen_check::gen::{arb_connected, arb_graph};
use topogen_graph::apsp::all_pairs_distances;
use topogen_graph::bfs::{distances, distances_bounded, shortest_path_dag, DistScratch};
use topogen_graph::bfs_bitset::{self, BfsStats, BitsetScratch};
use topogen_graph::bicon::biconnected_components;
use topogen_graph::components::{components, largest_component};
use topogen_graph::flow::max_flow_unit;
use topogen_graph::io::{parse_edge_list, to_edge_list};
use topogen_graph::prune::core;
use topogen_graph::subgraph::ball;
use topogen_graph::tree::{Lca, RootedTree};
use topogen_graph::{NodeId, UNREACHED};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let total: usize = g.degrees().iter().sum();
        prop_assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn adjacency_is_symmetric(g in arb_graph()) {
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                prop_assert!(g.has_edge(w, v));
                prop_assert!(g.neighbors(w).contains(&v));
            }
        }
    }

    #[test]
    fn bfs_matches_apsp(g in arb_graph()) {
        let n = g.node_count();
        let apsp = all_pairs_distances(&g);
        for u in 0..n as NodeId {
            let d = distances(&g, u);
            for v in 0..n {
                prop_assert_eq!(d[v], apsp[(u as usize) * n + v]);
            }
        }
    }

    #[test]
    fn distance_triangle_inequality(g in arb_graph()) {
        let d0 = distances(&g, 0);
        for e in g.edges() {
            let (da, db) = (d0[e.a as usize], d0[e.b as usize]);
            if da != UNREACHED && db != UNREACHED {
                prop_assert!(da.abs_diff(db) <= 1, "edge {e} distances {da}/{db}");
            } else {
                // One endpoint reachable implies the other is too.
                prop_assert_eq!(da, db);
            }
        }
    }

    #[test]
    fn sigma_positive_on_reachable(g in arb_graph()) {
        let dag = shortest_path_dag(&g, 0);
        for v in g.nodes() {
            if dag.dist[v as usize] != UNREACHED {
                prop_assert!(dag.sigma[v as usize] >= 1.0);
                if v != 0 {
                    prop_assert!(!dag.preds[v as usize].is_empty());
                }
            } else {
                prop_assert_eq!(dag.sigma[v as usize], 0.0);
            }
        }
    }

    #[test]
    fn component_sizes_partition(g in arb_graph()) {
        let c = components(&g);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), g.node_count());
        let (lcc, map) = largest_component(&g);
        prop_assert_eq!(lcc.node_count(), *c.sizes.iter().max().unwrap());
        prop_assert_eq!(map.len(), lcc.node_count());
    }

    #[test]
    fn bicon_components_cover_edges(g in arb_graph()) {
        let b = biconnected_components(&g);
        prop_assert_eq!(b.edge_component.len(), g.edge_count());
        for &c in &b.edge_component {
            prop_assert!((c as usize) < b.component_count || g.edge_count() == 0);
        }
    }

    #[test]
    fn ball_is_monotone_in_radius(g in arb_graph()) {
        let mut prev = 0;
        for h in 0..6u32 {
            let (sub, map) = ball(&g, 0, h);
            prop_assert!(sub.node_count() >= prev);
            prop_assert_eq!(map.to_original(0), 0, "center is node 0");
            prev = sub.node_count();
        }
    }

    #[test]
    fn edge_list_roundtrip(g in arb_graph()) {
        let g2 = parse_edge_list(&to_edge_list(&g)).unwrap();
        prop_assert_eq!(g2.node_count(), g.node_count());
        prop_assert_eq!(g2.edges(), g.edges());
    }

    #[test]
    fn core_has_min_degree_two(g in arb_graph()) {
        let (c, _) = core(&g);
        for v in c.nodes() {
            prop_assert!(c.degree(v) >= 2);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bfs_tree_distance_upper_bounds_graph_distance(g in arb_connected()) {
        let t = RootedTree::bfs_tree(&g, 0);
        let lca = Lca::new(&t);
        let n = g.node_count();
        for u in 0..n as NodeId {
            let d = distances(&g, u);
            for v in (u + 1)..n as NodeId {
                let td = lca.tree_distance(u, v);
                prop_assert!(td >= d[v as usize], "tree dist {td} < graph dist {}", d[v as usize]);
            }
        }
    }

    #[test]
    fn bfs_tree_root_distances_exact(g in arb_connected()) {
        // BFS trees preserve distances from the root exactly.
        let t = RootedTree::bfs_tree(&g, 0);
        let d = distances(&g, 0);
        for v in g.nodes() {
            prop_assert_eq!(t.depth[v as usize], d[v as usize]);
        }
    }

    #[test]
    fn bitset_single_source_matches_scalar_oracle(
        g in arb_connected(),
        src_pick in any::<u32>(),
        raw_h in 0u32..9,
    ) {
        let max_h = if raw_h == 8 { u32::MAX } else { raw_h };
        let src = (src_pick as usize % g.node_count()) as NodeId;
        let mut stats = BfsStats::default();
        let got = bfs_bitset::distances_bounded(&g, src, max_h, &mut stats);
        let want = distances_bounded(&g, src, max_h);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bitset_scratch_reuse_matches_scalar_oracle(g in arb_connected(), seeds in proptest::collection::vec(any::<u32>(), 1..6)) {
        // One reused scratch across several (src, max_h) runs: reuse must
        // never leak state between centers.
        let n = g.node_count();
        let mut bit = BitsetScratch::new();
        let mut sca = DistScratch::new();
        let mut stats = BfsStats::default();
        for s in seeds {
            let src = (s as usize % n) as NodeId;
            let max_h = (s / 7) % 9;
            bit.run_bounded(&g, src, max_h, &mut stats);
            sca.run_bounded(&g, src, max_h);
            for v in 0..n as NodeId {
                prop_assert_eq!(bit.dist(v), sca.dist(v), "src {} h {} v {}", src, max_h, v);
            }
            prop_assert_eq!(bit.ball_nodes_sorted(), sca.ball_nodes_sorted());
            prop_assert_eq!(bit.ring_sizes(max_h), sca.ring_sizes(max_h));
        }
    }

    #[test]
    fn multi_source_rings_match_scalar_oracle(
        g in arb_connected(),
        picks in proptest::collection::vec(any::<u32>(), 1..64),
        max_h in 0u32..8,
    ) {
        let n = g.node_count();
        let sources: Vec<NodeId> = picks.iter().map(|&p| (p as usize % n) as NodeId).collect();
        let mut stats = BfsStats::default();
        let rings = bfs_bitset::multi_source_ring_counts(&g, &sources, max_h, &mut stats);
        for (k, &s) in sources.iter().enumerate() {
            let want = topogen_graph::bfs::ring_sizes(&g, s, max_h);
            prop_assert_eq!(&rings[k], &want, "lane {} source {}", k, s);
        }
    }

    #[test]
    fn menger_flow_bounded_by_min_degree(g in arb_connected()) {
        let n = g.node_count() as NodeId;
        let (s, t) = (0, n - 1);
        if s != t {
            let f = max_flow_unit(&g, s, t);
            prop_assert!(f <= g.degree(s).min(g.degree(t)) as u64);
            // Connected: at least one path.
            prop_assert!(f >= 1);
        }
    }

    #[test]
    fn flow_is_symmetric(g in arb_connected()) {
        let n = g.node_count() as NodeId;
        if n >= 2 {
            prop_assert_eq!(max_flow_unit(&g, 0, n - 1), max_flow_unit(&g, n - 1, 0));
        }
    }
}
