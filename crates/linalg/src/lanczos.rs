//! Lanczos iteration with full reorthogonalization for the top
//! eigenvalues of large sparse symmetric matrices.
//!
//! The eigenvalue/rank plots of Appendix B only need the few dozen largest
//! eigenvalues of the adjacency matrix. Lanczos reduces the operator to a
//! small tridiagonal matrix whose extremal eigenvalues converge rapidly to
//! the operator's; full reorthogonalization keeps the Krylov basis
//! orthogonal and avoids the classical "ghost eigenvalue" pathology at a
//! memory cost of `O(n·m)` for `m` iterations — fine at the scales we run.

use crate::dense::{jacobi_eigenvalues, DenseSym};
use crate::sparse::SparseSym;
use rand::Rng;

/// Top-`k` eigenvalues of sparse symmetric `a`, sorted descending.
///
/// `rng` seeds the start vector; the result is deterministic given the rng
/// state. If the matrix dimension is ≤ `k` or small (≤ 64), the spectrum
/// is computed densely and truncated instead.
pub fn top_eigenvalues<R: Rng>(a: &SparseSym, k: usize, rng: &mut R) -> Vec<f64> {
    let n = a.n();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    if n <= 64 || n <= k {
        return dense_spectrum(a, k);
    }
    // Krylov dimension: enough beyond k for the extremal values to settle.
    let m = (6 * k + 80).min(n);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m); // betas[j] links v_j and v_{j+1}

    // Random unit start vector.
    let mut v = random_unit(n, rng);
    let mut w = vec![0.0f64; n];
    for j in 0..m {
        a.mul_into(&v, &mut w);
        let alpha = dot(&v, &w);
        alphas.push(alpha);
        // w ← w − α v − β v_{j−1}, then full reorthogonalization.
        axpy(&mut w, -alpha, &v);
        if j > 0 {
            let beta_prev = betas[j - 1];
            axpy(&mut w, -beta_prev, &basis[j - 1]);
        }
        basis.push(std::mem::take(&mut v));
        // Two passes of Gram–Schmidt against the whole basis.
        for _ in 0..2 {
            for b in &basis {
                let c = dot(&w, b);
                axpy(&mut w, -c, b);
            }
        }
        let beta = norm(&w);
        if j + 1 == m {
            break;
        }
        if beta < 1e-12 {
            // Invariant subspace: restart with a fresh direction
            // orthogonal to the basis. If none exists, stop.
            let mut fresh = random_unit(n, rng);
            for _ in 0..2 {
                for b in &basis {
                    let c = dot(&fresh, b);
                    axpy(&mut fresh, -c, b);
                }
            }
            let fn_ = norm(&fresh);
            if fn_ < 1e-12 {
                break;
            }
            scale(&mut fresh, 1.0 / fn_);
            betas.push(0.0);
            v = fresh;
        } else {
            betas.push(beta);
            v = w.clone();
            scale(&mut v, 1.0 / beta);
        }
    }

    // Eigenvalues of the tridiagonal T (small: ≤ m×m) via dense Jacobi.
    let t = tridiagonal(&alphas, &betas);
    let mut eig = jacobi_eigenvalues(&t);
    eig.truncate(k);
    eig
}

#[allow(clippy::needless_range_loop)]
fn dense_spectrum(a: &SparseSym, k: usize) -> Vec<f64> {
    let n = a.n();
    let mut d = DenseSym::zeros(n);
    // Recover entries through matvecs with unit vectors (n is small here).
    let mut e = vec![0.0f64; n];
    let mut col = vec![0.0f64; n];
    for j in 0..n {
        e[j] = 1.0;
        a.mul_into(&e, &mut col);
        for i in 0..n {
            d.set(i, j, col[i]);
        }
        e[j] = 0.0;
    }
    let mut eig = jacobi_eigenvalues(&d);
    eig.truncate(k);
    eig
}

fn tridiagonal(alphas: &[f64], betas: &[f64]) -> DenseSym {
    let m = alphas.len();
    let mut t = DenseSym::zeros(m);
    for (i, &a) in alphas.iter().enumerate() {
        t.set(i, i, a);
    }
    for (i, &b) in betas.iter().enumerate().take(m.saturating_sub(1)) {
        t.set(i, i + 1, b);
        t.set(i + 1, i, b);
    }
    t
}

fn random_unit<R: Rng>(n: usize, rng: &mut R) -> Vec<f64> {
    loop {
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let nm = norm(&v);
        if nm > 1e-9 {
            let mut v = v;
            scale(&mut v, 1.0 / nm);
            return v;
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

fn scale(v: &mut [f64], s: f64) {
    for x in v.iter_mut() {
        *x *= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn small_falls_back_to_dense() {
        // Path of 5 nodes; top eigenvalue = 2 cos(π/6) = √3.
        let a = SparseSym::adjacency(5, (0..4u32).map(|i| (i, i + 1)));
        let e = top_eigenvalues(&a, 2, &mut rng());
        assert!((e[0] - 3f64.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn large_cycle_top_eigenvalue_is_two() {
        let n = 500u32;
        let a = SparseSym::adjacency(n as usize, (0..n).map(|i| (i, (i + 1) % n)));
        let e = top_eigenvalues(&a, 4, &mut rng());
        assert!((e[0] - 2.0).abs() < 5e-3, "got {}", e[0]);
        // Next eigenvalues are 2cos(2π/n), nearly degenerate pairs.
        let want = 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!((e[1] - want).abs() < 5e-3);
    }

    #[test]
    fn star_graph_extremes() {
        // K_{1,n-1}: top eigenvalue sqrt(n-1).
        let n = 401u32;
        let a = SparseSym::adjacency(n as usize, (1..n).map(|i| (0, i)));
        let e = top_eigenvalues(&a, 3, &mut rng());
        assert!((e[0] - 20.0).abs() < 1e-6, "got {}", e[0]);
        assert!(e[1].abs() < 1e-6);
    }

    #[test]
    fn complete_graph_large() {
        let n = 120u32;
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let a = SparseSym::adjacency(n as usize, edges);
        let e = top_eigenvalues(&a, 2, &mut rng());
        assert!((e[0] - 119.0).abs() < 1e-6);
        assert!((e[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn agrees_with_dense_on_medium_graph() {
        // Deterministic quasi-random sparse graph, checked against Jacobi.
        let n = 100usize;
        let mut edges = Vec::new();
        let mut state = 99u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (state >> 33) as u32 % n as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (state >> 33) as u32 % n as u32;
            if u != v {
                edges.push((u.min(v), u.max(v)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let a = SparseSym::adjacency(n, edges.iter().copied());
        let dense = DenseSym::adjacency(n, edges.iter().copied());
        let exact = jacobi_eigenvalues(&dense);
        let approx = top_eigenvalues(&a, 5, &mut rng());
        for i in 0..5 {
            assert!(
                (exact[i] - approx[i]).abs() < 5e-3,
                "rank {i}: {} vs {}",
                exact[i],
                approx[i]
            );
        }
    }

    #[test]
    fn zero_k_or_empty() {
        let a = SparseSym::adjacency(3, vec![(0, 1)]);
        assert!(top_eigenvalues(&a, 0, &mut rng()).is_empty());
        let empty = SparseSym::adjacency(0, Vec::new());
        assert!(top_eigenvalues(&empty, 3, &mut rng()).is_empty());
    }

    #[test]
    fn disconnected_components_union_spectrum() {
        // Two disjoint triangles: eigenvalue 2 with multiplicity 2.
        let a = SparseSym::adjacency(6, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let e = top_eigenvalues(&a, 2, &mut rng());
        assert!((e[0] - 2.0).abs() < 1e-8);
        assert!((e[1] - 2.0).abs() < 1e-8);
    }
}
