//! # topogen-linalg
//!
//! Symmetric eigensolvers for adjacency-spectrum analysis.
//!
//! The paper's Appendix B (Figure 7(a–c)) plots the largest eigenvalues of
//! a topology's adjacency matrix against their rank — the metric
//! introduced by Faloutsos et al. \[17\], where the AS graph shows a
//! power-law eigenvalue/rank relationship. This crate supplies the two
//! solvers that computation needs:
//!
//! * [`dense::jacobi_eigenvalues`] — the classical cyclic Jacobi rotation
//!   method for small dense symmetric matrices (exact spectra of small
//!   canonical graphs and of test fixtures);
//! * [`lanczos::top_eigenvalues`] — Lanczos iteration with full
//!   reorthogonalization over a sparse symmetric operator, returning the
//!   top-k eigenvalues of graphs with 10⁴–10⁵ nodes (the paper notes the
//!   full RL graph "was too large to obtain its eigenvalue spectrum";
//!   Lanczos pushes that boundary far enough for our scaled RL substitute).
//!
//! Both solvers are deterministic given their inputs (Lanczos takes an
//! explicit RNG for its start vector).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod lanczos;
pub mod sparse;

pub use dense::jacobi_eigenvalues;
pub use lanczos::top_eigenvalues;
pub use sparse::SparseSym;
