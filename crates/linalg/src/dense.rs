//! Cyclic Jacobi eigenvalue iteration for small dense symmetric matrices.
//!
//! Jacobi rotations annihilate off-diagonal entries one sweep at a time;
//! for the symmetric matrices arising from graphs up to a few thousand
//! nodes this is simple, numerically robust, and has no failure modes —
//! exactly the profile we want for a reference solver that the Lanczos
//! implementation is validated against.

/// A dense symmetric matrix stored as a full row-major `n × n` buffer.
#[derive(Clone, Debug)]
pub struct DenseSym {
    n: usize,
    a: Vec<f64>,
}

impl DenseSym {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> DenseSym {
        DenseSym {
            n,
            a: vec![0.0; n * n],
        }
    }

    /// Build from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `buf.len() != n*n` or the buffer is not symmetric to
    /// within 1e-12.
    pub fn from_buffer(n: usize, buf: Vec<f64>) -> DenseSym {
        assert_eq!(buf.len(), n * n);
        for i in 0..n {
            for j in (i + 1)..n {
                assert!(
                    (buf[i * n + j] - buf[j * n + i]).abs() <= 1e-12,
                    "matrix not symmetric at ({i},{j})"
                );
            }
        }
        DenseSym { n, a: buf }
    }

    /// The adjacency matrix of an undirected graph.
    pub fn adjacency(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> DenseSym {
        let mut m = DenseSym::zeros(n);
        for (u, v) in edges {
            m.set(u as usize, v as usize, 1.0);
            m.set(v as usize, u as usize, 1.0);
        }
        m
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Element setter (caller keeps the matrix symmetric).
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] = v;
    }
}

/// All eigenvalues of a dense symmetric matrix, sorted descending, via the
/// cyclic Jacobi method. Converges when the off-diagonal Frobenius norm
/// falls below `1e-10 · ‖A‖`, or after 100 sweeps (which for symmetric
/// input it never reaches in practice).
pub fn jacobi_eigenvalues(m: &DenseSym) -> Vec<f64> {
    let n = m.n;
    if n == 0 {
        return Vec::new();
    }
    let mut a = m.a.clone();
    let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
    let tol = 1e-10 * norm;
    for _sweep in 0..100 {
        // Off-diagonal norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += 2.0 * a[i * n + j] * a[i * n + j];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                // Compute the rotation that annihilates a[p][q].
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation: rows/cols p and q.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
            }
        }
    }
    let mut eig: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    eig.sort_by(|x, y| y.partial_cmp(x).unwrap());
    eig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-8
    }

    #[test]
    fn diagonal_matrix() {
        let mut m = DenseSym::zeros(3);
        m.set(0, 0, 3.0);
        m.set(1, 1, 1.0);
        m.set(2, 2, 2.0);
        let e = jacobi_eigenvalues(&m);
        assert!(close(e[0], 3.0) && close(e[1], 2.0) && close(e[2], 1.0));
    }

    #[test]
    fn two_by_two() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = DenseSym::from_buffer(2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = jacobi_eigenvalues(&m);
        assert!(close(e[0], 3.0) && close(e[1], 1.0));
    }

    #[test]
    fn path_graph_spectrum() {
        // Path on n nodes: eigenvalues 2 cos(kπ/(n+1)), k = 1..n.
        let n = 5;
        let m = DenseSym::adjacency(n, (0..n as u32 - 1).map(|i| (i, i + 1)));
        let e = jacobi_eigenvalues(&m);
        let expected: Vec<f64> = (1..=n)
            .map(|k| 2.0 * (std::f64::consts::PI * k as f64 / (n as f64 + 1.0)).cos())
            .collect();
        for (got, want) in e.iter().zip(expected.iter()) {
            assert!(close(*got, *want), "{got} vs {want}");
        }
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n: eigenvalues n-1 (once) and -1 (n-1 times).
        let n = 6u32;
        let edges = (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j)));
        let m = DenseSym::adjacency(n as usize, edges);
        let e = jacobi_eigenvalues(&m);
        assert!(close(e[0], (n - 1) as f64));
        for v in &e[1..] {
            assert!(close(*v, -1.0));
        }
    }

    #[test]
    fn cycle_graph_spectrum() {
        // C_n: eigenvalues 2 cos(2πk/n).
        let n = 8u32;
        let m = DenseSym::adjacency(n as usize, (0..n).map(|i| (i, (i + 1) % n)));
        let mut e = jacobi_eigenvalues(&m);
        let mut expected: Vec<f64> = (0..n)
            .map(|k| 2.0 * (2.0 * std::f64::consts::PI * k as f64 / n as f64).cos())
            .collect();
        expected.sort_by(|x, y| y.partial_cmp(x).unwrap());
        e.sort_by(|x, y| y.partial_cmp(x).unwrap());
        for (got, want) in e.iter().zip(expected.iter()) {
            assert!(close(*got, *want));
        }
    }

    #[test]
    fn star_spectrum() {
        // Star K_{1,n-1}: ±sqrt(n-1) and zeros.
        let n = 10u32;
        let m = DenseSym::adjacency(n as usize, (1..n).map(|i| (0, i)));
        let e = jacobi_eigenvalues(&m);
        assert!(close(e[0], 3.0));
        assert!(close(*e.last().unwrap(), -3.0));
        for v in &e[1..e.len() - 1] {
            assert!(close(*v, 0.0));
        }
    }

    #[test]
    fn trace_preserved() {
        let m = DenseSym::from_buffer(3, vec![1.0, 2.0, 0.5, 2.0, -1.0, 0.0, 0.5, 0.0, 4.0]);
        let e = jacobi_eigenvalues(&m);
        let trace: f64 = e.iter().sum();
        assert!(close(trace, 4.0));
    }

    #[test]
    fn empty_matrix() {
        assert!(jacobi_eigenvalues(&DenseSym::zeros(0)).is_empty());
    }

    #[test]
    #[should_panic]
    fn asymmetric_rejected() {
        let _ = DenseSym::from_buffer(2, vec![0.0, 1.0, 2.0, 0.0]);
    }
}
