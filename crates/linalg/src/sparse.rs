//! Sparse symmetric matrices in CSR form.

/// A sparse symmetric matrix stored in CSR form. Only used as a linear
/// operator (matrix–vector products), so no random element access is
/// provided. Symmetry is the caller's responsibility; the adjacency
/// matrices this crate consumes are symmetric by construction.
#[derive(Clone, Debug)]
pub struct SparseSym {
    n: usize,
    offsets: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl SparseSym {
    /// Build from per-row `(col, value)` lists.
    ///
    /// # Panics
    /// Panics if a column index is out of range.
    pub fn from_rows(rows: Vec<Vec<(u32, f64)>>) -> SparseSym {
        let n = rows.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for row in &rows {
            for &(c, v) in row {
                assert!((c as usize) < n, "column {c} out of range");
                cols.push(c);
                vals.push(v);
            }
            offsets.push(cols.len());
        }
        SparseSym {
            n,
            offsets,
            cols,
            vals,
        }
    }

    /// The 0/1 adjacency matrix of an undirected graph given as edge list.
    pub fn adjacency(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> SparseSym {
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (u, v) in edges {
            rows[u as usize].push((v, 1.0));
            rows[v as usize].push((u, 1.0));
        }
        SparseSym::from_rows(rows)
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n` or `y.len() != n`.
    #[allow(clippy::needless_range_loop)]
    pub fn mul_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for i in 0..self.n {
            let mut acc = 0.0;
            for k in self.offsets[i]..self.offsets[i + 1] {
                acc += self.vals[k] * x[self.cols[k] as usize];
            }
            y[i] = acc;
        }
    }

    /// Allocating variant of [`mul_into`](Self::mul_into).
    pub fn mul(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_into(x, &mut y);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_matvec() {
        // Path 0-1-2: A·[1,1,1] = [1,2,1].
        let a = SparseSym::adjacency(3, vec![(0, 1), (1, 2)]);
        assert_eq!(a.n(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.mul(&[1.0, 1.0, 1.0]), vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn weighted_rows() {
        let a = SparseSym::from_rows(vec![vec![(0, 2.0), (1, -1.0)], vec![(0, -1.0), (1, 2.0)]]);
        assert_eq!(a.mul(&[1.0, 0.0]), vec![2.0, -1.0]);
        assert_eq!(a.mul(&[1.0, 1.0]), vec![1.0, 1.0]);
    }

    #[test]
    fn empty_matrix() {
        let a = SparseSym::from_rows(vec![]);
        assert_eq!(a.n(), 0);
        assert_eq!(a.mul(&[]), Vec::<f64>::new());
    }

    #[test]
    #[should_panic]
    fn out_of_range_column() {
        let _ = SparseSym::from_rows(vec![vec![(5, 1.0)]]);
    }

    #[test]
    #[should_panic]
    fn wrong_vector_length() {
        let a = SparseSym::adjacency(2, vec![(0, 1)]);
        let _ = a.mul(&[1.0]);
    }
}
