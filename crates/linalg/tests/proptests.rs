//! Property-based tests for the eigensolvers: invariants of symmetric
//! spectra over random matrices and graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_linalg::dense::{jacobi_eigenvalues, DenseSym};
use topogen_linalg::{top_eigenvalues, SparseSym};

/// Random symmetric matrix with entries in [-3, 3].
fn arb_sym() -> impl Strategy<Value = DenseSym> {
    (2usize..10, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 6.0 - 3.0
        };
        let mut m = DenseSym::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = next();
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        m
    })
}

/// Random graph edge list.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (3usize..30, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut edges = Vec::new();
        for _ in 0..2 * n {
            let u = (next() % n) as u32;
            let v = (next() % n) as u32;
            if u != v {
                edges.push((u.min(v), u.max(v)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        (n, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trace_equals_eigenvalue_sum(m in arb_sym()) {
        let eig = jacobi_eigenvalues(&m);
        let trace: f64 = (0..m.n()).map(|i| m.get(i, i)).sum();
        let sum: f64 = eig.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7, "trace {trace} vs Σλ {sum}");
    }

    #[test]
    fn frobenius_equals_eigenvalue_square_sum(m in arb_sym()) {
        let eig = jacobi_eigenvalues(&m);
        let frob: f64 = (0..m.n())
            .flat_map(|i| (0..m.n()).map(move |j| (i, j)))
            .map(|(i, j)| m.get(i, j).powi(2))
            .sum();
        let sq: f64 = eig.iter().map(|l| l * l).sum();
        prop_assert!((frob - sq).abs() < 1e-6 * (1.0 + frob));
    }

    #[test]
    fn eigenvalues_sorted_descending(m in arb_sym()) {
        let eig = jacobi_eigenvalues(&m);
        prop_assert!(eig.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn adjacency_spectrum_bounds((n, edges) in arb_edges()) {
        // For a graph, λ_max ∈ [avg degree, max degree] and λ_min ≥ -λ_max.
        let a = SparseSym::adjacency(n, edges.iter().copied());
        let dense = DenseSym::adjacency(n, edges.iter().copied());
        let eig = jacobi_eigenvalues(&dense);
        let max_deg = (0..n)
            .map(|v| edges.iter().filter(|(a, b)| *a as usize == v || *b as usize == v).count())
            .max()
            .unwrap_or(0) as f64;
        let avg_deg = 2.0 * edges.len() as f64 / n as f64;
        prop_assert!(eig[0] <= max_deg + 1e-9);
        prop_assert!(eig[0] >= avg_deg - 1e-9);
        prop_assert!(eig.last().unwrap() >= &(-eig[0] - 1e-9));
        // Lanczos agrees with Jacobi on the top value (dense fallback for
        // small n, but exercise the public API anyway).
        let mut rng = StdRng::seed_from_u64(5);
        let top = top_eigenvalues(&a, 1, &mut rng);
        prop_assert!((top[0] - eig[0]).abs() < 1e-6);
    }

    #[test]
    fn bipartite_spectrum_symmetric(k in 1usize..8, l in 1usize..8) {
        // Complete bipartite K_{k,l}: spectrum ±√(kl) and zeros.
        let n = k + l;
        let edges: Vec<(u32, u32)> = (0..k as u32)
            .flat_map(|i| (k as u32..n as u32).map(move |j| (i, j)))
            .collect();
        let m = DenseSym::adjacency(n, edges);
        let eig = jacobi_eigenvalues(&m);
        let want = ((k * l) as f64).sqrt();
        prop_assert!((eig[0] - want).abs() < 1e-7);
        prop_assert!((eig.last().unwrap() + want).abs() < 1e-7);
    }
}
