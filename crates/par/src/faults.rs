//! Deterministic fault injection for robustness tests.
//!
//! `TOPOGEN_FAULTS=site[@scope]:kind:rate:seed[,entry...]` arms one or
//! more fault entries; instrumented sites call [`inject`] (compute
//! sites) or [`inject_io`] (I/O sites) and, when an armed entry
//! matches, the fault fires there. Sites currently wired:
//!
//! * `build`  — topology construction (`topogen_core::zoo::build`),
//!   labelled with the topology name;
//! * `metric` — the shared-ball metrics engine, at phase start;
//! * `hier`   — the hierarchy link-value traversal, at phase start;
//! * `sock-read` / `sock-write` — the daemon's server-side socket I/O;
//! * `store-read` / `store-write` — artifact-store entry I/O;
//! * `ledger-append` — both append-only ledgers (the store's
//!   `ledger.tsv`, labelled `store`, and the daemon's request JSONL,
//!   labelled `serve`).
//!
//! Kinds: `panic`, `delay` (100 ms) or `delayNNN` (NNN ms) fire at any
//! site; `err` (an injected `io::Error`) and `short` (a partial
//! read/write) fire only at the I/O sites — [`inject`] ignores them,
//! [`inject_io`] returns them for the caller to surface. `rate` in
//! `(0, 1]` is a per-call firing probability drawn from a SplitMix64
//! stream keyed by `seed` and a per-entry call counter, so a given spec
//! fires at the same call indices on every run. An optional `@scope`
//! restricts the entry to calls whose site label *or* current suite
//! unit (see [`set_current_unit`]) equals `scope` — how the CI smoke
//! pins one injected panic to exactly one `repro` unit.
//!
//! When nothing is armed, [`inject`] and [`inject_io`] are a single
//! relaxed atomic load — zero-cost for production runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One armed fault.
#[derive(Debug)]
struct FaultEntry {
    site: String,
    scope: Option<String>,
    kind: FaultKind,
    rate: f64,
    seed: u64,
    calls: AtomicU64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum FaultKind {
    Panic,
    Delay(u64),
    Err,
    Short,
}

/// An I/O fault returned by [`inject_io`] for the call site to surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// Fail the operation with an injected `io::Error`.
    Err,
    /// Complete the operation partially (short read / torn write).
    Short,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static FAULTS: Mutex<Vec<FaultEntry>> = Mutex::new(Vec::new());
static CURRENT_UNIT: Mutex<Option<String>> = Mutex::new(None);
static TEST_GUARD: Mutex<()> = Mutex::new(());

/// Serialize tests that arm global fault state (the harness is
/// process-wide and `cargo test` runs tests concurrently).
pub fn exclusive_for_tests() -> std::sync::MutexGuard<'static, ()> {
    TEST_GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Arm the harness from the `TOPOGEN_FAULTS` environment variable.
/// Called once by binaries at startup; a malformed spec aborts with a
/// usage message rather than silently running fault-free.
pub fn init_from_env() {
    if let Ok(spec) = std::env::var("TOPOGEN_FAULTS") {
        if let Err(e) = install_spec(&spec) {
            eprintln!("TOPOGEN_FAULTS: {e}");
            std::process::exit(2);
        }
    }
}

/// Arm the harness from a spec string (see module docs for the syntax).
/// Replaces any previously armed entries.
pub fn install_spec(spec: &str) -> Result<(), String> {
    let mut entries = Vec::new();
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        entries.push(parse_entry(part.trim())?);
    }
    let armed = !entries.is_empty();
    *lock(&FAULTS) = entries;
    ENABLED.store(armed, Ordering::Release);
    Ok(())
}

/// True while any fault entry is armed. The CLI checks this before
/// installing an artifact-store handle, so results produced under an
/// active harness are never cached.
pub fn active() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Disarm every fault entry.
pub fn clear() {
    ENABLED.store(false, Ordering::Release);
    lock(&FAULTS).clear();
}

/// Record the suite unit currently executing (e.g. `"fig9"`), used to
/// match `site@scope` entries. The runner sets this around each unit;
/// `None` clears it.
pub fn set_current_unit(unit: Option<&str>) {
    *lock(&CURRENT_UNIT) = unit.map(str::to_string);
}

fn parse_entry(s: &str) -> Result<FaultEntry, String> {
    let fields: Vec<&str> = s.split(':').collect();
    if fields.len() != 4 {
        return Err(format!("bad entry {s:?}: want site[@scope]:kind:rate:seed"));
    }
    let (site, scope) = match fields[0].split_once('@') {
        Some((site, scope)) => (site.to_string(), Some(scope.to_string())),
        None => (fields[0].to_string(), None),
    };
    let kind = match fields[1] {
        "panic" => FaultKind::Panic,
        "err" => FaultKind::Err,
        "short" => FaultKind::Short,
        "delay" => FaultKind::Delay(100),
        k if k.starts_with("delay") => FaultKind::Delay(
            k["delay".len()..]
                .parse()
                .map_err(|_| format!("bad delay in {s:?}"))?,
        ),
        other => return Err(format!("unknown fault kind {other:?} in {s:?}")),
    };
    let rate: f64 = fields[2]
        .parse()
        .map_err(|_| format!("bad rate in {s:?}"))?;
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(format!("rate must be in (0, 1] in {s:?}"));
    }
    let seed: u64 = fields[3]
        .parse()
        .map_err(|_| format!("bad seed in {s:?}"))?;
    Ok(FaultEntry {
        site,
        scope,
        kind,
        rate,
        seed,
        calls: AtomicU64::new(0),
    })
}

/// One SplitMix64 step — the workspace's shared deterministic draw
/// (fault firing here, retry-backoff jitter in the store, reseeds in
/// the runner all key off the same primitive).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A compute fault site: fires any armed entry matching `site` whose
/// scope (if any) equals the call's `label` or the current suite unit.
/// Panics with a recognizable message for `panic` entries; sleeps for
/// `delay` entries; ignores the I/O-only kinds (`err`, `short`). A
/// relaxed atomic load when nothing is armed.
pub fn inject(site: &str, label: &str) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    inject_slow(site, label);
}

/// An I/O fault site: `panic` / `delay` entries fire exactly as at
/// compute sites; `err` / `short` entries are returned for the caller
/// to surface as an injected `io::Error` or a partial transfer. A
/// relaxed atomic load when nothing is armed.
pub fn inject_io(site: &str, label: &str) -> Option<IoFault> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    inject_io_slow(site, label)
}

/// The `io::Error` an injected [`IoFault::Err`] should surface as —
/// recognizable (and classified as transient/retryable) by message.
pub fn io_error(site: &str, label: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {site} ({label})"))
}

#[cold]
fn inject_slow(site: &str, label: &str) {
    match draw_fire(site, label) {
        Some((FaultKind::Panic, msg)) => panic!("{msg}"),
        Some((FaultKind::Delay(ms), _)) => std::thread::sleep(Duration::from_millis(ms)),
        // The I/O kinds have no meaning at a compute site; arming one
        // there is a no-op rather than an error so a single broad spec
        // can cover heterogeneous sites.
        Some((FaultKind::Err | FaultKind::Short, _)) | None => {}
    }
}

#[cold]
fn inject_io_slow(site: &str, label: &str) -> Option<IoFault> {
    match draw_fire(site, label) {
        Some((FaultKind::Panic, msg)) => panic!("{msg}"),
        Some((FaultKind::Delay(ms), _)) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Some((FaultKind::Err, _)) => Some(IoFault::Err),
        Some((FaultKind::Short, _)) => Some(IoFault::Short),
        None => None,
    }
}

/// The shared matching/draw loop: the first armed entry matching
/// `site`/`label` whose per-call draw clears its rate wins.
fn draw_fire(site: &str, label: &str) -> Option<(FaultKind, String)> {
    let mut fire: Option<(FaultKind, String)> = None;
    {
        let entries = lock(&FAULTS);
        let unit = lock(&CURRENT_UNIT).clone();
        for e in entries.iter() {
            if e.site != site {
                continue;
            }
            if let Some(scope) = &e.scope {
                let unit_matches = unit.as_deref() == Some(scope.as_str());
                if scope != label && !unit_matches {
                    continue;
                }
            }
            let call = e.calls.fetch_add(1, Ordering::Relaxed);
            let draw = splitmix64(e.seed ^ call.wrapping_mul(0xA24BAED4963EE407));
            if (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < e.rate {
                fire = Some((e.kind, format!("injected fault at {site} ({label})")));
                break;
            }
        }
        // Locks drop here: panicking while holding them would poison
        // the harness for every later site.
    }
    fire
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_by_default_and_after_clear() {
        let _g = exclusive_for_tests();
        clear();
        inject("build", "Mesh"); // must not fire
        install_spec("build:panic:1:1").unwrap();
        clear();
        inject("build", "Mesh");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "build:panic:1",
            "build:teleport:1:1",
            "build:panic:0:1",
            "build:panic:2:1",
            "build:panic:1:x",
            "build:delayxx:1:1",
        ] {
            assert!(parse_entry(bad).is_err(), "{bad:?} should not parse");
        }
        let e = parse_entry("store-read:err:0.1:4").unwrap();
        assert_eq!(e.kind, FaultKind::Err);
        let e = parse_entry("ledger-append@serve:short:1:2").unwrap();
        assert_eq!(e.kind, FaultKind::Short);
        assert_eq!(e.scope.as_deref(), Some("serve"));
        let e = parse_entry("metric@fig9:delay250:0.5:7").unwrap();
        assert_eq!(e.site, "metric");
        assert_eq!(e.scope.as_deref(), Some("fig9"));
        assert_eq!(e.kind, FaultKind::Delay(250));
        assert_eq!(e.rate, 0.5);
        assert_eq!(e.seed, 7);
    }

    #[test]
    fn rate_one_panic_fires_with_site_and_label_match() {
        let _g = exclusive_for_tests();
        install_spec("build@Tiers:panic:1:3").unwrap();
        inject("metric", "Tiers"); // wrong site
        inject("build", "Mesh"); // wrong label, no unit
        let err = std::panic::catch_unwind(|| inject("build", "Tiers"))
            .expect_err("scoped entry must fire");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault at build (Tiers)"), "{msg}");
        clear();
    }

    #[test]
    fn unit_scope_matches_current_unit() {
        let _g = exclusive_for_tests();
        install_spec("build@fig9:panic:1:3").unwrap();
        set_current_unit(Some("tab1"));
        inject("build", "Mesh"); // other unit: no fire
        set_current_unit(Some("fig9"));
        let r = std::panic::catch_unwind(|| inject("build", "Mesh"));
        set_current_unit(None);
        clear();
        r.expect_err("unit-scoped entry must fire");
    }

    #[test]
    fn io_kinds_fire_at_io_sites_and_are_ignored_by_inject() {
        let _g = exclusive_for_tests();
        install_spec("store-read:err:1:5,sock-write:short:1:5").unwrap();
        assert_eq!(inject_io("store-read", "get"), Some(IoFault::Err));
        assert_eq!(inject_io("sock-write", "daemon"), Some(IoFault::Short));
        assert_eq!(inject_io("store-write", "put"), None);
        // A compute-site call never surfaces (or panics on) an io kind.
        install_spec("build:err:1:5,build:short:1:5").unwrap();
        inject("build", "Mesh");
        clear();
    }

    #[test]
    fn inject_io_panic_kind_panics_like_inject() {
        let _g = exclusive_for_tests();
        install_spec("sock-read:panic:1:7").unwrap();
        let err = std::panic::catch_unwind(|| inject_io("sock-read", "daemon"))
            .expect_err("panic kind must fire at io sites too");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("injected fault at sock-read (daemon)"),
            "{msg}"
        );
        clear();
    }

    #[test]
    fn io_fault_rate_is_deterministic_per_call_index() {
        let _g = exclusive_for_tests();
        let pattern = |seed: u64| -> Vec<bool> {
            install_spec(&format!("store-read:err:0.5:{seed}")).unwrap();
            let p: Vec<bool> = (0..32)
                .map(|_| inject_io("store-read", "get").is_some())
                .collect();
            clear();
            p
        };
        let a = pattern(21);
        assert_eq!(a, pattern(21), "same seed, same firing pattern");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
    }

    #[test]
    fn fractional_rate_is_deterministic() {
        let _g = exclusive_for_tests();
        let pattern = |seed: u64| -> Vec<bool> {
            install_spec(&format!("build:panic:0.5:{seed}")).unwrap();
            let p: Vec<bool> = (0..32)
                .map(|_| std::panic::catch_unwind(|| inject("build", "x")).is_err())
                .collect();
            clear();
            p
        };
        let a = pattern(11);
        let b = pattern(11);
        assert_eq!(a, b, "same seed, same firing pattern");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
        let c = pattern(12);
        assert_ne!(a, c, "different seed should shift the pattern");
    }
}
