//! Minimal parallel map over `std::thread::scope`.
//!
//! The per-center loops of the ball-growing metrics are embarrassingly
//! parallel and CPU-bound, so plain scoped threads pulling chunks off a
//! shared atomic index are all we need (per the Tokio guide's own
//! advice, an async runtime buys nothing here).
//!
//! Work is handed out in contiguous chunks: the output vector is split
//! with `chunks_mut`, each chunk guarded by a `Mutex` that its owning
//! worker locks exactly once, and workers claim chunk indices from an
//! `AtomicUsize`. Output order always matches input order, so results
//! are identical for any thread count (including one), and a panicking
//! worker re-raises its *original* panic payload on the calling thread.

use crate::cancel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One contiguous output chunk: its start index in the full output plus
/// the slots themselves, locked exactly once by the claiming worker.
type Chunk<'a, R> = Mutex<(usize, &'a mut [Option<R>])>;

/// Apply `f` to every item, in parallel across up to
/// `available_parallelism` threads, preserving input order in the output.
/// Falls back to a sequential loop for small inputs.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(items, None, f)
}

/// [`par_map`] with an explicit worker count. `None` means
/// `available_parallelism`; `Some(1)` forces the sequential path (used
/// by the determinism tests to compare 1-thread vs N-thread runs).
pub fn par_map_threads<T, R, F>(items: &[T], threads: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(items.len().max(1));
    if threads <= 1 || items.len() < 4 {
        return items
            .iter()
            .map(|item| {
                cancel::checkpoint();
                f(item)
            })
            .collect();
    }
    // Capture the caller's ambient deadline, current trace span, and
    // any scoped sink override so workers observe the same cancellation
    // state the caller does, per-item spans parent on the caller's span
    // across threads, and a re-entrant context's private sink keeps
    // receiving its own workers' events.
    let ambient = cancel::current_deadline();
    let trace_parent = crate::trace::current_parent();
    let sink_override = crate::trace::current_override();

    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    // Chunks small enough that slow items don't serialize the tail, big
    // enough that the atomic index isn't contended.
    let chunk_len = (items.len() / (threads * 8)).max(1);
    let chunks: Vec<Chunk<'_, R>> = out
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(ci, slice)| Mutex::new((ci * chunk_len, slice)))
        .collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let work = || loop {
                        // Expired deadlines stop workers at the next
                        // chunk boundary via a `Cancelled` panic.
                        cancel::checkpoint();
                        let ci = next.fetch_add(1, Ordering::Relaxed);
                        if ci >= chunks.len() {
                            break;
                        }
                        // Each chunk is locked exactly once, by the worker
                        // that claimed its index — never contended.
                        let mut guard = chunks[ci]
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        let (start, slice) = &mut *guard;
                        for (k, slot) in slice.iter_mut().enumerate() {
                            *slot = Some(f(&items[*start + k]));
                        }
                    };
                    let scoped = || {
                        crate::trace::with_parent(trace_parent, || match &ambient {
                            Some(d) => cancel::with_deadline(d.clone(), work),
                            None => work(),
                        })
                    };
                    match &sink_override {
                        Some(sink) => crate::trace::with_sink(sink.clone(), scoped),
                        None => scoped(),
                    }
                })
            })
            .collect();
        // Join explicitly so a worker panic surfaces its original
        // payload here, not a generic "a scoped thread panicked".
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });

    out.into_iter()
        .map(|slot| slot.expect("every output slot filled"))
        .collect()
}

/// [`par_map_threads`] with per-item panic isolation: a panicking item
/// yields `Err(message)` in its slot while every other item completes,
/// and output order still matches input order — so results (including
/// which item failed and with what message) are bit-identical at any
/// thread count. Deadline cancellations are *not* caught: a `Cancelled`
/// payload unwinds the whole map so timed-out runs stop promptly.
pub fn par_map_catch<T, R, F>(items: &[T], threads: Option<usize>, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(items, threads, |item| {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
            Ok(r) => Ok(r),
            Err(payload) => {
                if cancel::is_cancelled_payload(payload.as_ref()) {
                    std::panic::resume_unwind(payload);
                }
                Err(panic_message(payload.as_ref()))
            }
        }
    })
}

/// Extract a short, single-line message from a panic payload: the
/// `&str`/`String` panics carry, a fixed marker for deadline
/// cancellations, and a placeholder for exotic payloads. Truncated to
/// 200 characters — what the run ledger records as the redacted payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if cancel::is_cancelled_payload(payload) {
        cancel::Cancelled.to_string()
    } else {
        "non-string panic payload".to_string()
    };
    let line = msg.lines().next().unwrap_or_default();
    let mut out: String = line.chars().take(200).collect();
    if line.chars().count() > 200 {
        out.push('…');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(&[] as &[i32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn small_input_sequential_path() {
        let out = par_map(&[1, 2, 3], |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn heavy_work_all_items_processed() {
        let items: Vec<u64> = (0..50).collect();
        let out = par_map(&items, |&x| (0..1000).fold(x, |a, b| a.wrapping_add(b)));
        assert_eq!(out.len(), 50);
        assert_eq!(out[0], (0..1000).sum::<u64>());
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<u64> = (0..257).collect();
        let seq = par_map_threads(&items, Some(1), |&x| x.wrapping_mul(0x9E3779B97F4A7C15));
        for threads in [2, 3, 8] {
            let par = par_map_threads(&items, Some(threads), |&x| {
                x.wrapping_mul(0x9E3779B97F4A7C15)
            });
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn catch_isolates_panicking_item_bit_identical_across_threads() {
        let items: Vec<usize> = (0..97).collect();
        let run = |threads: usize| {
            par_map_catch(&items, Some(threads), |&x| {
                if x == 41 {
                    panic!("item {x} exploded");
                }
                x.wrapping_mul(0x9E3779B97F4A7C15)
            })
        };
        let seq = run(1);
        assert_eq!(seq.len(), 97);
        assert_eq!(seq[41], Err("item 41 exploded".to_string()));
        assert!(seq.iter().enumerate().all(|(i, r)| (i == 41) != r.is_ok()));
        for threads in [2, 8] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn catch_does_not_swallow_cancellation() {
        let d = cancel::Deadline::cancel_only();
        d.token().cancel();
        let items: Vec<usize> = (0..64).collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cancel::with_deadline(d, || par_map_catch(&items, Some(4), |&x| x))
        }))
        .expect_err("cancelled map must unwind");
        assert!(cancel::is_cancelled_payload(err.as_ref()));
    }

    #[test]
    fn expired_deadline_cancels_parallel_map() {
        let d = cancel::Deadline::after(std::time::Duration::from_millis(5));
        let items: Vec<u64> = (0..4096).collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cancel::with_deadline(d, || {
                par_map_threads(&items, Some(4), |&x| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    x
                })
            })
        }))
        .expect_err("deadline must cancel the map");
        assert!(cancel::is_cancelled_payload(err.as_ref()));
    }

    #[test]
    fn panic_message_redacts_to_one_line() {
        let payload: Box<dyn std::any::Any + Send> =
            Box::new(format!("first line {}\nsecond line", "x".repeat(300)));
        let msg = panic_message(payload.as_ref());
        assert!(!msg.contains('\n'));
        assert_eq!(msg.chars().count(), 201); // 200 + ellipsis
        assert!(msg.ends_with('…'));
    }

    #[test]
    fn worker_panic_propagates_original_payload() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                if x == 33 {
                    panic!("item 33 exploded");
                }
                x
            })
        }));
        let payload = result.expect_err("must propagate the panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("item 33 exploded"), "payload was: {msg}");
    }
}
