//! Structured span tracing for the parallel engines.
//!
//! [`Instrument`](crate::Instrument) answers "how much work happened";
//! this module answers "when, on which thread, and inside what". A
//! [`span`] marks a region of work with enter/exit events carrying a
//! span id, the parent span's id, a per-thread id, and monotonic
//! nanosecond timestamps relative to the sink's epoch. Events land in a
//! lock-sharded in-memory buffer ([`TraceSink`]) that the CLI flushes to
//! an append-only JSONL event log; `repro trace export` converts a log
//! to Chrome trace-event JSON for `chrome://tracing` / Perfetto.
//!
//! Design constraints, in order:
//!
//! 1. **Zero-cost when off.** With no sink installed, [`span`] is a
//!    single relaxed atomic load returning an inert guard — the engines
//!    keep their spans unconditionally, like [`faults::inject`]
//!    (crate::faults) keeps its sites.
//! 2. **Never perturbs results.** Tracing only ever *observes*: no
//!    event influences scheduling, seeding, or output. Archived JSONs
//!    are byte-identical with tracing on or off; timestamps exist only
//!    in trace files.
//! 3. **Well-formed under unwinding.** The exit event is emitted from
//!    the guard's `Drop`, so panics (injected faults, deadline
//!    cancellations) still close every span they unwind through —
//!    parents close after children, every exit matches an enter.
//!
//! The current span is *ambient*, mirroring [`cancel`](crate::cancel):
//! a thread-local parent id that [`par_map`](crate::par_map) captures on
//! entry and re-installs inside each scoped worker via [`with_parent`],
//! so per-item spans created deep inside an engine parent correctly
//! across threads.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Number of event-buffer shards; events shard by thread id, so a
/// thread's own events stay in push order within one shard.
const SHARDS: usize = 16;

/// One trace event. Timestamps are nanoseconds since the sink's epoch;
/// span ids start at 1 and parent id 0 means "root" (no enclosing span).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A span was entered.
    Enter {
        /// Unique span id (process-wide, never reused).
        id: u64,
        /// Enclosing span's id, 0 for roots.
        parent: u64,
        /// Trace thread id of the entering thread.
        tid: u64,
        /// Span name (a static site label, e.g. `"balls"`).
        name: &'static str,
        /// Optional dynamic label (unit id, metric name, …).
        label: Option<Box<str>>,
        /// Nanoseconds since the sink's epoch.
        t_ns: u64,
    },
    /// A span was exited (emitted on guard drop, including unwinds).
    Exit {
        /// Id of the span being closed.
        id: u64,
        /// Trace thread id (same thread that entered).
        tid: u64,
        /// Span name, repeated so rollups need no enter/exit matching.
        name: &'static str,
        /// Nanoseconds since the sink's epoch.
        t_ns: u64,
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
}

/// Aggregated view of all completed spans sharing a name.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRollup {
    /// Span name.
    pub name: &'static str,
    /// Completed spans with this name.
    pub count: u64,
    /// Total duration across them, nanoseconds (spans on concurrent
    /// threads sum, so this can exceed wall-clock — same convention as
    /// [`PhaseTiming`](crate::PhaseTiming)).
    pub nanos: u64,
}

/// Buffer positions returned by [`TraceSink::mark`]; pass back to
/// [`TraceSink::rollup_since`] to aggregate only the spans completed
/// after the mark (the per-unit rollups of `repro --timings`).
#[derive(Clone, Debug)]
pub struct Mark(Vec<usize>);

/// The lock-sharded in-memory event buffer. Cheap to share behind an
/// `Arc`; all methods take `&self`. Install one process-wide with
/// [`install`] to turn every [`span`] call site live.
#[derive(Debug)]
pub struct TraceSink {
    epoch: Instant,
    shards: [Mutex<Vec<TraceEvent>>; SHARDS],
    next_id: AtomicU64,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// A fresh, empty sink; its epoch (timestamp zero) is now.
    pub fn new() -> TraceSink {
        TraceSink {
            epoch: Instant::now(),
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            next_id: AtomicU64::new(1),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push(&self, tid: u64, ev: TraceEvent) {
        let shard = &self.shards[(tid as usize) % SHARDS];
        shard.lock().unwrap_or_else(|p| p.into_inner()).push(ev);
    }

    /// Copy out every buffered event, shard by shard. Within a thread's
    /// events order matches emission order; cross-thread interleaving is
    /// by shard, not time (consumers order by `t_ns` where they care).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend_from_slice(&shard.lock().unwrap_or_else(|p| p.into_inner()));
        }
        out
    }

    /// Record the current buffer positions; spans completing after this
    /// point are what [`Self::rollup_since`] aggregates.
    pub fn mark(&self) -> Mark {
        Mark(
            self.shards
                .iter()
                .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
                .collect(),
        )
    }

    /// Copy out the events recorded since `mark` and return the new
    /// position — the incremental read behind progress streaming
    /// (`topogen-serve` polls a per-request sink and forwards fresh
    /// events as NDJSON lines while the engines run).
    pub fn drain_since(&self, mark: &Mark) -> (Vec<TraceEvent>, Mark) {
        let mut out = Vec::new();
        let mut next = Vec::with_capacity(SHARDS);
        for (i, shard) in self.shards.iter().enumerate() {
            let events = shard.lock().unwrap_or_else(|p| p.into_inner());
            let from = mark.0.get(i).copied().unwrap_or(0).min(events.len());
            out.extend_from_slice(&events[from..]);
            next.push(events.len());
        }
        (out, Mark(next))
    }

    /// Aggregate the spans completed since `mark` by name, sorted by
    /// name (deterministic regardless of thread interleaving).
    pub fn rollup_since(&self, mark: &Mark) -> Vec<SpanRollup> {
        let mut agg: Vec<SpanRollup> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let events = shard.lock().unwrap_or_else(|p| p.into_inner());
            let from = mark.0.get(i).copied().unwrap_or(0).min(events.len());
            for ev in &events[from..] {
                if let TraceEvent::Exit { name, dur_ns, .. } = ev {
                    if let Some(r) = agg.iter_mut().find(|r| r.name == *name) {
                        r.count += 1;
                        r.nanos += dur_ns;
                    } else {
                        agg.push(SpanRollup {
                            name,
                            count: 1,
                            nanos: *dur_ns,
                        });
                    }
                }
            }
        }
        agg.sort_by_key(|r| r.name);
        agg
    }

    /// Serialize every buffered event as JSON Lines (one event object
    /// per line), the on-disk format of `out/trace/<run>.jsonl`.
    pub fn write_jsonl(&self, w: &mut impl std::io::Write) -> std::io::Result<usize> {
        let events = self.snapshot();
        for ev in &events {
            writeln!(w, "{}", event_json(ev))?;
        }
        Ok(events.len())
    }
}

/// One event as a single-line JSON object.
pub fn event_json(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::Enter {
            id,
            parent,
            tid,
            name,
            label,
            t_ns,
        } => {
            let mut s = format!(
                "{{\"ev\":\"enter\",\"id\":{id},\"parent\":{parent},\"tid\":{tid},\"name\":\"{}\"",
                escape_json(name)
            );
            if let Some(l) = label {
                s.push_str(&format!(",\"label\":\"{}\"", escape_json(l)));
            }
            s.push_str(&format!(",\"t_ns\":{t_ns}}}"));
            s
        }
        TraceEvent::Exit {
            id,
            tid,
            name,
            t_ns,
            dur_ns,
        } => format!(
            "{{\"ev\":\"exit\",\"id\":{id},\"tid\":{tid},\"name\":\"{}\",\"t_ns\":{t_ns},\"dur_ns\":{dur_ns}}}",
            escape_json(name)
        ),
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Fast-path switch: one relaxed load decides whether [`span`] does any
/// work at all. Kept outside the `RwLock` so the disabled path never
/// touches a lock.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static RwLock<Option<Arc<TraceSink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<TraceSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Install (or with `None`, remove) the process-global trace sink. Like
/// the ambient store handle, the CLI installs one after parsing
/// `--trace` and deep call sites never thread a handle around.
pub fn install(sink: Option<Arc<TraceSink>>) {
    ENABLED.store(sink.is_some(), Ordering::Release);
    *slot().write().unwrap_or_else(|e| e.into_inner()) = sink;
}

thread_local! {
    /// Fast flag mirroring whether [`SINK_OVERRIDE`] holds a value, so
    /// the common no-override path costs one `Cell` read.
    static OVERRIDDEN: Cell<bool> = const { Cell::new(false) };
    /// Per-thread sink override: `Some(Some(sink))` routes this thread's
    /// spans to a private sink, `Some(None)` disables tracing for this
    /// thread even when a process-global sink is installed. `None`
    /// falls through to the global slot. This is what lets two
    /// concurrent `topogen-serve` requests stream disjoint progress
    /// traces from one process.
    static SINK_OVERRIDE: RefCell<Option<Option<Arc<TraceSink>>>> = const { RefCell::new(None) };
}

/// The calling thread's sink override, if one is installed (the outer
/// `Option` distinguishes "no override" from "overridden to off").
/// `par_map` captures this on entry and re-installs it inside each
/// worker, like the ambient deadline and trace parent.
pub fn current_override() -> Option<Option<Arc<TraceSink>>> {
    if !OVERRIDDEN.with(Cell::get) {
        return None;
    }
    SINK_OVERRIDE.with(|s| s.borrow().clone())
}

/// Run `f` with `sink` as this thread's trace sink — `None` explicitly
/// disables tracing for the scope — restoring the previous state
/// afterwards (unwind-safe via a drop guard). Unlike [`install`], this
/// never touches the process-global slot, so concurrent scopes on
/// different threads are independent: the re-entrant alternative the
/// engine contexts use.
pub fn with_sink<R>(sink: Option<Arc<TraceSink>>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Option<Arc<TraceSink>>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            OVERRIDDEN.with(|c| c.set(prev.is_some()));
            SINK_OVERRIDE.with(|s| *s.borrow_mut() = prev);
        }
    }
    let prev = SINK_OVERRIDE.with(|s| s.borrow_mut().replace(sink));
    OVERRIDDEN.with(|c| c.set(true));
    let _restore = Restore(prev);
    f()
}

/// The ambient sink, if tracing is on: the thread's scoped override
/// when one is installed (see [`with_sink`]), else the process-global
/// slot. The fully-disabled path is one `Cell` read plus one relaxed
/// atomic load.
pub fn active() -> Option<Arc<TraceSink>> {
    if OVERRIDDEN.with(Cell::get) {
        return SINK_OVERRIDE.with(|s| s.borrow().clone()).flatten();
    }
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    slot().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Process-wide trace-thread-id allocator; ids are small sequential
/// labels assigned lazily per OS thread, not OS tids.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static PARENT: Cell<u64> = const { Cell::new(0) };
}

fn thread_tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// The calling thread's current span id (0 = none). `par_map` captures
/// this on entry and re-installs it inside each worker so per-item
/// spans parent across threads.
pub fn current_parent() -> u64 {
    PARENT.with(|p| p.get())
}

/// Run `f` with `parent` installed as this thread's current span,
/// restoring the previous value afterwards (unwind-safe via a drop
/// guard) — the cross-thread half of parent propagation.
pub fn with_parent<R>(parent: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            PARENT.with(|p| p.set(self.0));
        }
    }
    let prev = PARENT.with(|p| p.replace(parent));
    let _restore = Restore(prev);
    f()
}

/// Open a span; the returned guard emits the exit event when dropped
/// (including during unwinding). Must be dropped on the thread that
/// created it — every current call site holds it across a lexical scope.
#[must_use = "dropping immediately produces a zero-length span"]
pub fn span(name: &'static str) -> SpanGuard {
    match active() {
        Some(sink) => SpanGuard::enter(sink, name, None),
        None => SpanGuard { inner: None },
    }
}

/// [`span`] with a dynamic label (unit id, metric name, …). The label
/// is only copied when a sink is installed.
#[must_use = "dropping immediately produces a zero-length span"]
pub fn span_labeled(name: &'static str, label: &str) -> SpanGuard {
    match active() {
        Some(sink) => SpanGuard::enter(sink, name, Some(label.into())),
        None => SpanGuard { inner: None },
    }
}

/// RAII handle for an open span. Inert (a `None`) when tracing is off.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

#[derive(Debug)]
struct GuardInner {
    sink: Arc<TraceSink>,
    id: u64,
    tid: u64,
    name: &'static str,
    entered_ns: u64,
    prev_parent: u64,
}

impl SpanGuard {
    fn enter(sink: Arc<TraceSink>, name: &'static str, label: Option<Box<str>>) -> SpanGuard {
        let id = sink.next_id.fetch_add(1, Ordering::Relaxed);
        let tid = thread_tid();
        let prev_parent = PARENT.with(|p| p.replace(id));
        let t_ns = sink.now_ns();
        sink.push(
            tid,
            TraceEvent::Enter {
                id,
                parent: prev_parent,
                tid,
                name,
                label,
                t_ns,
            },
        );
        SpanGuard {
            inner: Some(GuardInner {
                sink,
                id,
                tid,
                name,
                entered_ns: t_ns,
                prev_parent,
            }),
        }
    }

    /// This span's id (0 when tracing is off) — what a caller hands to
    /// [`with_parent`] on another thread.
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |g| g.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            PARENT.with(|p| p.set(g.prev_parent));
            let t_ns = g.sink.now_ns();
            g.sink.push(
                g.tid,
                TraceEvent::Exit {
                    id: g.id,
                    tid: g.tid,
                    name: g.name,
                    t_ns,
                    dur_ns: t_ns.saturating_sub(g.entered_ns),
                },
            );
        }
    }
}

/// Serialize access to the process-global sink for tests (mirrors
/// [`faults::exclusive_for_tests`](crate::faults)); hold the guard for
/// the whole test so concurrent tests don't fight over [`install`].
pub fn exclusive_for_tests() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        let _gate = exclusive_for_tests();
        install(None);
        let g = span("noop");
        assert_eq!(g.id(), 0);
        drop(g);
        assert_eq!(current_parent(), 0);
    }

    #[test]
    fn spans_nest_and_events_pair() {
        let _gate = exclusive_for_tests();
        let sink = Arc::new(TraceSink::new());
        install(Some(sink.clone()));
        {
            let outer = span_labeled("outer", "o");
            assert_eq!(current_parent(), outer.id());
            {
                let _inner = span("inner");
                assert_ne!(current_parent(), outer.id());
            }
            assert_eq!(current_parent(), outer.id());
        }
        install(None);
        let events = sink.snapshot();
        assert_eq!(events.len(), 4);
        let enters: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Enter { .. }))
            .collect();
        let exits: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Exit { .. }))
            .collect();
        assert_eq!(enters.len(), 2);
        assert_eq!(exits.len(), 2);
        // The inner span parents on the outer one.
        let TraceEvent::Enter {
            id: outer_id,
            parent: 0,
            ..
        } = enters[0]
        else {
            panic!("outer enter malformed: {:?}", enters[0]);
        };
        let TraceEvent::Enter { parent, .. } = enters[1] else {
            unreachable!()
        };
        assert_eq!(parent, outer_id);
    }

    #[test]
    fn exit_emitted_during_unwind() {
        let _gate = exclusive_for_tests();
        let sink = Arc::new(TraceSink::new());
        install(Some(sink.clone()));
        let _ = std::panic::catch_unwind(|| {
            let _s = span("doomed");
            panic!("boom");
        });
        install(None);
        let events = sink.snapshot();
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(matches!(events[1], TraceEvent::Exit { .. }));
        assert_eq!(current_parent(), 0, "parent restored by the unwind");
    }

    #[test]
    fn rollup_aggregates_since_mark() {
        let _gate = exclusive_for_tests();
        let sink = Arc::new(TraceSink::new());
        install(Some(sink.clone()));
        drop(span("before"));
        let mark = sink.mark();
        drop(span("work"));
        drop(span("work"));
        drop(span("other"));
        install(None);
        let roll = sink.rollup_since(&mark);
        assert_eq!(roll.len(), 2);
        assert_eq!(roll[0].name, "other");
        assert_eq!(roll[0].count, 1);
        assert_eq!(roll[1].name, "work");
        assert_eq!(roll[1].count, 2);
        // The pre-mark span is excluded.
        assert!(roll.iter().all(|r| r.name != "before"));
    }

    #[test]
    fn parent_propagates_with_with_parent() {
        let _gate = exclusive_for_tests();
        let sink = Arc::new(TraceSink::new());
        install(Some(sink.clone()));
        let outer = span("outer");
        let parent = current_parent();
        let child_parent = std::thread::scope(|s| {
            s.spawn(|| {
                with_parent(parent, || {
                    let _c = span("child");
                    // Inside the worker the child's parent is the
                    // cross-thread outer span.
                    current_parent()
                })
            })
            .join()
            .unwrap()
        });
        assert_ne!(child_parent, 0);
        drop(outer);
        install(None);
        let events = sink.snapshot();
        let child_enter = events.iter().find_map(|e| match e {
            TraceEvent::Enter {
                name: "child",
                parent,
                ..
            } => Some(*parent),
            _ => None,
        });
        assert_eq!(child_enter, Some(parent));
    }

    #[test]
    fn jsonl_lines_are_valid_objects() {
        let _gate = exclusive_for_tests();
        let sink = Arc::new(TraceSink::new());
        install(Some(sink.clone()));
        drop(span_labeled("unit", "tab\"1\n"));
        install(None);
        let mut buf = Vec::new();
        let n = sink.write_jsonl(&mut buf).unwrap();
        assert_eq!(n, 2);
        let text = String::from_utf8(buf).unwrap();
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'));
        }
        assert!(text.contains("\\\"1\\n"), "label escaped: {text}");
    }

    #[test]
    fn escape_json_handles_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
