//! Lightweight instrumentation sink for the parallel engines.
//!
//! [`Instrument`] is a set of atomic counters plus a coarse phase-timer
//! that worker threads update while an engine runs — the shared-ball
//! `BallPlan` of `topogen-metrics` or the link-value pipeline of
//! `topogen-hierarchy`; [`Instrument::report`] snapshots it into a plain
//! [`InstrumentReport`] that callers can aggregate or serialize. The
//! counters exist to make the engines' sharing *observable*: a suite run
//! can assert (and a timing report can show) that the BFS/ball work per
//! center no longer scales with the number of registered metrics, and
//! that the hierarchy stage's DAG/arena volumes match expectations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Shared counters + phase wall-times, updated concurrently by engine
/// workers. All methods take `&self`; ordering is relaxed (counters are
/// independent tallies, read only after the run joins its workers).
#[derive(Debug, Default)]
pub struct Instrument {
    /// Distance-field computations (one BFS-equivalent traversal each).
    bfs_runs: AtomicU64,
    /// Ball subgraphs constructed.
    balls_built: AtomicU64,
    /// Reuses of an already-built ball or distance field by an
    /// additional consumer (what the shared plan saves over per-metric
    /// `balls_up_to` calls).
    ball_cache_hits: AtomicU64,
    /// Partitioner restarts performed by resilience consumers.
    partitioner_restarts: AtomicU64,
    /// Path-DAG states visited by the link-value traversal stage (§5).
    dag_states: AtomicU64,
    /// (source, target) pairs accumulated into traversal sets.
    pairs_accumulated: AtomicU64,
    /// Bytes held by the traversal-set arena (offsets + flat pair
    /// buffer), summed over link-value runs.
    arena_bytes: AtomicU64,
    /// `u64` bitset words touched by the batched BFS kernels (frontier
    /// OR/AND-NOT sweeps plus bottom-up pulls).
    words_scanned: AtomicU64,
    /// Frontier-expansion passes executed by the batched BFS kernels
    /// (one per level per direction-optimized sweep).
    frontier_passes: AtomicU64,
    /// Peak per-source scratch bytes of the hierarchy traversal stage
    /// (a max across sources, not a sum — the compressed frontier-local
    /// representation's high-water mark).
    scratch_bytes: AtomicU64,
    /// Sorted runs spilled to disk by memory-budgeted streaming builds.
    spill_runs: AtomicU64,
    /// Artifact-store lookups served from disk (`repro --cache`).
    store_hits: AtomicU64,
    /// Artifact-store lookups that fell through to computation.
    store_misses: AtomicU64,
    /// Bytes of verified store entries read.
    store_bytes_read: AtomicU64,
    /// Bytes of new store entries written.
    store_bytes_written: AtomicU64,
    /// Accumulated wall time per named phase, in nanoseconds.
    phase_nanos: Mutex<Vec<(String, u64)>>,
}

impl Instrument {
    /// A fresh sink with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` distance-field computations.
    pub fn add_bfs_runs(&self, n: u64) {
        self.bfs_runs.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` ball subgraph constructions.
    pub fn add_balls_built(&self, n: u64) {
        self.balls_built.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` reuses of shared per-center work.
    pub fn add_ball_cache_hits(&self, n: u64) {
        self.ball_cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` partitioner restarts.
    pub fn add_partitioner_restarts(&self, n: u64) {
        self.partitioner_restarts.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` path-DAG states visited by the traversal stage.
    pub fn add_dag_states(&self, n: u64) {
        self.dag_states.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` pairs accumulated into traversal sets.
    pub fn add_pairs_accumulated(&self, n: u64) {
        self.pairs_accumulated.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` bytes held by a traversal-set arena.
    pub fn add_arena_bytes(&self, n: u64) {
        self.arena_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` bitset words scanned by a batched BFS kernel.
    pub fn add_words_scanned(&self, n: u64) {
        self.words_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` frontier-expansion passes by a batched BFS kernel.
    pub fn add_frontier_passes(&self, n: u64) {
        self.frontier_passes.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the per-source scratch high-water mark to at least `n`
    /// bytes (deterministic: a max over sources is thread-order free).
    pub fn record_scratch_peak(&self, n: u64) {
        self.scratch_bytes.fetch_max(n, Ordering::Relaxed);
    }

    /// Record `n` spilled streaming-build runs.
    pub fn add_spill_runs(&self, n: u64) {
        self.spill_runs.fetch_add(n, Ordering::Relaxed);
    }

    /// Record artifact-store traffic: `hits`/`misses` lookups plus the
    /// bytes read from and written to the store.
    pub fn add_store_traffic(&self, hits: u64, misses: u64, bytes_read: u64, bytes_written: u64) {
        self.store_hits.fetch_add(hits, Ordering::Relaxed);
        self.store_misses.fetch_add(misses, Ordering::Relaxed);
        self.store_bytes_read
            .fetch_add(bytes_read, Ordering::Relaxed);
        self.store_bytes_written
            .fetch_add(bytes_written, Ordering::Relaxed);
    }

    /// Add wall time to the named phase (accumulates across threads, so
    /// parallel phases can exceed elapsed wall-clock time).
    pub fn add_phase(&self, name: &str, elapsed: Duration) {
        let nanos = elapsed.as_nanos() as u64;
        let mut phases = self.phase_nanos.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(entry) = phases.iter_mut().find(|(n, _)| n == name) {
            entry.1 += nanos;
        } else {
            phases.push((name.to_string(), nanos));
        }
    }

    /// Snapshot the counters into a plain report.
    pub fn report(&self) -> InstrumentReport {
        let phases = self
            .phase_nanos
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(name, nanos)| PhaseTiming {
                name: name.clone(),
                seconds: *nanos as f64 / 1e9,
            })
            .collect();
        InstrumentReport {
            bfs_runs: self.bfs_runs.load(Ordering::Relaxed),
            balls_built: self.balls_built.load(Ordering::Relaxed),
            ball_cache_hits: self.ball_cache_hits.load(Ordering::Relaxed),
            partitioner_restarts: self.partitioner_restarts.load(Ordering::Relaxed),
            dag_states: self.dag_states.load(Ordering::Relaxed),
            pairs_accumulated: self.pairs_accumulated.load(Ordering::Relaxed),
            arena_bytes: self.arena_bytes.load(Ordering::Relaxed),
            words_scanned: self.words_scanned.load(Ordering::Relaxed),
            frontier_passes: self.frontier_passes.load(Ordering::Relaxed),
            scratch_bytes: self.scratch_bytes.load(Ordering::Relaxed),
            spill_runs: self.spill_runs.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_misses: self.store_misses.load(Ordering::Relaxed),
            store_bytes_read: self.store_bytes_read.load(Ordering::Relaxed),
            store_bytes_written: self.store_bytes_written.load(Ordering::Relaxed),
            phases,
        }
    }
}

/// Process-wide high-water mark of arena residency, in bytes.
///
/// Individual [`Instrument`] sinks *sum* `arena_bytes` across runs,
/// which answers "how much arena traffic" but not "how big did a single
/// resident arena get". The runner wants the latter per unit, so the
/// traversal stage also publishes each arena's size here via
/// [`record_arena_highwater`]; the runner drains the maximum with
/// [`take_arena_highwater`] around each unit attempt.
static ARENA_HIGHWATER: AtomicU64 = AtomicU64::new(0);

/// Raise the process-wide arena high-water mark to at least `bytes`.
pub fn record_arena_highwater(bytes: u64) {
    ARENA_HIGHWATER.fetch_max(bytes, Ordering::Relaxed);
}

/// Read and reset the process-wide arena high-water mark.
///
/// Returns the largest single arena observed since the previous call
/// (0 when no arena was built in the window).
pub fn take_arena_highwater() -> u64 {
    ARENA_HIGHWATER.swap(0, Ordering::Relaxed)
}

/// Process-wide tally of streaming-build spill runs, mirroring
/// [`ARENA_HIGHWATER`]'s publish/drain shape: topology builds happen
/// deep inside store cache-miss closures with no instrument in reach,
/// so the builder's caller publishes here and the runner drains the
/// count into each unit's timing report.
static SPILL_RUNS: AtomicU64 = AtomicU64::new(0);

/// Record `n` spilled streaming-build runs against the process tally.
pub fn record_spill_runs(n: u64) {
    SPILL_RUNS.fetch_add(n, Ordering::Relaxed);
}

/// Read and reset the process-wide spill-run tally.
pub fn take_spill_runs() -> u64 {
    SPILL_RUNS.swap(0, Ordering::Relaxed)
}

/// Wall time attributed to one named engine phase.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTiming {
    /// Phase name (`"distances"`, `"balls"`, or a metric's name).
    pub name: String,
    /// Accumulated wall time in seconds (summed across worker threads).
    pub seconds: f64,
}

/// Plain snapshot of an [`Instrument`] after a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InstrumentReport {
    /// Distance-field computations performed.
    pub bfs_runs: u64,
    /// Ball subgraphs constructed.
    pub balls_built: u64,
    /// Reuses of shared per-center work by additional consumers.
    pub ball_cache_hits: u64,
    /// Partitioner restarts performed.
    pub partitioner_restarts: u64,
    /// Path-DAG states visited by the link-value traversal stage.
    pub dag_states: u64,
    /// Pairs accumulated into traversal sets.
    pub pairs_accumulated: u64,
    /// Bytes held by traversal-set arenas.
    pub arena_bytes: u64,
    /// Bitset words touched by the batched BFS kernels.
    pub words_scanned: u64,
    /// Frontier-expansion passes executed by the batched BFS kernels.
    pub frontier_passes: u64,
    /// Peak per-source hierarchy-traversal scratch bytes (max, not sum).
    pub scratch_bytes: u64,
    /// Sorted runs spilled by memory-budgeted streaming builds.
    pub spill_runs: u64,
    /// Artifact-store lookups served from disk.
    pub store_hits: u64,
    /// Artifact-store lookups that fell through to computation.
    pub store_misses: u64,
    /// Bytes of verified store entries read.
    pub store_bytes_read: u64,
    /// Bytes of new store entries written.
    pub store_bytes_written: u64,
    /// Per-phase accumulated wall times.
    pub phases: Vec<PhaseTiming>,
}

impl InstrumentReport {
    /// Merge another report into this one (summing counters and phases),
    /// for aggregating per-topology runs into a suite-level report.
    pub fn merge(&mut self, other: &InstrumentReport) {
        self.bfs_runs += other.bfs_runs;
        self.balls_built += other.balls_built;
        self.ball_cache_hits += other.ball_cache_hits;
        self.partitioner_restarts += other.partitioner_restarts;
        self.dag_states += other.dag_states;
        self.pairs_accumulated += other.pairs_accumulated;
        self.arena_bytes += other.arena_bytes;
        self.words_scanned += other.words_scanned;
        self.frontier_passes += other.frontier_passes;
        self.scratch_bytes = self.scratch_bytes.max(other.scratch_bytes);
        self.spill_runs += other.spill_runs;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.store_bytes_read += other.store_bytes_read;
        self.store_bytes_written += other.store_bytes_written;
        for p in &other.phases {
            if let Some(mine) = self.phases.iter_mut().find(|q| q.name == p.name) {
                mine.seconds += p.seconds;
            } else {
                self.phases.push(p.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let ins = Instrument::new();
        ins.add_bfs_runs(3);
        ins.add_bfs_runs(2);
        ins.add_balls_built(7);
        ins.add_ball_cache_hits(4);
        ins.add_partitioner_restarts(9);
        ins.add_dag_states(100);
        ins.add_pairs_accumulated(50);
        ins.add_arena_bytes(1024);
        ins.add_words_scanned(77);
        ins.add_frontier_passes(6);
        ins.add_store_traffic(2, 3, 100, 200);
        ins.add_store_traffic(1, 0, 50, 0);
        let r = ins.report();
        assert_eq!(r.bfs_runs, 5);
        assert_eq!(r.balls_built, 7);
        assert_eq!(r.ball_cache_hits, 4);
        assert_eq!(r.partitioner_restarts, 9);
        assert_eq!(r.dag_states, 100);
        assert_eq!(r.pairs_accumulated, 50);
        assert_eq!(r.arena_bytes, 1024);
        assert_eq!(r.words_scanned, 77);
        assert_eq!(r.frontier_passes, 6);
        assert_eq!(r.store_hits, 3);
        assert_eq!(r.store_misses, 3);
        assert_eq!(r.store_bytes_read, 150);
        assert_eq!(r.store_bytes_written, 200);
    }

    #[test]
    fn phases_accumulate_by_name() {
        let ins = Instrument::new();
        ins.add_phase("balls", Duration::from_millis(10));
        ins.add_phase("balls", Duration::from_millis(5));
        ins.add_phase("resilience", Duration::from_millis(2));
        let r = ins.report();
        assert_eq!(r.phases.len(), 2);
        let balls = r.phases.iter().find(|p| p.name == "balls").unwrap();
        assert!((balls.seconds - 0.015).abs() < 1e-9);
    }

    #[test]
    fn arena_highwater_tracks_max_and_resets() {
        // Single test touching the process-wide mark, so no cross-test
        // races inside this binary.
        take_arena_highwater();
        record_arena_highwater(100);
        record_arena_highwater(700);
        record_arena_highwater(300);
        assert_eq!(take_arena_highwater(), 700);
        assert_eq!(take_arena_highwater(), 0);
    }

    #[test]
    fn merge_sums_reports() {
        let a = Instrument::new();
        a.add_bfs_runs(1);
        a.add_dag_states(10);
        a.add_phase("x", Duration::from_secs(1));
        let b = Instrument::new();
        b.add_bfs_runs(2);
        b.add_dag_states(5);
        b.add_arena_bytes(64);
        b.add_words_scanned(8);
        b.add_frontier_passes(2);
        b.add_store_traffic(1, 2, 3, 4);
        b.add_phase("x", Duration::from_secs(2));
        b.add_phase("y", Duration::from_secs(3));
        let mut ra = a.report();
        ra.merge(&b.report());
        assert_eq!(ra.bfs_runs, 3);
        assert_eq!(ra.dag_states, 15);
        assert_eq!(ra.arena_bytes, 64);
        assert_eq!(ra.words_scanned, 8);
        assert_eq!(ra.frontier_passes, 2);
        assert_eq!(ra.store_hits, 1);
        assert_eq!(ra.store_misses, 2);
        assert_eq!(ra.store_bytes_read, 3);
        assert_eq!(ra.store_bytes_written, 4);
        assert_eq!(ra.phases.len(), 2);
        assert!((ra.phases[0].seconds - 3.0).abs() < 1e-9);
    }
}
