//! Re-entrant engine contexts.
//!
//! Historically the engines picked up their deadline from a thread-local
//! (installed once per unit by the suite runner) and their trace sink
//! from a process-global slot (installed once by the CLI). That shape
//! cannot express two concurrent runs with *different* deadlines and
//! trace streams in one process — exactly what a serving daemon needs.
//!
//! [`EngineCtx`] is the explicit alternative: a small, cloneable bundle
//! of the ambient state an engine run depends on. [`EngineCtx::scope`]
//! installs it thread-locally for the duration of a closure (and
//! [`par_map`](crate::par_map) re-installs the same state inside each
//! worker), so any number of contexts can be live at once on different
//! threads. The process-global installers ([`trace::install`]
//! (crate::trace::install), the runner's per-unit deadline) remain as a
//! compatibility shim for the batch CLI; [`EngineCtx::ambient`] snapshots
//! them into an explicit context.

use crate::cancel::{self, Deadline};
use crate::trace::{self, TraceSink};
use std::sync::Arc;

/// The ambient state one engine run executes under: an optional
/// cooperative deadline and an optional span sink. `Clone` is cheap
/// (an `Arc` and a token); a daemon clones one per request.
#[derive(Clone, Debug, Default)]
pub struct EngineCtx {
    /// Cooperative cancellation + wall-clock expiry observed by
    /// [`cancel::checkpoint`] inside the scope.
    pub deadline: Option<Deadline>,
    /// Span sink receiving every [`trace::span`] opened inside the
    /// scope. `None` means tracing is *off* for the scope, even when a
    /// process-global sink is installed — a context is authoritative.
    pub trace: Option<Arc<TraceSink>>,
}

impl EngineCtx {
    /// A context with no deadline and no tracing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the compatibility shims — the calling thread's ambient
    /// deadline and the process-global trace sink — into an explicit
    /// context. This is how the legacy entry points keep their exact
    /// behavior while routing through the context-threaded engine core.
    pub fn ambient() -> Self {
        EngineCtx {
            deadline: cancel::current_deadline(),
            trace: trace::active(),
        }
    }

    /// Replace the deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replace the trace sink.
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Run `f` with this context installed thread-locally: `checkpoint`
    /// observes `deadline`, `span` lands in `trace`, and `par_map`
    /// carries both into its workers. Nested scopes shadow and restore
    /// on exit (including unwinds), so scoping is re-entrant.
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        let body = || match &self.deadline {
            Some(d) => cancel::with_deadline(d.clone(), f),
            None => f(),
        };
        trace::with_sink(self.trace.clone(), body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::Cancelled;
    use crate::trace::TraceEvent;

    #[test]
    fn scope_installs_deadline_and_sink() {
        let sink = Arc::new(TraceSink::new());
        let d = Deadline::cancel_only();
        let token = d.token();
        let ctx = EngineCtx::new().with_deadline(d).with_trace(sink.clone());
        ctx.scope(|| {
            drop(trace::span("inside"));
            cancel::checkpoint(); // not yet cancelled: no unwind
        });
        assert_eq!(sink.snapshot().len(), 2);
        token.cancel();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.scope(cancel::checkpoint)
        }))
        .expect_err("cancelled context must unwind");
        assert!(err.downcast_ref::<Cancelled>().is_some());
        // Outside the scope neither the deadline nor the sink remain.
        cancel::checkpoint();
        assert_eq!(sink.snapshot().len(), 2, "span outside scope not recorded");
    }

    #[test]
    fn two_contexts_on_two_threads_stay_disjoint() {
        let mk = || Arc::new(TraceSink::new());
        let (a, b) = (mk(), mk());
        std::thread::scope(|s| {
            let ta = s.spawn(|| {
                EngineCtx::new().with_trace(a.clone()).scope(|| {
                    let items: Vec<u64> = (0..64).collect();
                    crate::par_map_threads(&items, Some(4), |&x| {
                        drop(trace::span("work-a"));
                        x
                    });
                })
            });
            let tb = s.spawn(|| {
                EngineCtx::new().with_trace(b.clone()).scope(|| {
                    let items: Vec<u64> = (0..64).collect();
                    crate::par_map_threads(&items, Some(4), |&x| {
                        drop(trace::span("work-b"));
                        x
                    });
                })
            });
            ta.join().unwrap();
            tb.join().unwrap();
        });
        let names = |sink: &TraceSink| {
            sink.snapshot()
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Enter { name, .. } => Some(*name),
                    _ => None,
                })
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(names(&a), std::collections::BTreeSet::from(["work-a"]));
        assert_eq!(names(&b), std::collections::BTreeSet::from(["work-b"]));
        assert_eq!(
            a.snapshot().len(),
            128,
            "64 enters + 64 exits, none leaked to the other context"
        );
    }

    #[test]
    fn empty_context_disables_ambient_tracing() {
        let _gate = trace::exclusive_for_tests();
        let global = Arc::new(TraceSink::new());
        trace::install(Some(global.clone()));
        EngineCtx::new().scope(|| drop(trace::span("muted")));
        drop(trace::span("loud"));
        trace::install(None);
        let names: Vec<&str> = global
            .snapshot()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Enter { name, .. } => Some(*name),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["loud"], "scoped span must not hit the global");
    }

    #[test]
    fn ambient_snapshot_round_trips() {
        let _gate = trace::exclusive_for_tests();
        let global = Arc::new(TraceSink::new());
        trace::install(Some(global.clone()));
        let ctx = EngineCtx::ambient();
        trace::install(None);
        assert!(ctx.trace.is_some(), "snapshot captured the global sink");
        ctx.scope(|| drop(trace::span("via-snapshot")));
        assert_eq!(global.snapshot().len(), 2);
    }
}
