//! Cooperative cancellation and wall-clock deadlines.
//!
//! The suite runner hands each experiment unit a [`Deadline`]; the
//! parallel engines call [`checkpoint`] between chunks and at phase
//! boundaries. When the deadline expires (or the token is cancelled
//! explicitly), `checkpoint` raises a [`Cancelled`] panic payload that
//! unwinds the unit cleanly through `catch_unwind` — workers never
//! block a timed-out run past their next chunk boundary.
//!
//! The active deadline is *ambient*: installed thread-locally with
//! [`with_deadline`], and re-installed by [`par_map`](crate::par_map)
//! inside each of its scoped workers, so engine code deep in the call
//! stack needs no plumbing. With no deadline installed, `checkpoint` is
//! a single thread-local read.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Panic payload raised by [`checkpoint`] when the ambient deadline has
/// expired or its token was cancelled. The suite runner downcasts this
/// to classify a unit as `timed-out` rather than `failed`.
#[derive(Clone, Copy, Debug)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("cancelled by deadline")
    }
}

/// Shared cancellation flag; cloned handles observe the same state.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; every holder of a clone observes it at its
    /// next [`checkpoint`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A cancellation token with an optional wall-clock expiry.
#[derive(Clone, Debug)]
pub struct Deadline {
    token: CancelToken,
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline expiring `limit` from now.
    pub fn after(limit: Duration) -> Self {
        Deadline {
            token: CancelToken::new(),
            at: Some(Instant::now() + limit),
        }
    }

    /// A pure cancellation handle with no wall-clock expiry.
    pub fn cancel_only() -> Self {
        Deadline {
            token: CancelToken::new(),
            at: None,
        }
    }

    /// The token; cancel it to stop work before the wall-clock expiry.
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Whether the deadline has expired or been cancelled.
    pub fn expired(&self) -> bool {
        self.token.is_cancelled() || self.at.is_some_and(|at| Instant::now() >= at)
    }
}

thread_local! {
    static AMBIENT: RefCell<Option<Deadline>> = const { RefCell::new(None) };
}

/// Run `f` with `deadline` installed as this thread's ambient deadline,
/// restoring the previous one afterwards (unwind-safe via a drop guard).
pub fn with_deadline<R>(deadline: Deadline, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Deadline>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            AMBIENT.with(|a| *a.borrow_mut() = prev);
        }
    }
    let prev = AMBIENT.with(|a| a.borrow_mut().replace(deadline));
    let _restore = Restore(prev);
    f()
}

/// The calling thread's ambient deadline, if any. `par_map` captures
/// this on entry and re-installs it inside each worker.
pub fn current_deadline() -> Option<Deadline> {
    AMBIENT.with(|a| a.borrow().clone())
}

/// Raise [`Cancelled`] if the ambient deadline has expired. Engines call
/// this between chunks and at phase boundaries; with no ambient deadline
/// it is a single thread-local read.
pub fn checkpoint() {
    let expired = AMBIENT.with(|a| a.borrow().as_ref().is_some_and(Deadline::expired));
    if expired {
        std::panic::panic_any(Cancelled);
    }
}

/// Whether a caught panic payload is a [`Cancelled`] marker (directly or
/// by message), i.e. a deadline expiry rather than a genuine fault.
pub fn is_cancelled_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<Cancelled>().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_without_deadline_is_noop() {
        checkpoint();
    }

    #[test]
    fn expired_deadline_raises_cancelled() {
        let d = Deadline::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_deadline(d, checkpoint)
        }))
        .expect_err("must cancel");
        assert!(is_cancelled_payload(err.as_ref()));
    }

    #[test]
    fn token_cancellation_observed_across_clones() {
        let d = Deadline::cancel_only();
        let token = d.token();
        assert!(!d.expired());
        token.cancel();
        assert!(d.expired());
    }

    #[test]
    fn ambient_deadline_restored_after_panic() {
        let d = Deadline::cancel_only();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_deadline(d, || panic!("boom"))
        }));
        assert!(current_deadline().is_none());
    }
}
