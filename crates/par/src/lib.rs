//! # topogen-par
//!
//! The workspace's shared parallel-execution substrate: a minimal
//! scoped-thread [`par_map`](par::par_map) (the per-center loops of the
//! ball-growing metrics and the per-source loop of the §5 link-value
//! pipeline are embarrassingly parallel and CPU-bound), plus the
//! [`Instrument`] counter sink that both engines report into.
//!
//! Before this crate existed, `topogen-metrics` and `topogen-hierarchy`
//! each carried a hand-rolled copy of the same chunked `par_map`; this is
//! the single implementation both now use. Everything here preserves the
//! determinism contract of the PR-1 engine: output order always matches
//! input order, so results are bit-identical at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod ctx;
pub mod faults;
pub mod instrument;
pub mod par;
pub mod trace;

pub use cancel::{CancelToken, Cancelled, Deadline};
pub use ctx::EngineCtx;
pub use faults::IoFault;
pub use instrument::{
    record_arena_highwater, record_spill_runs, take_arena_highwater, take_spill_runs, Instrument,
    InstrumentReport, PhaseTiming,
};
pub use par::{panic_message, par_map, par_map_catch, par_map_threads};
pub use trace::{SpanGuard, SpanRollup, TraceEvent, TraceSink};
