//! `repro serve --chaos-soak` — the daemon's fault-injection gauntlet.
//!
//! Boots a throwaway daemon (ephemeral port, scratch store and ledger),
//! arms every I/O fault site at once ([`SOAK_FAULT_SPEC`]), and hammers
//! it from concurrent clients with a deterministic request matrix. The
//! soak then disarms the harness and asserts the properties the
//! robustness work promises:
//!
//! * **no deadlock** — every request completes within the client
//!   timeout, faulted or not;
//! * **no worker loss** — the pool ends at full strength (panics and
//!   respawns are reported, shrinkage fails the soak);
//! * **no corruption** — `Store::verify` finds zero bad entries, and
//!   any `200` body served *during* the fault storm is byte-identical
//!   to the unfaulted inline computation (I/O faults may cost a
//!   request, never its answer);
//! * **fault-free repeats** — with the harness disarmed, every matrix
//!   request answers `200` with exactly the reference bytes;
//! * **clean drain** — the daemon drains and reports within its budget.
//!
//! Everything is deterministic: the fault spec's SplitMix64 streams,
//! the request matrix, and the engines themselves. Only thread
//! interleaving varies between runs, which is the point — the
//! properties must hold for every interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use topogen_core::ctx::RunCtx;
use topogen_core::zoo::{Scale, TopologySpec};
use topogen_par::faults;
use topogen_store::Store;

use super::daemon::{serve, ServeConfig};
use super::http::http_post_timeout;
use super::measure::run_measure;
use super::wire::MeasureRequest;
use crate::ExitCode;

/// Every I/O fault site, both kinds, at the acceptance rate. Distinct
/// seeds per entry so the streams don't fire in lockstep.
pub const SOAK_FAULT_SPEC: &str = "sock-read:err:0.05:101,sock-read:short:0.05:102,\
     sock-write:err:0.05:103,sock-write:short:0.05:104,\
     store-read:err:0.05:105,store-read:short:0.05:106,\
     store-write:err:0.05:107,store-write:short:0.05:108,\
     ledger-append:err:0.05:109,ledger-append:short:0.05:110";

/// A request that takes longer than this has hung, not faulted — the
/// soak's deadlock detector.
const SOAK_CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// Concurrent soak clients (below workers + queue so backpressure
/// `429`s stay out of the picture and every outcome is a fault verdict).
const SOAK_CLIENTS: usize = 3;

/// Budget for the final graceful drain.
const SOAK_DRAIN_BUDGET: Duration = Duration::from_secs(30);

/// What one soak client observed.
#[derive(Clone, Copy, Debug, Default)]
struct ClientTally {
    ok: usize,
    ok_mismatched: usize,
    faulted: usize,
    hung: usize,
}

/// The deterministic request matrix: cheap, varied topologies so the
/// soak exercises build + suite + cache paths without taking minutes.
fn request_matrix() -> Vec<MeasureRequest> {
    let specs = [
        TopologySpec::Mesh { side: 6 },
        TopologySpec::Mesh { side: 7 },
        TopologySpec::Mesh { side: 8 },
        TopologySpec::Tree { k: 2, depth: 5 },
        TopologySpec::Tree { k: 3, depth: 4 },
        TopologySpec::Linear { n: 48 },
        TopologySpec::Linear { n: 64 },
        TopologySpec::Complete { n: 24 },
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| MeasureRequest::new(spec.clone(), 7 + i as u64, Scale::Small))
        .collect()
}

fn soak_client(
    addr: std::net::SocketAddr,
    matrix: &[MeasureRequest],
    bodies: &[String],
    reference: &[String],
    next: &AtomicUsize,
    total: usize,
) -> ClientTally {
    let mut tally = ClientTally::default();
    loop {
        let i = next.fetch_add(1, Ordering::SeqCst);
        if i >= total {
            break;
        }
        let idx = i % matrix.len();
        match http_post_timeout(addr, "/measure", &bodies[idx], SOAK_CLIENT_TIMEOUT) {
            Ok(resp) if resp.status == 200 => {
                if resp.body == reference[idx].as_bytes() {
                    tally.ok += 1;
                } else {
                    tally.ok_mismatched += 1;
                    eprintln!(
                        "chaos-soak: request {i} ({}) answered 200 with wrong bytes",
                        matrix[idx].to_json()
                    );
                }
            }
            // Non-200 statuses and connection errors are the faults
            // doing their job: a lost request, never a wrong answer.
            Ok(_) => tally.faulted += 1,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                tally.hung += 1;
                eprintln!("chaos-soak: request {i} hung past the client timeout: {e}");
            }
            Err(_) => tally.faulted += 1,
        }
    }
    tally
}

/// Run the gauntlet; `requests` is the faulted-phase request count.
/// `ledger_path` overrides the scratch ledger location so CI can keep
/// the soak ledger as an artifact (it survives the scratch cleanup).
pub fn chaos_soak(requests: usize, ledger_path: Option<std::path::PathBuf>) -> ExitCode {
    let started = Instant::now();
    let scratch = std::env::temp_dir().join(format!("topogen-chaos-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let store = match Store::open(scratch.join("store")) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("chaos-soak: scratch store failed to open: {e}");
            return ExitCode::Failures;
        }
    };
    let mut config = ServeConfig::new("127.0.0.1:0");
    config.store = Some(Arc::clone(&store));
    config.ledger_path = ledger_path.unwrap_or_else(|| scratch.join("serve-ledger.jsonl"));

    let matrix = request_matrix();
    let bodies: Vec<String> = matrix.iter().map(MeasureRequest::to_json).collect();
    println!(
        "chaos-soak: computing {} unfaulted reference responses",
        matrix.len()
    );
    let reference: Vec<String> = matrix
        .iter()
        .map(|req| run_measure(&RunCtx::new(), req).body())
        .collect();

    let mut handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("chaos-soak: daemon failed to start: {e}");
            return ExitCode::Failures;
        }
    };
    let addr = handle.addr();
    let pool_size = handle.pool_stats().size;

    println!(
        "chaos-soak: hammering {addr} with {requests} request(s) from {SOAK_CLIENTS} client(s), \
         all I/O fault sites armed at rate 0.05"
    );
    if let Err(e) = faults::install_spec(SOAK_FAULT_SPEC) {
        eprintln!("chaos-soak: bad fault spec: {e}");
        return ExitCode::Failures;
    }
    let next = AtomicUsize::new(0);
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..SOAK_CLIENTS)
            .map(|_| {
                scope.spawn(|| soak_client(addr, &matrix, &bodies, &reference, &next, requests))
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    faults::clear();
    let mut tally = ClientTally::default();
    for t in &tallies {
        tally.ok += t.ok;
        tally.ok_mismatched += t.ok_mismatched;
        tally.faulted += t.faulted;
        tally.hung += t.hung;
    }
    println!(
        "chaos-soak: storm done in {:.1}s: {} ok, {} faulted, {} mismatched, {} hung",
        started.elapsed().as_secs_f64(),
        tally.ok,
        tally.faulted,
        tally.ok_mismatched,
        tally.hung
    );

    // Fault-free repeats: with the harness disarmed, every matrix
    // request must answer 200 with exactly the reference bytes —
    // whether it comes from the cache or a fresh computation.
    let mut repeat_failures = 0usize;
    for (idx, (body, want)) in bodies.iter().zip(&reference).enumerate() {
        match http_post_timeout(addr, "/measure", body, SOAK_CLIENT_TIMEOUT) {
            Ok(resp) if resp.status == 200 && resp.body == want.as_bytes() => {}
            Ok(resp) => {
                repeat_failures += 1;
                eprintln!(
                    "chaos-soak: fault-free repeat {idx} got {} ({} byte(s), want {})",
                    resp.status,
                    resp.body.len(),
                    want.len()
                );
            }
            Err(e) => {
                repeat_failures += 1;
                eprintln!("chaos-soak: fault-free repeat {idx} failed: {e}");
            }
        }
    }

    let stats = handle.pool_stats();
    let verify = store.verify();
    let summary = handle.drain(SOAK_DRAIN_BUDGET);
    println!("chaos-soak: {summary}");

    let mut failures = 0usize;
    let mut check = |name: &str, ok: bool| {
        println!("chaos-soak: {name}: {}", if ok { "ok" } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };
    check("no request hung (deadlock-free)", tally.hung == 0);
    check(
        "some requests survived the storm",
        tally.ok > 0 || requests == 0,
    );
    check(
        "pool at full strength after the storm",
        stats.live == pool_size,
    );
    check(
        "no corrupt store entries",
        verify.corrupt.is_empty() && store.counters().snapshot().corrupt == 0,
    );
    check(
        "every 200 under faults was byte-identical",
        tally.ok_mismatched == 0,
    );
    check(
        "fault-free repeats byte-identical to unfaulted daemon",
        repeat_failures == 0,
    );
    check("drained within budget", summary.drained);
    if !verify.corrupt.is_empty() {
        for (path, err) in &verify.corrupt {
            eprintln!("chaos-soak: corrupt entry {path}: {err:?}");
        }
    }

    // Scratch is deleted only on success; a failing soak keeps its
    // store and ledger for post-mortem. A `--ledger` outside the
    // scratch dir (the CI artifact) survives either way.
    if failures == 0 {
        let _ = std::fs::remove_dir_all(&scratch);
        println!(
            "chaos-soak: all checks passed in {:.1}s",
            started.elapsed().as_secs_f64()
        );
        ExitCode::Clean
    } else {
        eprintln!(
            "chaos-soak: {failures} check(s) failed (scratch kept at {})",
            scratch.display()
        );
        ExitCode::Failures
    }
}
