//! `topogen-serve` — the concurrent topology-metrics daemon behind
//! `repro serve`.
//!
//! The batch CLI computes a figure and exits; the daemon keeps the
//! engines warm and answers generate+measure requests over a minimal
//! HTTP/1.1 surface (std `TcpListener`, newline-delimited JSON, zero
//! external dependencies):
//!
//! * **Requests** carry generator params + seed + scale + metric set as
//!   a versioned JSON document ([`wire`]).
//! * **Scheduling** runs each request on a bounded worker pool
//!   ([`pool`]); a full queue rejects with `429` rather than buffering
//!   unboundedly.
//! * **Deadlines** are per-request [`topogen_par::Deadline`]s installed
//!   through the request's [`RunCtx`](topogen_core::ctx::RunCtx) — a
//!   request that exceeds its budget unwinds cooperatively and answers
//!   `504` while its neighbors keep running.
//! * **Caching** answers repeat queries from the shared
//!   content-addressed store: the full response body is stored under
//!   the request's canonical parameters, so a warm answer is served
//!   byte-for-byte ([`measure`]).
//! * **Progress** streams as NDJSON span events from a per-request
//!   trace sink when the request asks for `"stream": true` ([`daemon`]).
//! * **Accounting** appends one line per request — including rejected
//!   and timed-out ones — to a request ledger ([`ledger`]) using the
//!   CLI's [`ExitCode`](crate::ExitCode) taxonomy as the status field.
//! * **Failure posture** is chaos-tested: every I/O boundary is an
//!   injectable fault site ([`topogen_par::faults`]), panicking
//!   requests are absorbed by a self-healing pool with a quarantine
//!   guard, shutdown drains gracefully under a budget, crashed ledgers
//!   recover on reopen, and `repro serve --chaos-soak` ([`soak`])
//!   asserts all of it under an armed fault matrix.
//!
//! The daemon is the reason the engine core grew re-entrant contexts:
//! every request gets its own `RunCtx { store, deadline, trace, … }`
//! and no request touches process-global state.

pub mod daemon;
pub mod http;
pub mod ledger;
pub mod measure;
pub mod pool;
pub mod soak;
pub mod wire;

pub use daemon::{serve, DaemonHandle, DrainSummary, ServeConfig};
pub use measure::run_measure;
pub use soak::chaos_soak;
pub use wire::{MeasureRequest, MeasureResponse, WIRE_VERSION};
