//! Versioned request/response wire schema.
//!
//! Documents are plain JSON with manual serde (the same pattern as the
//! run ledger): every document carries a `schema_version`, decoding
//! rejects versions it does not know with a clean error instead of
//! guessing, and optional response blocks are omitted — not null — so
//! stored response bytes never change shape retroactively.

use serde::{Content, DeError, Deserialize, Serialize};
use topogen_core::zoo::{Scale, TopologySpec};
use topogen_generators::plrg::PlrgParams;
use topogen_metrics::CurvePoint;

/// Current wire schema version. Bump on any incompatible change to the
/// request or response document shape.
pub const WIRE_VERSION: u64 = 1;

/// The metric names a request may ask for.
pub const KNOWN_METRICS: [&str; 5] = [
    "expansion",
    "resilience",
    "distortion",
    "signature",
    "hierarchy",
];

/// Default metric set when the request omits `metrics`: the three basic
/// curves plus the signature (hierarchy is opt-in — the link-value
/// analysis is a separate, heavier pipeline). Kept sorted, matching the
/// normalization `from_json` applies.
pub const DEFAULT_METRICS: [&str; 4] = ["distortion", "expansion", "resilience", "signature"];

/// A decode failure with enough context for an HTTP error reply.
#[derive(Clone, Debug)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<DeError> for WireError {
    fn from(e: DeError) -> Self {
        WireError(e.0)
    }
}

/// One generate+measure request.
#[derive(Clone, Debug)]
pub struct MeasureRequest {
    /// The topology to build.
    pub spec: TopologySpec,
    /// Master seed (the daemon derives the suite seed exactly as the
    /// batch CLI does, so responses match batch artifacts bit-for-bit).
    pub seed: u64,
    /// Topology scale.
    pub scale: Scale,
    /// Requested metric names (validated subset of [`KNOWN_METRICS`],
    /// sorted + deduplicated so equivalent requests share a cache key).
    pub metrics: Vec<String>,
    /// Thorough (figure-quality) vs quick sampling budgets.
    pub thorough: bool,
    /// Per-request deadline in seconds; `None` uses the daemon default.
    pub deadline_secs: Option<f64>,
    /// Stream progress events as NDJSON before the final result line.
    pub stream: bool,
}

impl MeasureRequest {
    /// A quick request for `spec` with the default metric set.
    pub fn new(spec: TopologySpec, seed: u64, scale: Scale) -> Self {
        MeasureRequest {
            spec,
            seed,
            scale,
            metrics: DEFAULT_METRICS.iter().map(|m| m.to_string()).collect(),
            thorough: false,
            deadline_secs: None,
            stream: false,
        }
    }

    /// Whether `metric` was requested.
    pub fn wants(&self, metric: &str) -> bool {
        self.metrics.iter().any(|m| m == metric)
    }

    /// Parse a request document, rejecting unknown schema versions and
    /// malformed fields with a clean error.
    pub fn from_json(text: &str) -> Result<MeasureRequest, WireError> {
        let c: Content =
            serde_json::from_str(text).map_err(|e| WireError(format!("invalid JSON: {e}")))?;
        check_version(&c)?;
        let scale = match c.get("scale") {
            None => Scale::Small,
            Some(v) => parse_scale(&String::from_content(v)?)?,
        };
        let spec = match c.get("topology") {
            None => return Err(WireError("missing field `topology`".into())),
            Some(t) => parse_topology(t, scale)?,
        };
        let seed = match c.get("seed") {
            None => return Err(WireError("missing field `seed`".into())),
            Some(v) => u64::from_content(v)?,
        };
        let mut metrics: Vec<String> = match c.get("metrics") {
            None => DEFAULT_METRICS.iter().map(|m| m.to_string()).collect(),
            Some(v) => Vec::<String>::from_content(v)?,
        };
        for m in &metrics {
            if !KNOWN_METRICS.contains(&m.as_str()) {
                return Err(WireError(format!(
                    "unknown metric {m:?} (known: {})",
                    KNOWN_METRICS.join(", ")
                )));
            }
        }
        metrics.sort();
        metrics.dedup();
        if metrics.is_empty() {
            return Err(WireError("empty metric set".into()));
        }
        let thorough = match c.get("thorough") {
            None => false,
            Some(v) => bool::from_content(v)?,
        };
        let deadline_secs = match c.get("deadline_secs") {
            None | Some(Content::Null) => None,
            Some(v) => {
                let secs = f64::from_content(v)?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(WireError(format!(
                        "deadline_secs must be a positive number, got {secs}"
                    )));
                }
                Some(secs)
            }
        };
        let stream = match c.get("stream") {
            None => false,
            Some(v) => bool::from_content(v)?,
        };
        Ok(MeasureRequest {
            spec,
            seed,
            scale,
            metrics,
            thorough,
            deadline_secs,
            stream,
        })
    }

    /// Render as a request document (what clients and tests send).
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema_version".to_string(), WIRE_VERSION.to_content()),
            ("topology".to_string(), topology_content(&self.spec)),
        ];
        fields.push(("seed".to_string(), self.seed.to_content()));
        fields.push((
            "scale".to_string(),
            Content::Str(topogen_core::cache::scale_tag(self.scale).to_string()),
        ));
        fields.push(("metrics".to_string(), self.metrics.to_content()));
        fields.push(("thorough".to_string(), self.thorough.to_content()));
        if let Some(d) = self.deadline_secs {
            fields.push(("deadline_secs".to_string(), d.to_content()));
        }
        if self.stream {
            fields.push(("stream".to_string(), true.to_content()));
        }
        serde_json::to_string(&Content::Map(fields)).expect("request serializes")
    }
}

/// Reject documents whose `schema_version` is missing or unknown.
fn check_version(c: &Content) -> Result<(), WireError> {
    match c.get("schema_version") {
        None => Err(WireError("missing field `schema_version`".into())),
        Some(v) => {
            let version = u64::from_content(v)?;
            if version != WIRE_VERSION {
                return Err(WireError(format!(
                    "unsupported schema_version {version} (this daemon speaks {WIRE_VERSION})"
                )));
            }
            Ok(())
        }
    }
}

fn parse_scale(s: &str) -> Result<Scale, WireError> {
    match s {
        "small" => Ok(Scale::Small),
        "paper" => Ok(Scale::Paper),
        "large" => Ok(Scale::Large),
        "xl" => Ok(Scale::Xl),
        other => Err(WireError(format!(
            "unknown scale {other:?} (expected \"small\", \"paper\", \"large\", or \"xl\")"
        ))),
    }
}

/// A topology reference: either a zoo name (`"Mesh"`, `"PLRG"`, …)
/// resolved against the Figure 1 + degree-based zoos at the request's
/// scale, or an inline parameter map for the simple generators
/// (`{"kind": "mesh", "side": 12}`).
fn parse_topology(c: &Content, scale: Scale) -> Result<TopologySpec, WireError> {
    match c {
        Content::Str(name) => {
            let mut zoo = TopologySpec::figure1_zoo(scale);
            zoo.extend(TopologySpec::degree_based_zoo(scale));
            zoo.into_iter()
                .find(|s| s.name() == *name)
                .ok_or_else(|| WireError(format!("unknown topology name {name:?}")))
        }
        Content::Map(_) => {
            let kind = match c.get("kind") {
                Some(Content::Str(k)) => k.clone(),
                _ => return Err(WireError("inline topology needs a `kind` string".into())),
            };
            let u = |key: &str| -> Result<usize, WireError> {
                match c.get(key) {
                    Some(v) => Ok(usize::from_content(v)?),
                    None => Err(WireError(format!("topology kind {kind:?} needs `{key}`"))),
                }
            };
            let f = |key: &str| -> Result<f64, WireError> {
                match c.get(key) {
                    Some(v) => Ok(f64::from_content(v)?),
                    None => Err(WireError(format!("topology kind {kind:?} needs `{key}`"))),
                }
            };
            match kind.as_str() {
                "tree" => Ok(TopologySpec::Tree {
                    k: u("k")?,
                    depth: u("depth")?,
                }),
                "mesh" => Ok(TopologySpec::Mesh { side: u("side")? }),
                "linear" => Ok(TopologySpec::Linear { n: u("n")? }),
                "complete" => Ok(TopologySpec::Complete { n: u("n")? }),
                "random" => Ok(TopologySpec::Random {
                    n: u("n")?,
                    p: f("p")?,
                }),
                "plrg" => Ok(TopologySpec::Plrg(PlrgParams {
                    n: u("n")?,
                    alpha: f("alpha")?,
                    max_degree: match c.get("max_degree") {
                        None | Some(Content::Null) => None,
                        Some(v) => Some(usize::from_content(v)?),
                    },
                })),
                other => Err(WireError(format!(
                    "unknown topology kind {other:?} \
                     (inline kinds: tree, mesh, linear, complete, random, plrg; \
                     or use a zoo name)"
                ))),
            }
        }
        other => Err(WireError(format!(
            "topology must be a zoo name or an inline map, got {other:?}"
        ))),
    }
}

/// The wire form of a spec for [`MeasureRequest::to_json`]: the inline
/// map for the simple kinds, the zoo name otherwise.
fn topology_content(spec: &TopologySpec) -> Content {
    let kv = |pairs: Vec<(&str, Content)>| {
        Content::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    match spec {
        TopologySpec::Tree { k, depth } => kv(vec![
            ("kind", Content::Str("tree".into())),
            ("k", (*k as u64).to_content()),
            ("depth", (*depth as u64).to_content()),
        ]),
        TopologySpec::Mesh { side } => kv(vec![
            ("kind", Content::Str("mesh".into())),
            ("side", (*side as u64).to_content()),
        ]),
        TopologySpec::Linear { n } => kv(vec![
            ("kind", Content::Str("linear".into())),
            ("n", (*n as u64).to_content()),
        ]),
        TopologySpec::Complete { n } => kv(vec![
            ("kind", Content::Str("complete".into())),
            ("n", (*n as u64).to_content()),
        ]),
        TopologySpec::Random { n, p } => kv(vec![
            ("kind", Content::Str("random".into())),
            ("n", (*n as u64).to_content()),
            ("p", p.to_content()),
        ]),
        TopologySpec::Plrg(p) => {
            let mut pairs = vec![
                ("kind", Content::Str("plrg".into())),
                ("n", (p.n as u64).to_content()),
                ("alpha", p.alpha.to_content()),
            ];
            if let Some(d) = p.max_degree {
                pairs.push(("max_degree", (d as u64).to_content()));
            }
            kv(pairs)
        }
        other => Content::Str(other.name()),
    }
}

/// The `hierarchy` response block (§5 summary statistics; the full
/// link-value vector is deliberately not shipped).
#[derive(Clone, Debug)]
pub struct HierarchyBlock {
    /// strict / moderate / loose.
    pub class: String,
    /// Max normalized link value.
    pub max: f64,
    /// Median normalized link value.
    pub median: f64,
    /// Pearson correlation with min endpoint degree.
    pub degree_correlation: Option<f64>,
}

/// One measure response. Optional blocks are present iff the matching
/// metric was requested; serialization omits absent blocks entirely.
#[derive(Clone, Debug)]
pub struct MeasureResponse {
    /// Topology display name.
    pub name: String,
    /// Canonical `generator(params)` rendering of the request's spec.
    pub topology: String,
    /// The request's master seed.
    pub seed: u64,
    /// `"small"`, `"paper"`, `"large"`, or `"xl"`.
    pub scale: String,
    /// Whether thorough budgets were used.
    pub thorough: bool,
    /// Analysis-graph node count.
    pub nodes: u64,
    /// Analysis-graph edge count.
    pub edges: u64,
    /// L/H signature (requested via `"signature"`).
    pub signature: Option<String>,
    /// E(h) per radius (requested via `"expansion"`).
    pub expansion: Option<Vec<f64>>,
    /// R(n) curve (requested via `"resilience"`).
    pub resilience: Option<Vec<CurvePoint>>,
    /// D(n) curve (requested via `"distortion"`).
    pub distortion: Option<Vec<CurvePoint>>,
    /// §5 summary (requested via `"hierarchy"`).
    pub hierarchy: Option<HierarchyBlock>,
}

fn curve_content(points: &[CurvePoint]) -> Content {
    Content::Seq(
        points
            .iter()
            .map(|p| {
                Content::Map(vec![
                    ("radius".to_string(), (p.radius as u64).to_content()),
                    ("avg_size".to_string(), p.avg_size.to_content()),
                    ("value".to_string(), p.value.to_content()),
                ])
            })
            .collect(),
    )
}

fn curve_from_content(c: &Content) -> Result<Vec<CurvePoint>, DeError> {
    let Content::Seq(items) = c else {
        return Err(DeError(format!("expected curve sequence, got {c:?}")));
    };
    items
        .iter()
        .map(|p| {
            let field = |k: &str| p.get(k).ok_or_else(|| DeError(format!("missing {k}")));
            Ok(CurvePoint {
                radius: u64::from_content(field("radius")?)? as u32,
                avg_size: f64::from_content(field("avg_size")?)?,
                value: f64::from_content(field("value")?)?,
            })
        })
        .collect()
}

impl Serialize for MeasureResponse {
    fn to_content(&self) -> Content {
        let mut fields = vec![
            ("schema_version".to_string(), WIRE_VERSION.to_content()),
            ("name".to_string(), self.name.to_content()),
            ("topology".to_string(), self.topology.to_content()),
            ("seed".to_string(), self.seed.to_content()),
            ("scale".to_string(), self.scale.to_content()),
            ("thorough".to_string(), self.thorough.to_content()),
            ("nodes".to_string(), self.nodes.to_content()),
            ("edges".to_string(), self.edges.to_content()),
        ];
        if let Some(sig) = &self.signature {
            fields.push(("signature".to_string(), sig.to_content()));
        }
        if let Some(e) = &self.expansion {
            fields.push(("expansion".to_string(), e.to_content()));
        }
        if let Some(r) = &self.resilience {
            fields.push(("resilience".to_string(), curve_content(r)));
        }
        if let Some(d) = &self.distortion {
            fields.push(("distortion".to_string(), curve_content(d)));
        }
        if let Some(h) = &self.hierarchy {
            fields.push((
                "hierarchy".to_string(),
                Content::Map(vec![
                    ("class".to_string(), h.class.to_content()),
                    ("max".to_string(), h.max.to_content()),
                    ("median".to_string(), h.median.to_content()),
                    (
                        "degree_correlation".to_string(),
                        h.degree_correlation.to_content(),
                    ),
                ]),
            ));
        }
        Content::Map(fields)
    }
}

impl Deserialize for MeasureResponse {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        check_version(c).map_err(|e| DeError(e.0))?;
        let field = |k: &str| c.get(k).ok_or_else(|| DeError(format!("missing {k}")));
        Ok(MeasureResponse {
            name: String::from_content(field("name")?)?,
            topology: String::from_content(field("topology")?)?,
            seed: u64::from_content(field("seed")?)?,
            scale: String::from_content(field("scale")?)?,
            thorough: bool::from_content(field("thorough")?)?,
            nodes: u64::from_content(field("nodes")?)?,
            edges: u64::from_content(field("edges")?)?,
            signature: match c.get("signature") {
                Some(v) => Some(String::from_content(v)?),
                None => None,
            },
            expansion: match c.get("expansion") {
                Some(v) => Some(Vec::<f64>::from_content(v)?),
                None => None,
            },
            resilience: match c.get("resilience") {
                Some(v) => Some(curve_from_content(v)?),
                None => None,
            },
            distortion: match c.get("distortion") {
                Some(v) => Some(curve_from_content(v)?),
                None => None,
            },
            hierarchy: match c.get("hierarchy") {
                Some(h) => {
                    let field = |k: &str| h.get(k).ok_or_else(|| DeError(format!("missing {k}")));
                    Some(HierarchyBlock {
                        class: String::from_content(field("class")?)?,
                        max: f64::from_content(field("max")?)?,
                        median: f64::from_content(field("median")?)?,
                        degree_correlation: Option::<f64>::from_content(field(
                            "degree_correlation",
                        )?)?,
                    })
                }
                None => None,
            },
        })
    }
}

impl MeasureResponse {
    /// The exact response body: pretty JSON plus a trailing newline —
    /// what gets cached, served, and printed by `repro measure`.
    pub fn body(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("response serializes");
        s.push('\n');
        s
    }
}

/// An error reply document (also the non-result lines of a stream).
pub fn error_body(error: &str, exit: crate::ExitCode) -> String {
    let doc = Content::Map(vec![
        ("schema_version".to_string(), WIRE_VERSION.to_content()),
        ("error".to_string(), error.to_content()),
        (
            "status".to_string(),
            Content::Str(exit.as_str().to_string()),
        ),
        ("code".to_string(), (exit.code() as u64).to_content()),
    ]);
    let mut s = serde_json::to_string_pretty(&doc).expect("error serializes");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let mut req = MeasureRequest::new(TopologySpec::Mesh { side: 12 }, 7, Scale::Small);
        req.metrics = vec!["expansion".into(), "signature".into()];
        req.deadline_secs = Some(2.5);
        let back = MeasureRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back.spec.name(), "Mesh");
        assert_eq!(
            topogen_core::cache::spec_canonical(&back.spec),
            "mesh(side=12)"
        );
        assert_eq!(back.seed, 7);
        assert_eq!(back.metrics, req.metrics);
        assert_eq!(back.deadline_secs, Some(2.5));
        assert!(!back.stream);
    }

    #[test]
    fn zoo_names_resolve_at_scale() {
        let req = MeasureRequest::from_json(
            r#"{"schema_version":1,"topology":"PLRG","seed":1,"scale":"small"}"#,
        )
        .unwrap();
        assert_eq!(req.spec.name(), "PLRG");
        assert_eq!(req.metrics, DEFAULT_METRICS.to_vec());
        let err =
            MeasureRequest::from_json(r#"{"schema_version":1,"topology":"NoSuchThing","seed":1}"#)
                .unwrap_err();
        assert!(err.0.contains("unknown topology name"), "{err}");
    }

    #[test]
    fn unknown_schema_version_rejected_cleanly() {
        let err = MeasureRequest::from_json(r#"{"schema_version":99,"topology":"Mesh","seed":1}"#)
            .unwrap_err();
        assert!(err.0.contains("unsupported schema_version 99"), "{err}");
        // Missing version is as unacceptable as a wrong one.
        let err = MeasureRequest::from_json(r#"{"topology":"Mesh","seed":1}"#).unwrap_err();
        assert!(err.0.contains("schema_version"), "{err}");
        // And responses enforce the same gate.
        let err = serde_json::from_str::<MeasureResponse>(r#"{"schema_version":2,"name":"x"}"#)
            .unwrap_err();
        assert!(
            err.to_string().contains("unsupported schema_version"),
            "{err}"
        );
    }

    #[test]
    fn invalid_fields_rejected() {
        for (doc, needle) in [
            (
                r#"{"schema_version":1,"seed":1}"#,
                "missing field `topology`",
            ),
            (
                r#"{"schema_version":1,"topology":"Mesh"}"#,
                "missing field `seed`",
            ),
            (
                r#"{"schema_version":1,"topology":"Mesh","seed":1,"metrics":["bogus"]}"#,
                "unknown metric",
            ),
            (
                r#"{"schema_version":1,"topology":"Mesh","seed":1,"metrics":[]}"#,
                "empty metric set",
            ),
            (
                r#"{"schema_version":1,"topology":"Mesh","seed":1,"deadline_secs":-1}"#,
                "deadline_secs",
            ),
            (
                r#"{"schema_version":1,"topology":{"side":3},"seed":1}"#,
                "needs a `kind`",
            ),
            (
                r#"{"schema_version":1,"topology":{"kind":"hypercube"},"seed":1}"#,
                "unknown topology kind",
            ),
            ("not json at all", "invalid JSON"),
        ] {
            let err = MeasureRequest::from_json(doc).unwrap_err();
            assert!(err.0.contains(needle), "{doc} → {err}");
        }
    }

    #[test]
    fn response_round_trips_and_omits_absent_blocks() {
        let resp = MeasureResponse {
            name: "Mesh".into(),
            topology: "mesh(side=3)".into(),
            seed: 9,
            scale: "small".into(),
            thorough: false,
            nodes: 9,
            edges: 12,
            signature: Some("LHH".into()),
            expansion: Some(vec![0.1, 0.5, 1.0]),
            resilience: Some(vec![CurvePoint {
                radius: 1,
                avg_size: 4.0,
                value: 2.0,
            }]),
            distortion: None,
            hierarchy: None,
        };
        let body = resp.body();
        assert!(body.ends_with('\n'));
        assert!(!body.contains("distortion"));
        assert!(!body.contains("hierarchy"));
        let back: MeasureResponse = serde_json::from_str(body.trim_end()).unwrap();
        assert_eq!(back.signature.as_deref(), Some("LHH"));
        assert_eq!(back.expansion.unwrap().len(), 3);
        assert_eq!(back.resilience.unwrap()[0].avg_size, 4.0);
        assert!(back.distortion.is_none());
        assert!(back.hierarchy.is_none());
    }

    #[test]
    fn error_body_carries_exit_taxonomy() {
        let body = error_body("queue full", crate::ExitCode::Failures);
        assert!(body.contains("\"status\": \"failures\""), "{body}");
        assert!(body.contains("\"code\": 1"), "{body}");
    }
}
