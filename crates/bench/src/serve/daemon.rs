//! The daemon: accept loop, request routing, per-request contexts.
//!
//! Every measure request gets its own [`RunCtx`] — the shared store,
//! a private deadline, and (for streaming requests) a private trace
//! sink — so concurrent requests are fully disjoint: one request's
//! timeout or panic never leaks into a neighbor, and results are
//! byte-identical to a solo batch run regardless of interleaving.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use topogen_core::cache::{scale_tag, spec_canonical};
use topogen_core::ctx::RunCtx;
use topogen_par::cancel::{is_cancelled_payload, Deadline};
use topogen_par::trace::{self, TraceSink};
use topogen_store::Store;

use super::http::{read_request, write_response, HttpRequest};
use super::ledger::{Ledger, LedgerEntry};
use super::measure::measure_body;
use super::pool::{DispatchError, WorkerPool};
use super::wire::{error_body, MeasureRequest};
use crate::ExitCode;

/// How often a streaming response flushes accumulated span events.
const STREAM_POLL: Duration = Duration::from_millis(50);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Waiting requests beyond the busy workers before `429`.
    pub queue: usize,
    /// Shared artifact store (response cache + engine caches); `None`
    /// disables caching.
    pub store: Option<Arc<Store>>,
    /// Request-ledger path.
    pub ledger_path: PathBuf,
    /// Deadline applied when a request doesn't carry one; `None` means
    /// such requests run unbounded.
    pub default_deadline: Option<Duration>,
}

impl ServeConfig {
    /// Defaults: 4 workers, a queue of 8, ledger at
    /// `out/serve-ledger.jsonl`, no cache, no default deadline.
    pub fn new(addr: impl Into<String>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            workers: 4,
            queue: 8,
            store: None,
            ledger_path: PathBuf::from("out/serve-ledger.jsonl"),
            default_deadline: None,
        }
    }
}

struct DaemonState {
    store: Option<Arc<Store>>,
    ledger: Ledger,
    default_deadline: Option<Duration>,
    next_id: AtomicU64,
}

/// A running daemon; dropping it shuts the daemon down.
pub struct DaemonHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    ledger_path: PathBuf,
}

impl DaemonHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Where this daemon's request ledger lives.
    pub fn ledger_path(&self) -> &std::path::Path {
        &self.ledger_path
    }

    /// Stop accepting, finish in-flight requests, join all threads.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind and start serving; returns once the listener is live.
pub fn serve(config: ServeConfig) -> std::io::Result<DaemonHandle> {
    // Deadline expiries unwind with a Cancelled payload; don't let the
    // default hook spam stderr for those expected panics.
    crate::runner::quiet_expected_panics();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(DaemonState {
        store: config.store.clone(),
        ledger: Ledger::open(&config.ledger_path)?,
        default_deadline: config.default_deadline,
        next_id: AtomicU64::new(1),
    });
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let workers = config.workers;
    let queue = config.queue;
    let accept_state = Arc::clone(&state);
    let accept_thread = std::thread::Builder::new()
        .name("serve-accept".into())
        .spawn(move || {
            let mut pool = WorkerPool::new(workers, queue);
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let state = Arc::clone(&accept_state);
                let dispatched = pool.try_dispatch(Box::new({
                    let state = Arc::clone(&state);
                    let mut stream = stream.try_clone().expect("clone TCP stream");
                    move || handle_connection(&state, &mut stream)
                }));
                match dispatched {
                    Ok(()) => {}
                    Err(DispatchError::Saturated) => {
                        // Rejection must not block the accept loop on a
                        // slow client; a throwaway thread is fine for
                        // the (rare, cheap) overload path.
                        std::thread::spawn(move || reject_saturated(&state, stream));
                    }
                    Err(DispatchError::Closed) => break,
                }
            }
            pool.shutdown();
        })?;
    Ok(DaemonHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        ledger_path: config.ledger_path,
    })
}

/// Answer `429` without touching the worker pool — the whole point of
/// the bounded queue is that saturation is cheap to report.
fn reject_saturated(state: &DaemonState, mut stream: TcpStream) {
    // Drain the request before answering: closing a socket with unread
    // request bytes raises a TCP reset that can destroy the response
    // before the client reads it.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = read_request(&mut stream);
    let exit = ExitCode::Failures;
    let body = error_body("saturated: all workers busy and queue full", exit);
    let _ = write_response(
        &mut stream,
        429,
        "Too Many Requests",
        &status_headers(exit, "-"),
        "application/json",
        body.as_bytes(),
    );
    record(
        state,
        LedgerEntry {
            request_id: state.next_id.fetch_add(1, Ordering::SeqCst),
            topology: "-".into(),
            seed: 0,
            scale: "-".into(),
            status: exit,
            http: 429,
            cache: "-",
            duration_secs: 0.0,
            error: Some("saturated".into()),
        },
    );
}

fn status_headers(exit: ExitCode, cache: &str) -> Vec<(&'static str, String)> {
    vec![
        ("X-Topogen-Status", exit.as_str().to_string()),
        ("X-Topogen-Code", exit.code().to_string()),
        ("X-Topogen-Cache", cache.to_string()),
    ]
}

fn record(state: &DaemonState, entry: LedgerEntry) {
    if let Err(e) = state.ledger.append(&entry) {
        eprintln!("serve: ledger append failed: {e}");
    }
}

fn handle_connection(state: &DaemonState, stream: &mut TcpStream) {
    let request_id = state.next_id.fetch_add(1, Ordering::SeqCst);
    let started = Instant::now();
    // A stalled peer must not pin a worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let req = match read_request(stream) {
        Ok(req) => req,
        Err(e) => {
            respond_error(
                state,
                stream,
                request_id,
                started,
                400,
                &format!("bad request: {e}"),
            );
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let exit = ExitCode::Clean;
            let _ = write_response(
                stream,
                200,
                "OK",
                &status_headers(exit, "-"),
                "text/plain",
                b"ok\n",
            );
            record(
                state,
                LedgerEntry {
                    request_id,
                    topology: "-".into(),
                    seed: 0,
                    scale: "-".into(),
                    status: exit,
                    http: 200,
                    cache: "-",
                    duration_secs: started.elapsed().as_secs_f64(),
                    error: None,
                },
            );
        }
        ("POST", "/measure") => handle_measure(state, stream, request_id, started, &req),
        (method, path) => {
            respond_error(
                state,
                stream,
                request_id,
                started,
                404,
                &format!("no route for {method} {path}"),
            );
        }
    }
}

/// Usage-class failure: malformed HTTP, bad JSON, unknown route.
fn respond_error(
    state: &DaemonState,
    stream: &mut TcpStream,
    request_id: u64,
    started: Instant,
    http: u16,
    error: &str,
) {
    let exit = ExitCode::Usage;
    let reason = match http {
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let body = error_body(error, exit);
    let _ = write_response(
        stream,
        http,
        reason,
        &status_headers(exit, "-"),
        "application/json",
        body.as_bytes(),
    );
    record(
        state,
        LedgerEntry {
            request_id,
            topology: "-".into(),
            seed: 0,
            scale: "-".into(),
            status: exit,
            http,
            cache: "-",
            duration_secs: started.elapsed().as_secs_f64(),
            error: Some(error.to_string()),
        },
    );
}

fn handle_measure(
    state: &DaemonState,
    stream: &mut TcpStream,
    request_id: u64,
    started: Instant,
    http_req: &HttpRequest,
) {
    let text = match std::str::from_utf8(&http_req.body) {
        Ok(t) => t,
        Err(_) => {
            respond_error(state, stream, request_id, started, 400, "body is not UTF-8");
            return;
        }
    };
    let req = match MeasureRequest::from_json(text) {
        Ok(req) => req,
        Err(e) => {
            respond_error(state, stream, request_id, started, 400, &e.0);
            return;
        }
    };
    let deadline = req
        .deadline_secs
        .map(Duration::from_secs_f64)
        .or(state.default_deadline)
        .map(Deadline::after);
    let mut ctx = RunCtx::new();
    ctx.store = state.store.clone();
    ctx.deadline = deadline;
    let mut entry = LedgerEntry {
        request_id,
        topology: spec_canonical(&req.spec),
        seed: req.seed,
        scale: scale_tag(req.scale).to_string(),
        status: ExitCode::Clean,
        http: 200,
        cache: "-",
        duration_secs: 0.0,
        error: None,
    };
    if req.stream {
        stream_measure(stream, ctx, &req, &mut entry);
    } else {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| measure_body(&ctx, &req)));
        match outcome {
            Ok((body, hit)) => {
                entry.cache = if hit { "hit" } else { "miss" };
                let _ = write_response(
                    stream,
                    200,
                    "OK",
                    &status_headers(ExitCode::Clean, entry.cache),
                    "application/json",
                    body.as_bytes(),
                );
            }
            Err(payload) => {
                let (http, reason, error) = if is_cancelled_payload(&*payload) {
                    (504, "Gateway Timeout", "deadline exceeded".to_string())
                } else {
                    (500, "Internal Server Error", panic_message(&*payload))
                };
                entry.status = ExitCode::Failures;
                entry.http = http;
                entry.error = Some(error.clone());
                let body = error_body(&error, ExitCode::Failures);
                let _ = write_response(
                    stream,
                    http,
                    reason,
                    &status_headers(ExitCode::Failures, "-"),
                    "application/json",
                    body.as_bytes(),
                );
            }
        }
    }
    entry.duration_secs = started.elapsed().as_secs_f64();
    record(state, entry);
}

/// Streaming flavor: HTTP status is committed up front (`200`, NDJSON,
/// close-delimited), progress spans flow as one JSON object per line,
/// and the final line is the compact result — or an error document
/// whose `status`/`code` carry the real outcome.
fn stream_measure(
    stream: &mut TcpStream,
    ctx: RunCtx,
    req: &MeasureRequest,
    entry: &mut LedgerEntry,
) {
    let sink = Arc::new(TraceSink::new());
    let mut ctx = ctx;
    ctx.trace = Some(Arc::clone(&sink));
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        entry.status = ExitCode::Failures;
        entry.error = Some("client went away before the stream started".into());
        return;
    }
    let (done_tx, done_rx) = mpsc::channel();
    let compute = {
        let ctx = ctx.clone();
        let req = req.clone();
        std::thread::spawn(move || {
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| measure_body(&ctx, &req)));
            let _ = done_tx.send(outcome);
        })
    };
    let mut mark = sink.mark();
    let outcome = loop {
        match done_rx.recv_timeout(STREAM_POLL) {
            Ok(outcome) => break outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let (events, next) = sink.drain_since(&mark);
                mark = next;
                for ev in &events {
                    let mut line = trace::event_json(ev);
                    line.push('\n');
                    // A gone client can't cancel the engines; just stop
                    // feeding it and let the computation finish.
                    let _ = stream.write_all(line.as_bytes());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Err(Box::new("compute thread vanished".to_string())
                    as Box<dyn std::any::Any + Send>)
            }
        }
    };
    let _ = compute.join();
    let (events, _) = sink.drain_since(&mark);
    for ev in &events {
        let mut line = trace::event_json(ev);
        line.push('\n');
        let _ = stream.write_all(line.as_bytes());
    }
    let final_line = match outcome {
        Ok((body, hit)) => {
            entry.cache = if hit { "hit" } else { "miss" };
            // The cached/pretty body is multi-line; the stream's result
            // line is its compact re-rendering.
            compact_json_line(&body)
        }
        Err(payload) => {
            let error = if is_cancelled_payload(&*payload) {
                "deadline exceeded".to_string()
            } else {
                panic_message(&*payload)
            };
            // The HTTP status was already committed as 200; the ledger
            // records the logical outcome, the tail line carries it to
            // the client.
            entry.status = ExitCode::Failures;
            entry.error = Some(error.clone());
            let mut line = error_line(&error);
            line.push('\n');
            line
        }
    };
    let _ = stream.write_all(final_line.as_bytes());
    let _ = stream.flush();
}

/// Re-render a pretty JSON body as one compact line.
fn compact_json_line(pretty: &str) -> String {
    match serde_json::from_str::<serde::Content>(pretty) {
        Ok(c) => {
            let mut s = serde_json::to_string(&c).unwrap_or_else(|_| pretty.trim().to_string());
            s.push('\n');
            s
        }
        Err(_) => {
            let mut s = pretty.trim().to_string();
            s.push('\n');
            s
        }
    }
}

/// Compact single-line error document for stream tails.
fn error_line(error: &str) -> String {
    let exit = ExitCode::Failures;
    let doc = serde::Content::Map(vec![
        (
            "schema_version".to_string(),
            serde::Content::U64(super::wire::WIRE_VERSION),
        ),
        ("error".to_string(), serde::Content::Str(error.to_string())),
        (
            "status".to_string(),
            serde::Content::Str(exit.as_str().to_string()),
        ),
        ("code".to_string(), serde::Content::U64(exit.code() as u64)),
    ]);
    serde_json::to_string(&doc).expect("error serializes")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .map(|m| format!("measurement panicked: {m}"))
        .unwrap_or_else(|| "measurement panicked".to_string())
}

/// `repro serve --self-test`: boot a daemon on an ephemeral port,
/// exercise the protocol end to end with the std-only client, and
/// report. This is the CI smoke path — no fixtures, no network beyond
/// loopback.
pub fn self_test(mut config: ServeConfig) -> ExitCode {
    config.addr = "127.0.0.1:0".into();
    // The warm-request check needs a response cache; give the test its
    // own throwaway store when the caller didn't bring one.
    let scratch = if config.store.is_none() {
        let dir =
            std::env::temp_dir().join(format!("topogen-serve-selftest-{}", std::process::id()));
        match Store::open(&dir) {
            Ok(store) => {
                config.store = Some(Arc::new(store));
                Some(dir)
            }
            Err(e) => {
                eprintln!("self-test: scratch store failed to open: {e}");
                return ExitCode::Failures;
            }
        }
    } else {
        None
    };
    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("self-test: daemon failed to start: {e}");
            return ExitCode::Failures;
        }
    };
    let addr = handle.addr();
    let mut failures = 0usize;
    let mut check = |name: &str, ok: bool| {
        println!("self-test: {name}: {}", if ok { "ok" } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    let status_of = |r: &std::io::Result<super::http::HttpResponse>| -> u16 {
        r.as_ref().map(|r| r.status).unwrap_or(0)
    };
    let health = super::http::http_get(addr, "/healthz");
    check("healthz", status_of(&health) == 200);

    let req = MeasureRequest::new(
        topogen_core::zoo::TopologySpec::Mesh { side: 12 },
        7,
        topogen_core::zoo::Scale::Small,
    );
    let cold = super::http::http_post(addr, "/measure", &req.to_json());
    check("measure (cold)", status_of(&cold) == 200);
    let warm = super::http::http_post(addr, "/measure", &req.to_json());
    check("measure (warm)", status_of(&warm) == 200);
    if let (Ok(cold), Ok(warm)) = (&cold, &warm) {
        check("warm equals cold byte-for-byte", warm.body == cold.body);
        check(
            "warm served from cache",
            warm.headers.get("x-topogen-cache").map(String::as_str) == Some("hit"),
        );
    }

    let bad = super::http::http_post(
        addr,
        "/measure",
        r#"{"schema_version":99,"topology":"Mesh","seed":1}"#,
    );
    check(
        "unknown schema_version rejected with 400",
        status_of(&bad) == 400,
    );

    let ledger_ok = std::fs::read_to_string(handle.ledger_path())
        .map(|text| text.lines().count() >= 4)
        .unwrap_or(false);
    check("ledger recorded every request", ledger_ok);

    drop(handle);
    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(dir);
    }
    if failures == 0 {
        println!("self-test: all checks passed");
        ExitCode::Clean
    } else {
        eprintln!("self-test: {failures} check(s) failed");
        ExitCode::Failures
    }
}
