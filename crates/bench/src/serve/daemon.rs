//! The daemon: accept loop, request routing, per-request contexts.
//!
//! Every measure request gets its own [`RunCtx`] — the shared store,
//! a private deadline, and (for streaming requests) a private trace
//! sink — so concurrent requests are fully disjoint: one request's
//! timeout or panic never leaks into a neighbor, and results are
//! byte-identical to a solo batch run regardless of interleaving.
//!
//! Failure posture: a panicking request is caught and answered `500`
//! (the durable ledger records it with the payload redacted), a request
//! key that panics [`QUARANTINE_AFTER`] times in a row is quarantined
//! with `503` for the daemon's lifetime (a success before the threshold
//! resets the count; a restart clears the list), and shutdown can
//! [`drain`](DaemonHandle::drain) — stop accepting, finish in-flight
//! work under a budget, cancel stragglers, flush the ledger.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use topogen_core::cache::{scale_tag, spec_canonical};
use topogen_core::ctx::RunCtx;
use topogen_par::cancel::{is_cancelled_payload, CancelToken, Deadline};
use topogen_par::trace::{self, TraceSink};
use topogen_store::Store;

use super::http::{read_request, status_for_parse_error, write_response, HttpRequest};
use super::ledger::{Ledger, LedgerEntry};
use super::measure::{measure_body, response_key};
use super::pool::{DispatchError, PoolStats, WorkerPool};
use super::wire::{error_body, MeasureRequest};
use crate::ExitCode;

/// How often a streaming response flushes accumulated span events.
const STREAM_POLL: Duration = Duration::from_millis(50);

/// Consecutive panics on one request key before it is quarantined.
pub const QUARANTINE_AFTER: u32 = 3;

/// Seconds advertised in `Retry-After` on backpressure (`429`) and
/// drain (`503`) rejections.
const RETRY_AFTER_SECS: &str = "1";

/// Extra time granted past the drain budget for cancelled requests to
/// reach their next cooperative checkpoint.
const DRAIN_CANCEL_GRACE: Duration = Duration::from_secs(5);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Waiting requests beyond the busy workers before `429`.
    pub queue: usize,
    /// Shared artifact store (response cache + engine caches); `None`
    /// disables caching.
    pub store: Option<Arc<Store>>,
    /// Request-ledger path.
    pub ledger_path: PathBuf,
    /// Deadline applied when a request doesn't carry one; `None` means
    /// such requests run unbounded.
    pub default_deadline: Option<Duration>,
}

impl ServeConfig {
    /// Defaults: 4 workers, a queue of 8, ledger at
    /// `out/serve-ledger.jsonl`, no cache, no default deadline.
    pub fn new(addr: impl Into<String>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            workers: 4,
            queue: 8,
            store: None,
            ledger_path: PathBuf::from("out/serve-ledger.jsonl"),
            default_deadline: None,
        }
    }
}

struct DaemonState {
    store: Option<Arc<Store>>,
    ledger: Ledger,
    default_deadline: Option<Duration>,
    next_id: AtomicU64,
    /// Accepted requests not yet answered (queued + running).
    in_flight: AtomicUsize,
    /// Cancel tokens of registered measure requests, by request id.
    cancels: Mutex<HashMap<u64, CancelToken>>,
    /// Consecutive-panic counts per request key (the poison guard).
    quarantine: Mutex<HashMap<String, u32>>,
    /// Set when the drain budget has expired: jobs starting now answer
    /// `503` immediately instead of computing.
    drain_expired: AtomicBool,
}

impl DaemonState {
    fn quarantined(&self, key: &str) -> bool {
        self.quarantine
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .is_some_and(|&n| n >= QUARANTINE_AFTER)
    }

    /// Record a (non-deadline) panic against `key`; returns the new
    /// consecutive count.
    fn note_panic(&self, key: &str) -> u32 {
        let mut map = self.quarantine.lock().unwrap_or_else(|e| e.into_inner());
        let n = map.entry(key.to_string()).or_insert(0);
        *n += 1;
        *n
    }

    fn clear_panics(&self, key: &str) {
        self.quarantine
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key);
    }
}

/// Decrements the in-flight gauge exactly once — when its job finishes,
/// unwinds, or is dropped unexecuted (rejected dispatch).
struct InFlight(Arc<DaemonState>);

impl Drop for InFlight {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What a [`DaemonHandle::drain`] accomplished.
#[derive(Clone, Copy, Debug)]
pub struct DrainSummary {
    /// Requests in flight when the drain began.
    pub in_flight_at_stop: usize,
    /// Requests still running at the budget that were told to cancel.
    pub cancelled: usize,
    /// True when every in-flight request finished (or cancelled out)
    /// before the grace period ran out.
    pub drained: bool,
    /// Wall-clock seconds the drain took.
    pub elapsed_secs: f64,
    /// Pool health at the end of the drain.
    pub pool: PoolStats,
    /// Damaged ledger lines recovered when this daemon opened.
    pub recovered_lines: u64,
}

impl std::fmt::Display for DrainSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drain: in_flight={} cancelled={} drained={} elapsed={:.2}s \
             workers={}/{} panics={} respawns={} recovered_lines={}",
            self.in_flight_at_stop,
            self.cancelled,
            self.drained,
            self.elapsed_secs,
            self.pool.live,
            self.pool.size,
            self.pool.panics,
            self.pool.respawns,
            self.recovered_lines,
        )
    }
}

/// A running daemon; dropping it shuts the daemon down.
pub struct DaemonHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    ledger_path: PathBuf,
    state: Arc<DaemonState>,
    pool: Arc<WorkerPool>,
}

impl DaemonHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Where this daemon's request ledger lives.
    pub fn ledger_path(&self) -> &std::path::Path {
        &self.ledger_path
    }

    /// Worker-pool health (size, live, panics, respawns).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Damaged ledger lines recovered when this daemon's ledger opened.
    pub fn recovered_lines(&self) -> u64 {
        self.state.ledger.recovered_lines()
    }

    /// Requests accepted but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.state.in_flight.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish
    /// within `budget`, cancel whatever is still running past it, join
    /// everything, and fsync the ledger. Idempotent with
    /// [`shutdown`](Self::shutdown) — whichever runs first wins.
    pub fn drain(&mut self, budget: Duration) -> DrainSummary {
        let start = Instant::now();
        // `live` is sampled before the stop flag goes up: the accept
        // thread shuts the pool down as soon as it wakes, so a later
        // reading only measures how far that teardown got. Sampled here
        // it answers the operator's question — did the daemon reach its
        // drain at full strength? The cumulative counters (panics,
        // respawns) are re-sampled at the end instead, so panics during
        // the drain itself still show.
        let live_at_stop = self.pool.stats().live;
        if !self.stop.swap(true, Ordering::SeqCst) {
            // The accept loop blocks in accept(); poke it awake.
            let _ = TcpStream::connect(self.addr);
        }
        let in_flight_at_stop = self.state.in_flight.load(Ordering::SeqCst);
        while self.state.in_flight.load(Ordering::SeqCst) > 0 && start.elapsed() < budget {
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut cancelled_ids: HashSet<u64> = HashSet::new();
        if self.state.in_flight.load(Ordering::SeqCst) > 0 {
            // Budget exhausted: tell every running request to stop at
            // its next checkpoint, and keep sweeping — queued jobs may
            // register after the first pass (they answer 503 anyway
            // once `drain_expired` is up).
            self.state.drain_expired.store(true, Ordering::SeqCst);
            let grace = Instant::now() + DRAIN_CANCEL_GRACE;
            loop {
                {
                    let cancels = self.state.cancels.lock().unwrap_or_else(|e| e.into_inner());
                    for (id, token) in cancels.iter() {
                        token.cancel();
                        cancelled_ids.insert(*id);
                    }
                }
                if self.state.in_flight.load(Ordering::SeqCst) == 0 || Instant::now() >= grace {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Err(e) = self.state.ledger.sync() {
            eprintln!("serve: ledger sync failed during drain: {e}");
        }
        let mut pool = self.pool.stats();
        pool.live = live_at_stop;
        DrainSummary {
            in_flight_at_stop,
            cancelled: cancelled_ids.len(),
            drained: self.state.in_flight.load(Ordering::SeqCst) == 0,
            elapsed_secs: start.elapsed().as_secs_f64(),
            pool,
            recovered_lines: self.state.ledger.recovered_lines(),
        }
    }

    /// Stop accepting, finish in-flight requests, join all threads.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            if let Some(handle) = self.accept_thread.take() {
                let _ = handle.join();
            }
            return;
        }
        // The accept loop blocks in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind and start serving; returns once the listener is live.
pub fn serve(config: ServeConfig) -> std::io::Result<DaemonHandle> {
    // Deadline expiries unwind with a Cancelled payload; don't let the
    // default hook spam stderr for those expected panics.
    crate::runner::quiet_expected_panics();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(DaemonState {
        store: config.store.clone(),
        ledger: Ledger::open(&config.ledger_path)?,
        default_deadline: config.default_deadline,
        next_id: AtomicU64::new(1),
        in_flight: AtomicUsize::new(0),
        cancels: Mutex::new(HashMap::new()),
        quarantine: Mutex::new(HashMap::new()),
        drain_expired: AtomicBool::new(false),
    });
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let pool = Arc::new(WorkerPool::new(config.workers, config.queue));
    let accept_pool = Arc::clone(&pool);
    let accept_state = Arc::clone(&state);
    let accept_thread = std::thread::Builder::new()
        .name("serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let state = Arc::clone(&accept_state);
                // Count the request the moment it is accepted; the
                // guard decrements whether the job runs, unwinds, or is
                // dropped unexecuted by a refused dispatch.
                state.in_flight.fetch_add(1, Ordering::SeqCst);
                let guard = InFlight(Arc::clone(&state));
                let dispatched = accept_pool.try_dispatch(Box::new({
                    let state = Arc::clone(&state);
                    let mut stream = stream.try_clone().expect("clone TCP stream");
                    move || {
                        let _guard = guard;
                        handle_connection(&state, &mut stream);
                    }
                }));
                match dispatched {
                    Ok(()) => {}
                    Err(DispatchError::Saturated) => {
                        // Rejection must not block the accept loop on a
                        // slow client; a throwaway thread is fine for
                        // the (rare, cheap) overload path.
                        std::thread::spawn(move || reject_saturated(&state, stream));
                    }
                    Err(DispatchError::Closed) => break,
                }
            }
            accept_pool.shutdown();
        })?;
    Ok(DaemonHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        ledger_path: config.ledger_path,
        state,
        pool,
    })
}

/// Answer `429` without touching the worker pool — the whole point of
/// the bounded queue is that saturation is cheap to report.
fn reject_saturated(state: &DaemonState, mut stream: TcpStream) {
    // Drain the request before answering: closing a socket with unread
    // request bytes raises a TCP reset that can destroy the response
    // before the client reads it.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = read_request(&mut stream);
    let exit = ExitCode::Failures;
    let body = error_body("saturated: all workers busy and queue full", exit);
    let mut headers = status_headers(exit, "-");
    headers.push(("Retry-After", RETRY_AFTER_SECS.to_string()));
    let _ = write_response(
        &mut stream,
        429,
        "Too Many Requests",
        &headers,
        "application/json",
        body.as_bytes(),
    );
    record(
        state,
        LedgerEntry {
            request_id: state.next_id.fetch_add(1, Ordering::SeqCst),
            topology: "-".into(),
            seed: 0,
            scale: "-".into(),
            status: exit,
            http: 429,
            cache: "-",
            duration_secs: 0.0,
            error: Some("saturated".into()),
        },
    );
}

fn status_headers(exit: ExitCode, cache: &str) -> Vec<(&'static str, String)> {
    vec![
        ("X-Topogen-Status", exit.as_str().to_string()),
        ("X-Topogen-Code", exit.code().to_string()),
        ("X-Topogen-Cache", cache.to_string()),
    ]
}

fn record(state: &DaemonState, entry: LedgerEntry) {
    if let Err(e) = state.ledger.append(&entry) {
        eprintln!("serve: ledger append failed: {e}");
    }
}

fn handle_connection(state: &DaemonState, stream: &mut TcpStream) {
    let request_id = state.next_id.fetch_add(1, Ordering::SeqCst);
    let started = Instant::now();
    // A stalled peer must not pin a worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let req = match read_request(stream) {
        Ok(req) => req,
        Err(e) => {
            let (http, _) = status_for_parse_error(&e);
            respond_error(
                state,
                stream,
                request_id,
                started,
                http,
                &format!("bad request: {e}"),
            );
            return;
        }
    };
    if state.drain_expired.load(Ordering::SeqCst) {
        // The drain budget is spent; anything starting now is refused
        // fast so the daemon can finish dying.
        respond_unavailable(
            state,
            stream,
            request_id,
            started,
            "draining: shutting down",
        );
        return;
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let exit = ExitCode::Clean;
            let _ = write_response(
                stream,
                200,
                "OK",
                &status_headers(exit, "-"),
                "text/plain",
                b"ok\n",
            );
            record(
                state,
                LedgerEntry {
                    request_id,
                    topology: "-".into(),
                    seed: 0,
                    scale: "-".into(),
                    status: exit,
                    http: 200,
                    cache: "-",
                    duration_secs: started.elapsed().as_secs_f64(),
                    error: None,
                },
            );
        }
        ("POST", "/measure") => handle_measure(state, stream, request_id, started, &req),
        (method, path) => {
            respond_error(
                state,
                stream,
                request_id,
                started,
                404,
                &format!("no route for {method} {path}"),
            );
        }
    }
}

/// Usage-class failure: malformed HTTP, bad JSON, unknown route.
fn respond_error(
    state: &DaemonState,
    stream: &mut TcpStream,
    request_id: u64,
    started: Instant,
    http: u16,
    error: &str,
) {
    let exit = ExitCode::Usage;
    let reason = match http {
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        _ => "Error",
    };
    let body = error_body(error, exit);
    let _ = write_response(
        stream,
        http,
        reason,
        &status_headers(exit, "-"),
        "application/json",
        body.as_bytes(),
    );
    record(
        state,
        LedgerEntry {
            request_id,
            topology: "-".into(),
            seed: 0,
            scale: "-".into(),
            status: exit,
            http,
            cache: "-",
            duration_secs: started.elapsed().as_secs_f64(),
            error: Some(error.to_string()),
        },
    );
}

/// `503 Service Unavailable` with `Retry-After` — quarantined keys and
/// requests arriving after the drain budget expired.
fn respond_unavailable(
    state: &DaemonState,
    stream: &mut TcpStream,
    request_id: u64,
    started: Instant,
    error: &str,
) {
    let exit = ExitCode::Failures;
    let body = error_body(error, exit);
    let mut headers = status_headers(exit, "-");
    headers.push(("Retry-After", RETRY_AFTER_SECS.to_string()));
    let _ = write_response(
        stream,
        503,
        "Service Unavailable",
        &headers,
        "application/json",
        body.as_bytes(),
    );
    record(
        state,
        LedgerEntry {
            request_id,
            topology: "-".into(),
            seed: 0,
            scale: "-".into(),
            status: exit,
            http: 503,
            cache: "-",
            duration_secs: started.elapsed().as_secs_f64(),
            error: Some(error.to_string()),
        },
    );
}

/// Unregisters a request's cancel token when the request finishes —
/// including by unwind, so the drain sweep never cancels a dead id.
struct CancelReg<'a> {
    state: &'a DaemonState,
    id: u64,
}

impl Drop for CancelReg<'_> {
    fn drop(&mut self) {
        self.state
            .cancels
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.id);
    }
}

fn handle_measure(
    state: &DaemonState,
    stream: &mut TcpStream,
    request_id: u64,
    started: Instant,
    http_req: &HttpRequest,
) {
    let text = match std::str::from_utf8(&http_req.body) {
        Ok(t) => t,
        Err(_) => {
            respond_error(state, stream, request_id, started, 400, "body is not UTF-8");
            return;
        }
    };
    let req = match MeasureRequest::from_json(text) {
        Ok(req) => req,
        Err(e) => {
            respond_error(state, stream, request_id, started, 400, &e.0);
            return;
        }
    };
    // The poison guard: a key that keeps panicking is refused before it
    // can take down more requests (a success before the threshold
    // resets its count; past it, only a restart does).
    let key = response_key(&req);
    if state.quarantined(&key) {
        respond_unavailable(
            state,
            stream,
            request_id,
            started,
            &format!("quarantined: {QUARANTINE_AFTER} consecutive panics on this request key"),
        );
        return;
    }
    // Every request gets a cancellable deadline — cancel-only when
    // unbounded — registered so the drain path can stop stragglers.
    let deadline = req
        .deadline_secs
        .map(Duration::from_secs_f64)
        .or(state.default_deadline)
        .map(Deadline::after)
        .unwrap_or_else(Deadline::cancel_only);
    state
        .cancels
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(request_id, deadline.token());
    let _cancel_reg = CancelReg {
        state,
        id: request_id,
    };
    let mut ctx = RunCtx::new();
    ctx.store = state.store.clone();
    ctx.deadline = Some(deadline);
    let mut entry = LedgerEntry {
        request_id,
        topology: spec_canonical(&req.spec),
        seed: req.seed,
        scale: scale_tag(req.scale).to_string(),
        status: ExitCode::Clean,
        http: 200,
        cache: "-",
        duration_secs: 0.0,
        error: None,
    };
    if req.stream {
        stream_measure(state, stream, ctx, &req, &key, &mut entry);
    } else {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| measure_body(&ctx, &req)));
        match outcome {
            Ok((body, hit)) => {
                state.clear_panics(&key);
                entry.cache = if hit { "hit" } else { "miss" };
                let _ = write_response(
                    stream,
                    200,
                    "OK",
                    &status_headers(ExitCode::Clean, entry.cache),
                    "application/json",
                    body.as_bytes(),
                );
            }
            Err(payload) => {
                let cancelled = is_cancelled_payload(&*payload);
                let (http, reason, error) = if cancelled {
                    (504, "Gateway Timeout", "deadline exceeded".to_string())
                } else {
                    state.note_panic(&key);
                    (500, "Internal Server Error", panic_message(&*payload))
                };
                entry.status = ExitCode::Failures;
                entry.http = http;
                // The durable ledger never records the panic payload —
                // it can carry arbitrary internal state. The HTTP body
                // still tells the requester what happened.
                entry.error = Some(if cancelled {
                    error.clone()
                } else {
                    "panicked (payload redacted)".to_string()
                });
                let body = error_body(&error, ExitCode::Failures);
                let _ = write_response(
                    stream,
                    http,
                    reason,
                    &status_headers(ExitCode::Failures, "-"),
                    "application/json",
                    body.as_bytes(),
                );
                if http == 504 {
                    // The deadline path must not leave a half-open
                    // socket behind: shut both directions so the peer
                    // sees FIN, not a dangling connection.
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
    }
    entry.duration_secs = started.elapsed().as_secs_f64();
    record(state, entry);
}

/// Streaming flavor: HTTP status is committed up front (`200`, NDJSON,
/// close-delimited), progress spans flow as one JSON object per line,
/// and the final line is the compact result — or an error document
/// whose `status`/`code` carry the real outcome.
fn stream_measure(
    state: &DaemonState,
    stream: &mut TcpStream,
    ctx: RunCtx,
    req: &MeasureRequest,
    key: &str,
    entry: &mut LedgerEntry,
) {
    let sink = Arc::new(TraceSink::new());
    let mut ctx = ctx;
    ctx.trace = Some(Arc::clone(&sink));
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        entry.status = ExitCode::Failures;
        entry.error = Some("client went away before the stream started".into());
        return;
    }
    let (done_tx, done_rx) = mpsc::channel();
    let compute = {
        let ctx = ctx.clone();
        let req = req.clone();
        std::thread::spawn(move || {
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| measure_body(&ctx, &req)));
            let _ = done_tx.send(outcome);
        })
    };
    let mut mark = sink.mark();
    let outcome = loop {
        match done_rx.recv_timeout(STREAM_POLL) {
            Ok(outcome) => break outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let (events, next) = sink.drain_since(&mark);
                mark = next;
                for ev in &events {
                    let mut line = trace::event_json(ev);
                    line.push('\n');
                    // A gone client can't cancel the engines; just stop
                    // feeding it and let the computation finish.
                    let _ = stream.write_all(line.as_bytes());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Err(Box::new("compute thread vanished".to_string())
                    as Box<dyn std::any::Any + Send>)
            }
        }
    };
    let _ = compute.join();
    let (events, _) = sink.drain_since(&mark);
    for ev in &events {
        let mut line = trace::event_json(ev);
        line.push('\n');
        let _ = stream.write_all(line.as_bytes());
    }
    let final_line = match outcome {
        Ok((body, hit)) => {
            state.clear_panics(key);
            entry.cache = if hit { "hit" } else { "miss" };
            // The cached/pretty body is multi-line; the stream's result
            // line is its compact re-rendering.
            compact_json_line(&body)
        }
        Err(payload) => {
            let cancelled = is_cancelled_payload(&*payload);
            let error = if cancelled {
                "deadline exceeded".to_string()
            } else {
                state.note_panic(key);
                panic_message(&*payload)
            };
            // The HTTP status was already committed as 200; the ledger
            // records the logical outcome (panic payload redacted, as
            // on the plain path), the tail line carries it to the
            // client.
            entry.status = ExitCode::Failures;
            entry.error = Some(if cancelled {
                error.clone()
            } else {
                "panicked (payload redacted)".to_string()
            });
            let mut line = error_line(&error);
            line.push('\n');
            line
        }
    };
    let _ = stream.write_all(final_line.as_bytes());
    let _ = stream.flush();
}

/// Re-render a pretty JSON body as one compact line.
fn compact_json_line(pretty: &str) -> String {
    match serde_json::from_str::<serde::Content>(pretty) {
        Ok(c) => {
            let mut s = serde_json::to_string(&c).unwrap_or_else(|_| pretty.trim().to_string());
            s.push('\n');
            s
        }
        Err(_) => {
            let mut s = pretty.trim().to_string();
            s.push('\n');
            s
        }
    }
}

/// Compact single-line error document for stream tails.
fn error_line(error: &str) -> String {
    let exit = ExitCode::Failures;
    let doc = serde::Content::Map(vec![
        (
            "schema_version".to_string(),
            serde::Content::U64(super::wire::WIRE_VERSION),
        ),
        ("error".to_string(), serde::Content::Str(error.to_string())),
        (
            "status".to_string(),
            serde::Content::Str(exit.as_str().to_string()),
        ),
        ("code".to_string(), serde::Content::U64(exit.code() as u64)),
    ]);
    serde_json::to_string(&doc).expect("error serializes")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .map(|m| format!("measurement panicked: {m}"))
        .unwrap_or_else(|| "measurement panicked".to_string())
}

/// `repro serve --self-test`: boot a daemon on an ephemeral port,
/// exercise the protocol end to end with the std-only client, and
/// report. This is the CI smoke path — no fixtures, no network beyond
/// loopback.
pub fn self_test(mut config: ServeConfig) -> ExitCode {
    config.addr = "127.0.0.1:0".into();
    // The warm-request check needs a response cache; give the test its
    // own throwaway store when the caller didn't bring one.
    let scratch = if config.store.is_none() {
        let dir =
            std::env::temp_dir().join(format!("topogen-serve-selftest-{}", std::process::id()));
        match Store::open(&dir) {
            Ok(store) => {
                config.store = Some(Arc::new(store));
                Some(dir)
            }
            Err(e) => {
                eprintln!("self-test: scratch store failed to open: {e}");
                return ExitCode::Failures;
            }
        }
    } else {
        None
    };
    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("self-test: daemon failed to start: {e}");
            return ExitCode::Failures;
        }
    };
    let addr = handle.addr();
    let mut failures = 0usize;
    let mut check = |name: &str, ok: bool| {
        println!("self-test: {name}: {}", if ok { "ok" } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    let status_of = |r: &std::io::Result<super::http::HttpResponse>| -> u16 {
        r.as_ref().map(|r| r.status).unwrap_or(0)
    };
    let health = super::http::http_get(addr, "/healthz");
    check("healthz", status_of(&health) == 200);

    let req = MeasureRequest::new(
        topogen_core::zoo::TopologySpec::Mesh { side: 12 },
        7,
        topogen_core::zoo::Scale::Small,
    );
    let cold = super::http::http_post(addr, "/measure", &req.to_json());
    check("measure (cold)", status_of(&cold) == 200);
    let warm = super::http::http_post(addr, "/measure", &req.to_json());
    check("measure (warm)", status_of(&warm) == 200);
    if let (Ok(cold), Ok(warm)) = (&cold, &warm) {
        check("warm equals cold byte-for-byte", warm.body == cold.body);
        check(
            "warm served from cache",
            warm.headers.get("x-topogen-cache").map(String::as_str) == Some("hit"),
        );
    }

    let bad = super::http::http_post(
        addr,
        "/measure",
        r#"{"schema_version":99,"topology":"Mesh","seed":1}"#,
    );
    check(
        "unknown schema_version rejected with 400",
        status_of(&bad) == 400,
    );

    let ledger_ok = std::fs::read_to_string(handle.ledger_path())
        .map(|text| text.lines().count() >= 4)
        .unwrap_or(false);
    check("ledger recorded every request", ledger_ok);

    drop(handle);
    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(dir);
    }
    if failures == 0 {
        println!("self-test: all checks passed");
        ExitCode::Clean
    } else {
        eprintln!("self-test: {failures} check(s) failed");
        ExitCode::Failures
    }
}
