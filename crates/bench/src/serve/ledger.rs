//! The request ledger: one JSONL line per request the daemon saw.
//!
//! Every outcome is recorded — served, cache hit, rejected for
//! backpressure, timed out, malformed — using the CLI's
//! [`ExitCode`](crate::ExitCode) taxonomy as the `status`/`code`
//! fields, so the daemon's accounting and the batch runner's exit
//! codes read as one vocabulary. Lines are appended under a mutex and
//! flushed per entry; a crashed daemon loses at most the line being
//! written.

use crate::ExitCode;
use serde::{Content, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use topogen_par::faults::{self, IoFault};

use super::wire::WIRE_VERSION;

/// One ledger line.
#[derive(Clone, Debug)]
pub struct LedgerEntry {
    /// Monotonic per-daemon request id (429 rejections included).
    pub request_id: u64,
    /// Canonical `generator(params)` spec, or `"-"` when the request
    /// never parsed far enough to have one.
    pub topology: String,
    /// Request seed (0 when unparsed).
    pub seed: u64,
    /// `"small"` / `"paper"` / `"-"`.
    pub scale: String,
    /// Outcome in the shared exit-code taxonomy.
    pub status: ExitCode,
    /// HTTP status sent back.
    pub http: u16,
    /// `"hit"`, `"miss"`, or `"-"` (no cache consulted).
    pub cache: &'static str,
    /// Wall-clock seconds spent on the request.
    pub duration_secs: f64,
    /// Error detail for non-clean outcomes.
    pub error: Option<String>,
}

impl Serialize for LedgerEntry {
    fn to_content(&self) -> Content {
        let mut fields = vec![
            ("schema_version".to_string(), WIRE_VERSION.to_content()),
            ("request_id".to_string(), self.request_id.to_content()),
            ("topology".to_string(), self.topology.to_content()),
            ("seed".to_string(), self.seed.to_content()),
            ("scale".to_string(), self.scale.to_content()),
            (
                "status".to_string(),
                Content::Str(self.status.as_str().to_string()),
            ),
            ("code".to_string(), (self.status.code() as u64).to_content()),
            ("http".to_string(), (self.http as u64).to_content()),
            ("cache".to_string(), Content::Str(self.cache.to_string())),
            ("duration_secs".to_string(), self.duration_secs.to_content()),
        ];
        if let Some(e) = &self.error {
            fields.push(("error".to_string(), e.to_content()));
        }
        Content::Map(fields)
    }
}

/// An append-only JSONL ledger file.
#[derive(Debug)]
pub struct Ledger {
    path: PathBuf,
    file: Mutex<File>,
    recovered_lines: u64,
}

impl Ledger {
    /// Open (creating parents) for appending, recovering from whatever
    /// a previous crash left behind: a torn final line (no trailing
    /// newline) is truncated away, and complete-but-unparseable JSONL
    /// lines are skipped, not fatal. Both are counted in
    /// [`recovered_lines`](Self::recovered_lines) — a damaged ledger
    /// never refuses to start the daemon.
    pub fn open(path: &Path) -> io::Result<Ledger> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut recovered_lines = 0u64;
        if let Ok(bytes) = std::fs::read(path) {
            let torn = !bytes.is_empty() && !bytes.ends_with(b"\n");
            if torn {
                let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                OpenOptions::new()
                    .write(true)
                    .open(path)
                    .and_then(|f| f.set_len(keep as u64))?;
                eprintln!(
                    "serve: recovered torn ledger tail ({} byte(s) truncated)",
                    bytes.len() - keep
                );
            }
            let text = String::from_utf8_lossy(&bytes);
            let bad = text
                .lines()
                .filter(|l| {
                    let l = l.trim();
                    !l.is_empty() && serde_json::from_str::<Content>(l).is_err()
                })
                .count() as u64;
            if bad > 0 {
                eprintln!("serve: ledger has {bad} unparseable line(s); skipped, not fatal");
            }
            // The torn tail is usually one of the unparseable lines;
            // count it once either way.
            recovered_lines = if torn { bad.max(1) } else { bad };
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Ledger {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            recovered_lines,
        })
    }

    /// Where the ledger lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines found damaged (torn tail, unparseable JSON) and skipped
    /// during [`open`](Self::open).
    pub fn recovered_lines(&self) -> u64 {
        self.recovered_lines
    }

    /// Append one entry; errors are returned, not swallowed, so the
    /// daemon can log them (a full disk should be visible).
    pub fn append(&self, entry: &LedgerEntry) -> io::Result<()> {
        let mut line = serde_json::to_string(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let payload = match faults::inject_io("ledger-append", "serve") {
            Some(IoFault::Err) => return Err(faults::io_error("ledger-append", "serve")),
            Some(IoFault::Short) => &line.as_bytes()[..line.len() / 2],
            None => line.as_bytes(),
        };
        file.write_all(payload)?;
        file.flush()
    }

    /// Flush and fsync — the drain path calls this so a clean shutdown
    /// leaves a durable, complete ledger.
    pub fn sync(&self) -> io::Result<()> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.flush()?;
        file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_append_as_one_json_line_each() {
        let dir = std::env::temp_dir().join(format!(
            "topogen-ledger-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let ledger = Ledger::open(&path).unwrap();
        ledger
            .append(&LedgerEntry {
                request_id: 1,
                topology: "mesh(side=3)".into(),
                seed: 7,
                scale: "small".into(),
                status: ExitCode::Clean,
                http: 200,
                cache: "miss",
                duration_secs: 0.25,
                error: None,
            })
            .unwrap();
        ledger
            .append(&LedgerEntry {
                request_id: 2,
                topology: "-".into(),
                seed: 0,
                scale: "-".into(),
                status: ExitCode::Usage,
                http: 400,
                cache: "-",
                duration_secs: 0.0,
                error: Some("unsupported schema_version 99".into()),
            })
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"status\":\"clean\""), "{}", lines[0]);
        assert!(lines[1].contains("\"code\":2"), "{}", lines[1]);
        assert!(lines[1].contains("schema_version 99"), "{}", lines[1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_entry(request_id: u64) -> LedgerEntry {
        LedgerEntry {
            request_id,
            topology: "mesh(side=3)".into(),
            seed: 7,
            scale: "small".into(),
            status: ExitCode::Clean,
            http: 200,
            cache: "miss",
            duration_secs: 0.25,
            error: None,
        }
    }

    #[test]
    fn torn_tail_and_garbage_lines_are_recovered_not_fatal() {
        let dir = std::env::temp_dir().join(format!(
            "topogen-ledger-recover-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        {
            let ledger = Ledger::open(&path).unwrap();
            assert_eq!(ledger.recovered_lines(), 0);
            ledger.append(&sample_entry(1)).unwrap();
        }
        // Simulate a crash mid-append plus an earlier corrupted line.
        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{good}not json at all\n{{\"torn\":")).unwrap();

        let ledger = Ledger::open(&path).unwrap();
        assert_eq!(ledger.recovered_lines(), 2, "garbage line + torn tail");
        // The torn tail was truncated; appending continues cleanly.
        ledger.append(&sample_entry(2)).unwrap();
        ledger.sync().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let parsed_ok = text
            .lines()
            .filter(|l| serde_json::from_str::<Content>(l).is_ok())
            .count();
        assert_eq!(parsed_ok, 2, "both real entries parse:\n{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_append_faults_surface_as_errors_and_tears() {
        let _x = topogen_par::faults::exclusive_for_tests();
        let dir = std::env::temp_dir().join(format!(
            "topogen-ledger-fault-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let ledger = Ledger::open(&path).unwrap();
        topogen_par::faults::install_spec("ledger-append@serve:err:1:3").unwrap();
        let err = ledger.append(&sample_entry(1)).unwrap_err();
        topogen_par::faults::install_spec("ledger-append@serve:short:1:3").unwrap();
        ledger.append(&sample_entry(2)).unwrap();
        topogen_par::faults::clear();
        assert!(err.to_string().contains("injected fault"));
        drop(ledger);
        // The shorted append left a torn tail; reopening recovers it.
        let ledger = Ledger::open(&path).unwrap();
        assert_eq!(ledger.recovered_lines(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.is_empty(), "torn-only ledger truncates to empty");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
