//! The request ledger: one JSONL line per request the daemon saw.
//!
//! Every outcome is recorded — served, cache hit, rejected for
//! backpressure, timed out, malformed — using the CLI's
//! [`ExitCode`](crate::ExitCode) taxonomy as the `status`/`code`
//! fields, so the daemon's accounting and the batch runner's exit
//! codes read as one vocabulary. Lines are appended under a mutex and
//! flushed per entry; a crashed daemon loses at most the line being
//! written.

use crate::ExitCode;
use serde::{Content, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use super::wire::WIRE_VERSION;

/// One ledger line.
#[derive(Clone, Debug)]
pub struct LedgerEntry {
    /// Monotonic per-daemon request id (429 rejections included).
    pub request_id: u64,
    /// Canonical `generator(params)` spec, or `"-"` when the request
    /// never parsed far enough to have one.
    pub topology: String,
    /// Request seed (0 when unparsed).
    pub seed: u64,
    /// `"small"` / `"paper"` / `"-"`.
    pub scale: String,
    /// Outcome in the shared exit-code taxonomy.
    pub status: ExitCode,
    /// HTTP status sent back.
    pub http: u16,
    /// `"hit"`, `"miss"`, or `"-"` (no cache consulted).
    pub cache: &'static str,
    /// Wall-clock seconds spent on the request.
    pub duration_secs: f64,
    /// Error detail for non-clean outcomes.
    pub error: Option<String>,
}

impl Serialize for LedgerEntry {
    fn to_content(&self) -> Content {
        let mut fields = vec![
            ("schema_version".to_string(), WIRE_VERSION.to_content()),
            ("request_id".to_string(), self.request_id.to_content()),
            ("topology".to_string(), self.topology.to_content()),
            ("seed".to_string(), self.seed.to_content()),
            ("scale".to_string(), self.scale.to_content()),
            (
                "status".to_string(),
                Content::Str(self.status.as_str().to_string()),
            ),
            ("code".to_string(), (self.status.code() as u64).to_content()),
            ("http".to_string(), (self.http as u64).to_content()),
            ("cache".to_string(), Content::Str(self.cache.to_string())),
            ("duration_secs".to_string(), self.duration_secs.to_content()),
        ];
        if let Some(e) = &self.error {
            fields.push(("error".to_string(), e.to_content()));
        }
        Content::Map(fields)
    }
}

/// An append-only JSONL ledger file.
#[derive(Debug)]
pub struct Ledger {
    path: PathBuf,
    file: Mutex<File>,
}

impl Ledger {
    /// Open (creating parents) for appending.
    pub fn open(path: &Path) -> io::Result<Ledger> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Ledger {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Where the ledger lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one entry; errors are returned, not swallowed, so the
    /// daemon can log them (a full disk should be visible).
    pub fn append(&self, entry: &LedgerEntry) -> io::Result<()> {
        let mut line = serde_json::to_string(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_append_as_one_json_line_each() {
        let dir = std::env::temp_dir().join(format!(
            "topogen-ledger-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let ledger = Ledger::open(&path).unwrap();
        ledger
            .append(&LedgerEntry {
                request_id: 1,
                topology: "mesh(side=3)".into(),
                seed: 7,
                scale: "small".into(),
                status: ExitCode::Clean,
                http: 200,
                cache: "miss",
                duration_secs: 0.25,
                error: None,
            })
            .unwrap();
        ledger
            .append(&LedgerEntry {
                request_id: 2,
                topology: "-".into(),
                seed: 0,
                scale: "-".into(),
                status: ExitCode::Usage,
                http: 400,
                cache: "-",
                duration_secs: 0.0,
                error: Some("unsupported schema_version 99".into()),
            })
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"status\":\"clean\""), "{}", lines[0]);
        assert!(lines[1].contains("\"code\":2"), "{}", lines[1]);
        assert!(lines[1].contains("schema_version 99"), "{}", lines[1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
