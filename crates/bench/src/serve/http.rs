//! A deliberately minimal HTTP/1.1 surface over std TCP streams.
//!
//! Just enough protocol for the daemon and its tests: one request per
//! connection (`Connection: close`), `Content-Length` bodies only (no
//! chunked decoding), hard size limits on header and body so a
//! misbehaving peer cannot balloon memory. Anything fancier belongs in
//! a real HTTP stack — which would be a new dependency, which this
//! workspace does not take.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use topogen_par::faults::{self, IoFault};

/// Maximum accepted header block (request line + headers).
pub const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Maximum accepted request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Default client read timeout for [`http_post`] / [`http_get`].
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(600);

/// Map a [`read_request`] error to an HTTP status: size-limit
/// violations are 413 (the request was understood and refused), all
/// other parse failures are 400.
pub fn status_for_parse_error(e: &io::Error) -> (u16, &'static str) {
    if e.kind() == io::ErrorKind::InvalidData && e.to_string().contains("exceeds limit") {
        (413, "Payload Too Large")
    } else {
        (400, "Bad Request")
    }
}

/// Server-side socket read with fault injection: `err` fails the read
/// outright; `short` delivers through a buffer capped at half size — no
/// bytes are lost, the caller's read loop just makes more trips, which
/// is exactly what a real short read does.
fn sock_read(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<usize> {
    match faults::inject_io("sock-read", "serve") {
        Some(IoFault::Err) => Err(faults::io_error("sock-read", "serve")),
        Some(IoFault::Short) => {
            let cap = (buf.len() / 2).max(1);
            stream.read(&mut buf[..cap])
        }
        None => stream.read(buf),
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// `GET`, `POST`, …
    pub method: String,
    /// Request target, e.g. `/measure`.
    pub path: String,
    /// Header map, names lowercased.
    pub headers: BTreeMap<String, String>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Read one request from `stream`, enforcing the size limits.
pub fn read_request(stream: &mut TcpStream) -> io::Result<HttpRequest> {
    let mut head = Vec::with_capacity(512);
    let mut spill = Vec::new();
    let mut buf = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&head) {
            if pos > MAX_HEADER_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "header block exceeds limit",
                ));
            }
            break pos;
        }
        if head.len() > MAX_HEADER_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header block exceeds limit",
            ));
        }
        let n = sock_read(stream, &mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-header",
            ));
        }
        head.extend_from_slice(&buf[..n]);
    };
    // Bytes read past the blank line belong to the body.
    spill.extend_from_slice(&head[header_end..]);
    head.truncate(header_end);

    let text = String::from_utf8(head)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF8 header block"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "request line missing path"))?
        .to_string();

    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }

    let content_length: usize = match headers.get("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "body exceeds limit",
        ));
    }
    let mut body = spill;
    while body.len() < content_length {
        let n = sock_read(stream, &mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    Ok(HttpRequest {
        method,
        path,
        headers,
        body,
    })
}

/// Position just past the `\r\n\r\n` header terminator, if present.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Write a complete response with `Connection: close` semantics.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    match faults::inject_io("sock-write", "serve") {
        Some(IoFault::Err) => return Err(faults::io_error("sock-write", "serve")),
        Some(IoFault::Short) => {
            // A torn response: some header bytes land, then the
            // connection dies under the peer. The client sees a
            // truncated reply on a closed socket — never a hang.
            let cut = (head.len() / 2).max(1);
            stream.write_all(&head.as_bytes()[..cut])?;
            return Err(faults::io_error("sock-write", "serve"));
        }
        None => {}
    }
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A client-side response (used by `--self-test` and the tests).
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header map, names lowercased.
    pub headers: BTreeMap<String, String>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Body as UTF-8 (lossy — only used in diagnostics and tests).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Tiny std-only client: POST `body` to `http://{addr}{path}` and read
/// the complete response. One request per connection, like the server.
pub fn http_post(addr: impl ToSocketAddrs, path: &str, body: &str) -> io::Result<HttpResponse> {
    http_send(addr, "POST", path, body.as_bytes(), CLIENT_TIMEOUT)
}

/// [`http_post`] with an explicit read timeout (the chaos-soak client
/// uses a short one so a hung daemon fails the soak instead of stalling
/// it for ten minutes).
pub fn http_post_timeout(
    addr: impl ToSocketAddrs,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    http_send(addr, "POST", path, body.as_bytes(), timeout)
}

/// Tiny std-only client: GET `http://{addr}{path}`.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> io::Result<HttpResponse> {
    http_send(addr, "GET", path, &[], CLIENT_TIMEOUT)
}

fn http_send(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: topogen\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let header_end = find_header_end(&raw)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response missing header end"))?;
    let text = String::from_utf8_lossy(&raw[..header_end]).into_owned();
    let mut lines = text.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body: raw[header_end..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            assert_eq!(req.body, b"{\"x\":1}");
            write_response(
                &mut stream,
                200,
                "OK",
                &[("X-Test", "yes".to_string())],
                "application/json",
                b"{\"ok\":true}",
            )
            .unwrap();
        });
        let resp = http_post(addr, "/echo", "{\"x\":1}").unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers.get("x-test").map(String::as_str), Some("yes"));
        assert_eq!(resp.body, b"{\"ok\":true}");
    }

    #[test]
    fn oversized_header_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream).map(|_| ())
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let junk = format!(
            "GET / HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES + 8)
        );
        // The server may reject and close mid-write; a broken pipe here
        // is part of the expected behavior, not a test failure.
        let _ = stream.write_all(junk.as_bytes());
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn parse_errors_classify_as_400_or_413() {
        let limit = io::Error::new(io::ErrorKind::InvalidData, "body exceeds limit");
        assert_eq!(status_for_parse_error(&limit).0, 413);
        let header = io::Error::new(io::ErrorKind::InvalidData, "header block exceeds limit");
        assert_eq!(status_for_parse_error(&header).0, 413);
        let bad = io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length");
        assert_eq!(status_for_parse_error(&bad).0, 400);
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-body");
        assert_eq!(status_for_parse_error(&eof).0, 400);
    }

    #[test]
    fn short_socket_reads_still_assemble_the_request() {
        let _x = topogen_par::faults::exclusive_for_tests();
        topogen_par::faults::install_spec("sock-read:short:1:9").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /m HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        let req = server.join().unwrap();
        topogen_par::faults::clear();
        // Every read was capped to half the buffer, but no bytes were
        // lost — the request assembles exactly as without faults.
        let req = req.unwrap();
        assert_eq!(req.path, "/m");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn body_spilled_past_header_read_is_kept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream).unwrap()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        // Header and body in a single write: the server's header read
        // will pull body bytes into its buffer.
        stream
            .write_all(b"POST /m HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        let req = server.join().unwrap();
        assert_eq!(req.body, b"hello");
    }
}
