//! Request execution: generate the topology, run the requested
//! metrics, and render the response — all against an explicit
//! [`RunCtx`], never ambient state.
//!
//! Two layers of caching cooperate here. The engine core already
//! caches built topologies and metric curves in the content-addressed
//! store; on top of that the daemon caches the **rendered response
//! body** under the request's canonical parameters, so a repeat query
//! is answered byte-for-byte from disk without touching the engines.

use topogen_core::cache::{scale_tag, spec_canonical};
use topogen_core::ctx::RunCtx;
use topogen_core::hier::HierOptions;
use topogen_core::suite::SuiteParams;
use topogen_store::codec::{self, bytes_payload, ContainerWriter};
use topogen_store::key::KeyBuilder;

use super::wire::{HierarchyBlock, MeasureRequest, MeasureResponse};

/// Section tag for a cached response body (UTF-8 JSON bytes).
const SEC_RESPONSE_BODY: [u8; 4] = *b"SRVB";

/// The store key identifying one request's canonical parameters.
pub fn response_key(req: &MeasureRequest) -> String {
    KeyBuilder::new("serve-response")
        .field("topology", &spec_canonical(&req.spec))
        .field("scale", scale_tag(req.scale))
        .u64("seed", req.seed)
        .field("metrics", &req.metrics.join("+"))
        .field("budget", if req.thorough { "thorough" } else { "quick" })
        .finish()
}

/// Execute `req` under `ctx`: build the topology, run the requested
/// metric set, and assemble the response. Mirrors the batch CLI
/// exactly — same suite-seed derivation (`seed ^ 0x5EED`), same
/// quick/thorough budgets, same §5 options — so the daemon's answer
/// for given params is bit-identical to the batch artifact.
pub fn run_measure(ctx: &RunCtx, req: &MeasureRequest) -> MeasureResponse {
    let t = topogen_core::zoo::build_in(ctx, &req.spec, req.scale, req.seed);
    let mut resp = MeasureResponse {
        name: t.name.clone(),
        topology: spec_canonical(&req.spec),
        seed: req.seed,
        scale: scale_tag(req.scale).to_string(),
        thorough: req.thorough,
        nodes: t.graph.node_count() as u64,
        edges: t.graph.edge_count() as u64,
        signature: None,
        expansion: None,
        resilience: None,
        distortion: None,
        hierarchy: None,
    };
    let wants_suite = ["expansion", "resilience", "distortion", "signature"]
        .iter()
        .any(|m| req.wants(m));
    if wants_suite {
        let mut params = if req.thorough {
            SuiteParams::thorough()
        } else {
            SuiteParams::quick()
        };
        params.seed = req.seed ^ 0x5EED;
        let suite = topogen_core::suite::run_suite_in(ctx, &t, &params);
        if req.wants("signature") {
            resp.signature = Some(suite.signature.to_string());
        }
        if req.wants("expansion") {
            resp.expansion = Some(suite.expansion);
        }
        if req.wants("resilience") {
            resp.resilience = Some(suite.resilience);
        }
        if req.wants("distortion") {
            resp.distortion = Some(suite.distortion);
        }
    }
    if req.wants("hierarchy") {
        let (report, _timing) =
            topogen_core::hier::hierarchy_report_timed_in(ctx, &t, &HierOptions::default());
        resp.hierarchy = Some(HierarchyBlock {
            class: report.class,
            max: report.max,
            median: report.median,
            degree_correlation: report.degree_correlation,
        });
    }
    resp
}

/// Serve `req` to its final body bytes: consult the response cache in
/// `ctx.store`, compute-and-persist on a miss. Returns the body and
/// whether it was a cache hit.
pub fn measure_body(ctx: &RunCtx, req: &MeasureRequest) -> (String, bool) {
    let key = response_key(req);
    if let Some(store) = &ctx.store {
        if let Some(bytes) = store.get(&key) {
            if let Some(body) = body_from_container(&bytes) {
                return (body, true);
            }
        }
    }
    let body = run_measure(ctx, req).body();
    if let Some(store) = &ctx.store {
        let mut w = ContainerWriter::new();
        w.section(SEC_RESPONSE_BODY, &bytes_payload(body.as_bytes()));
        store.put(&key, &w.finish());
    }
    (body, false)
}

fn body_from_container(bytes: &[u8]) -> Option<String> {
    let sections = codec::read_sections(bytes).ok()?;
    let payload = codec::find_section(&sections, SEC_RESPONSE_BODY)?;
    let raw = codec::bytes_from_payload(payload).ok()?;
    String::from_utf8(raw).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use topogen_core::zoo::{Scale, TopologySpec};

    fn tiny_request() -> MeasureRequest {
        MeasureRequest::new(TopologySpec::Mesh { side: 6 }, 11, Scale::Small)
    }

    #[test]
    fn response_key_separates_params_and_ignores_request_framing() {
        let base = tiny_request();
        let mut other_seed = tiny_request();
        other_seed.seed = 12;
        assert_ne!(response_key(&base), response_key(&other_seed));
        let mut thorough = tiny_request();
        thorough.thorough = true;
        assert_ne!(response_key(&base), response_key(&thorough));
        // Framing knobs (deadline, streaming) don't change the answer,
        // so they must not change the key.
        let mut framed = tiny_request();
        framed.deadline_secs = Some(5.0);
        framed.stream = true;
        assert_eq!(response_key(&base), response_key(&framed));
    }

    #[test]
    fn warm_body_is_byte_identical_and_flagged_as_hit() {
        let dir =
            std::env::temp_dir().join(format!("topogen-serve-measure-test-{}", std::process::id()));
        let store = Arc::new(topogen_store::Store::open(&dir).unwrap());
        let ctx = RunCtx::new().with_store(store);
        let req = tiny_request();
        let (cold, hit_cold) = measure_body(&ctx, &req);
        let (warm, hit_warm) = measure_body(&ctx, &req);
        assert!(!hit_cold);
        assert!(hit_warm);
        assert_eq!(cold, warm);
        // And both match a cache-less computation.
        let fresh = run_measure(&RunCtx::new(), &req).body();
        assert_eq!(cold, fresh);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metric_subset_prunes_response_blocks() {
        let mut req = tiny_request();
        req.metrics = vec!["signature".into()];
        let resp = run_measure(&RunCtx::new(), &req);
        assert!(resp.signature.is_some());
        assert!(resp.expansion.is_none());
        assert!(resp.resilience.is_none());
        assert!(resp.distortion.is_none());
        assert!(resp.hierarchy.is_none());
    }
}
