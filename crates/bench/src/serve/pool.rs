//! Bounded worker pool with explicit backpressure and self-healing.
//!
//! The daemon must never buffer unboundedly: requests are dispatched
//! into a bounded queue drained by a fixed set of workers, and a full
//! queue surfaces immediately as [`DispatchError::Saturated`] so the
//! accept loop can answer `429` instead of stacking work. Shutdown is
//! cooperative — drop the sender side, join the workers.
//!
//! Self-healing has two layers. Every job runs under `catch_unwind`,
//! so a panicking request costs that request, not a worker. If a panic
//! somehow escapes the catch anyway (a panicking `Drop` in the payload,
//! say), a sentinel respawns the thread from its own `Drop` — the pool
//! never shrinks below its configured size for longer than one respawn.
//! [`stats`](WorkerPool::stats) exposes live/panics/respawns so the
//! chaos-soak can assert zero worker loss.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A job the pool runs.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a dispatch was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchError {
    /// Queue full: every worker busy and every queue slot taken.
    Saturated,
    /// Pool already shut down.
    Closed,
}

/// A point-in-time health report for the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured pool size.
    pub size: usize,
    /// Worker threads currently alive.
    pub live: usize,
    /// Jobs whose panic the per-job `catch_unwind` absorbed.
    pub panics: u64,
    /// Workers respawned after a panic escaped the per-job catch.
    pub respawns: u64,
}

struct Shared {
    rx: Mutex<Receiver<Job>>,
    live: AtomicUsize,
    panics: AtomicU64,
    respawns: AtomicU64,
    next_id: AtomicUsize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A fixed-size worker pool over a bounded queue. All methods take
/// `&self`, so the pool shares cleanly behind an `Arc` (the accept loop
/// dispatches while the drain path shuts down).
pub struct WorkerPool {
    tx: Mutex<Option<SyncSender<Job>>>,
    shared: Arc<Shared>,
    size: usize,
}

impl WorkerPool {
    /// Spawn `workers` threads sharing a queue of `queue` waiting jobs.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize, queue: usize) -> WorkerPool {
        assert!(workers > 0, "worker pool needs at least one worker");
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(queue);
        let shared = Arc::new(Shared {
            rx: Mutex::new(rx),
            live: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            next_id: AtomicUsize::new(workers),
            handles: Mutex::new(Vec::new()),
        });
        for i in 0..workers {
            spawn_worker(&shared, i);
        }
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            shared,
            size: workers,
        }
    }

    /// Hand `job` to the pool without blocking.
    pub fn try_dispatch(&self, job: Job) -> Result<(), DispatchError> {
        let tx = self.tx.lock().unwrap_or_else(|e| e.into_inner()).clone();
        match tx {
            None => Err(DispatchError::Closed),
            Some(tx) => match tx.try_send(job) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => Err(DispatchError::Saturated),
                Err(TrySendError::Disconnected(_)) => Err(DispatchError::Closed),
            },
        }
    }

    /// Current pool health.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            size: self.size,
            live: self.shared.live.load(Ordering::SeqCst),
            panics: self.shared.panics.load(Ordering::SeqCst),
            respawns: self.shared.respawns.load(Ordering::SeqCst),
        }
    }

    /// Stop accepting work, drain queued jobs, and join every worker —
    /// including any respawned mid-shutdown.
    pub fn shutdown(&self) {
        self.tx.lock().unwrap_or_else(|e| e.into_inner()).take();
        loop {
            let handles: Vec<_> = {
                let mut guard = self
                    .shared
                    .handles
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                guard.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
            // A worker dying during the joins may have respawned a
            // replacement; its handle is visible by the time the dying
            // thread's join returns, so one more pass picks it up.
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_worker(shared: &Arc<Shared>, id: usize) {
    let for_worker = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("serve-worker-{id}"))
        .spawn(move || worker_run(&for_worker))
        .expect("spawn worker thread");
    shared
        .handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
}

/// Decrements `live` on the way out and, when the exit is a panic that
/// escaped the per-job catch, respawns a replacement worker.
struct Sentinel {
    shared: Arc<Shared>,
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        self.shared.live.fetch_sub(1, Ordering::SeqCst);
        if std::thread::panicking() {
            self.shared.respawns.fetch_add(1, Ordering::SeqCst);
            let id = self.shared.next_id.fetch_add(1, Ordering::SeqCst);
            spawn_worker(&self.shared, id);
        }
    }
}

fn worker_run(shared: &Arc<Shared>) {
    shared.live.fetch_add(1, Ordering::SeqCst);
    let sentinel = Sentinel {
        shared: Arc::clone(shared),
    };
    loop {
        // Hold the lock only while waiting for the next job, not while
        // running it — otherwise the pool degrades to one worker.
        let job = match shared.rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        // A panicking job costs the job, not the worker.
        if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::SeqCst);
        }
    }
    drop(sentinel);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;
    use std::time::{Duration, Instant};

    #[test]
    fn jobs_run_and_shutdown_drains() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(3, 16);
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.try_dispatch(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(
            pool.try_dispatch(Box::new(|| {})),
            Err(DispatchError::Closed)
        );
    }

    #[test]
    fn saturation_is_reported_not_buffered() {
        let pool = WorkerPool::new(1, 1);
        let (release_tx, release_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();
        pool.try_dispatch(Box::new(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }))
        .unwrap();
        // Wait until the worker is provably busy, then fill the single
        // queue slot; the next dispatch must be refused.
        started_rx.recv().unwrap();
        pool.try_dispatch(Box::new(|| {})).unwrap();
        assert_eq!(
            pool.try_dispatch(Box::new(|| {})),
            Err(DispatchError::Saturated)
        );
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn panicking_jobs_do_not_shrink_the_pool() {
        let pool = WorkerPool::new(2, 32);
        let done = Arc::new(AtomicUsize::new(0));
        let mut accepted = 0u64;
        let mut panickers = 0u64;
        for i in 0..20 {
            let done = Arc::clone(&done);
            let ok = pool
                .try_dispatch(Box::new(move || {
                    if i % 3 == 0 {
                        panic!("injected fault at test-job ({i})");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                }))
                .is_ok();
            // Bounded queue may saturate under the burst; the test only
            // cares that accepted jobs complete and workers survive.
            if ok {
                accepted += 1;
                if i % 3 == 0 {
                    panickers += 1;
                }
            }
        }
        // Wait until every accepted job has either finished or panicked.
        let deadline = Instant::now() + Duration::from_secs(10);
        while done.load(Ordering::SeqCst) as u64 + pool.stats().panics < accepted
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.stats().panics, panickers);
        let stats = pool.stats();
        assert_eq!(stats.live, 2, "panicking jobs must not kill workers");
        assert!(stats.panics > 0, "the panics were counted");
        assert_eq!(stats.respawns, 0, "catch_unwind absorbed them all");
        pool.shutdown();
        assert_eq!(pool.stats().live, 0);
    }

    #[test]
    fn stats_report_full_strength_after_heavy_panic_load() {
        let pool = WorkerPool::new(4, 64);
        for _ in 0..64 {
            let _ = pool.try_dispatch(Box::new(|| {
                panic!("injected fault at test-job (storm)");
            }));
        }
        // Drain by dispatching a sentinel through each worker.
        let done = Arc::new(AtomicUsize::new(0));
        let deadline = Instant::now() + Duration::from_secs(10);
        while done.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            let done = Arc::clone(&done);
            let _ = pool.try_dispatch(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(done.load(Ordering::SeqCst) > 0, "pool still serves jobs");
        assert_eq!(pool.stats().live, 4, "no worker loss under panic storm");
        pool.shutdown();
    }
}
