//! Bounded worker pool with explicit backpressure.
//!
//! The daemon must never buffer unboundedly: requests are dispatched
//! into a bounded queue drained by a fixed set of workers, and a full
//! queue surfaces immediately as [`DispatchError::Saturated`] so the
//! accept loop can answer `429` instead of stacking work. Shutdown is
//! cooperative — drop the sender side, join the workers.

use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A job the pool runs.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a dispatch was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchError {
    /// Queue full: every worker busy and every queue slot taken.
    Saturated,
    /// Pool already shut down.
    Closed,
}

/// A fixed-size worker pool over a bounded queue.
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads sharing a queue of `queue` waiting jobs.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize, queue: usize) -> WorkerPool {
        assert!(workers > 0, "worker pool needs at least one worker");
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(queue);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Hand `job` to the pool without blocking.
    pub fn try_dispatch(&self, job: Job) -> Result<(), DispatchError> {
        match &self.tx {
            None => Err(DispatchError::Closed),
            Some(tx) => match tx.try_send(job) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => Err(DispatchError::Saturated),
                Err(TrySendError::Disconnected(_)) => Err(DispatchError::Closed),
            },
        }
    }

    /// Stop accepting work, drain queued jobs, and join every worker.
    pub fn shutdown(&mut self) {
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while waiting for the next job, not while
        // running it — otherwise the pool degrades to one worker.
        let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn jobs_run_and_shutdown_drains() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(3, 16);
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.try_dispatch(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(
            pool.try_dispatch(Box::new(|| {})),
            Err(DispatchError::Closed)
        );
    }

    #[test]
    fn saturation_is_reported_not_buffered() {
        let mut pool = WorkerPool::new(1, 1);
        let (release_tx, release_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();
        pool.try_dispatch(Box::new(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }))
        .unwrap();
        // Wait until the worker is provably busy, then fill the single
        // queue slot; the next dispatch must be refused.
        started_rx.recv().unwrap();
        pool.try_dispatch(Box::new(|| {})).unwrap();
        assert_eq!(
            pool.try_dispatch(Box::new(|| {})),
            Err(DispatchError::Saturated)
        );
        release_tx.send(()).unwrap();
        pool.shutdown();
    }
}
