//! Trace-file formats: parsing the JSONL event log written by
//! `repro --trace` and exporting it as Chrome trace-event JSON
//! (loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)).
//!
//! The JSONL log is one event object per line, exactly as emitted by
//! [`topogen_par::TraceSink::write_jsonl`]:
//!
//! ```text
//! {"ev":"enter","id":3,"parent":1,"tid":2,"name":"unit","label":"tab1","t_ns":120}
//! {"ev":"exit","id":3,"tid":2,"name":"unit","t_ns":950,"dur_ns":830}
//! ```
//!
//! Events appear in per-thread order (enter/exit properly nested per
//! `tid`) but threads are interleaved shard-by-shard, not globally
//! time-sorted.

use serde::{Content, DeError, Deserialize};

/// One parsed line of a trace JSONL file.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceLine {
    /// `"enter"` or `"exit"`.
    pub ev: String,
    /// Span id (unique per run, never 0).
    pub id: u64,
    /// Parent span id (`0` = root; only on enter events).
    pub parent: Option<u64>,
    /// Trace-local thread id.
    pub tid: u64,
    /// Span name.
    pub name: String,
    /// Optional dynamic label (unit id, metric name, ...).
    pub label: Option<String>,
    /// Nanoseconds since the sink's epoch.
    pub t_ns: u64,
    /// Span duration in nanoseconds (only on exit events).
    pub dur_ns: Option<u64>,
}

impl Deserialize for TraceLine {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let field = |k: &str| c.get(k).ok_or_else(|| DeError(format!("missing {k}")));
        Ok(TraceLine {
            ev: String::from_content(field("ev")?)?,
            id: u64::from_content(field("id")?)?,
            parent: match c.get("parent") {
                Some(v) => Some(u64::from_content(v)?),
                None => None,
            },
            tid: u64::from_content(field("tid")?)?,
            name: String::from_content(field("name")?)?,
            label: match c.get("label") {
                Some(v) => Some(String::from_content(v)?),
                None => None,
            },
            t_ns: u64::from_content(field("t_ns")?)?,
            dur_ns: match c.get("dur_ns") {
                Some(v) => Some(u64::from_content(v)?),
                None => None,
            },
        })
    }
}

/// Parse a whole JSONL trace log. Blank lines are skipped; any
/// malformed line is an error naming its (1-based) line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceLine>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: TraceLine =
            serde_json::from_str(line).map_err(|e| format!("trace line {}: {}", i + 1, e))?;
        if ev.ev != "enter" && ev.ev != "exit" {
            return Err(format!("trace line {}: unknown ev {:?}", i + 1, ev.ev));
        }
        events.push(ev);
    }
    Ok(events)
}

/// Render parsed trace events as Chrome trace-event JSON (the
/// `{"traceEvents":[...]}` object form).
///
/// Each exit event (which carries its own duration) becomes one `"X"`
/// complete event with microsecond `ts`/`dur` computed from
/// `t_ns - dur_ns` and `dur_ns`. Enter events with no matching exit
/// (spans abandoned by a timed-out worker thread) become `"i"` instant
/// events so they remain visible on the timeline.
pub fn chrome_trace(events: &[TraceLine]) -> String {
    use std::collections::HashSet;
    let exited: HashSet<u64> = events
        .iter()
        .filter(|e| e.ev == "exit")
        .map(|e| e.id)
        .collect();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for e in events {
        let entry = match e.ev.as_str() {
            "exit" => {
                let dur = e.dur_ns.unwrap_or(0);
                let start = e.t_ns.saturating_sub(dur);
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                    topogen_par::trace::escape_json(&e.name),
                    start as f64 / 1e3,
                    dur as f64 / 1e3,
                    e.tid
                )
            }
            _ if !exited.contains(&e.id) => {
                let name = match &e.label {
                    Some(l) => format!("{} [{}]", e.name, l),
                    None => e.name.clone(),
                };
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{:.3},\"pid\":1,\"tid\":{},\"s\":\"t\"}}",
                    topogen_par::trace::escape_json(&name),
                    e.t_ns as f64 / 1e3,
                    e.tid
                )
            }
            _ => continue, // matched enter: its exit carries the timing
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&entry);
    }
    out.push_str("]}");
    out
}

/// Check well-formedness of a parsed trace: no span id is entered
/// twice; per thread, enters and exits nest LIFO (every exit matches
/// the innermost open enter of its thread); every parent id is either
/// root (0) or a span entered somewhere in the trace. The parent check
/// is a separate pass because the log is ordered per thread, not
/// globally: a worker's child enter can precede its cross-thread
/// parent's enter line. Returns a description of the first violation.
pub fn check_well_formed(events: &[TraceLine]) -> Result<(), String> {
    use std::collections::{HashMap, HashSet};
    let mut entered: HashSet<u64> = HashSet::new();
    for e in events.iter().filter(|e| e.ev == "enter") {
        if !entered.insert(e.id) {
            return Err(format!("span {} entered twice", e.id));
        }
    }
    let mut open_per_tid: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut exits = 0usize;
    for e in events {
        let stack = open_per_tid.entry(e.tid).or_default();
        match e.ev.as_str() {
            "enter" => {
                let parent = e.parent.unwrap_or(0);
                if parent != 0 && !entered.contains(&parent) {
                    return Err(format!(
                        "span {} opened under unknown parent {}",
                        e.id, parent
                    ));
                }
                stack.push(e.id);
            }
            _ => {
                exits += 1;
                match stack.pop() {
                    Some(top) if top == e.id => {}
                    Some(top) => {
                        return Err(format!(
                            "tid {}: exit {} while {} still open (non-LIFO)",
                            e.tid, e.id, top
                        ))
                    }
                    None => return Err(format!("tid {}: exit {} without enter", e.tid, e.id)),
                }
            }
        }
    }
    if exits > entered.len() {
        return Err(format!("{} exits for {} enters", exits, entered.len()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"ev":"enter","id":1,"parent":0,"tid":1,"name":"suite","label":"small","t_ns":10}"#,
        "\n",
        r#"{"ev":"enter","id":2,"parent":1,"tid":1,"name":"unit","label":"tab1","t_ns":20}"#,
        "\n",
        r#"{"ev":"exit","id":2,"tid":1,"name":"unit","t_ns":90,"dur_ns":70}"#,
        "\n",
        r#"{"ev":"exit","id":1,"tid":1,"name":"suite","t_ns":100,"dur_ns":90}"#,
        "\n",
    );

    #[test]
    fn parses_jsonl_lines() {
        let evs = parse_jsonl(SAMPLE).unwrap();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].ev, "enter");
        assert_eq!(evs[0].parent, Some(0));
        assert_eq!(evs[1].label.as_deref(), Some("tab1"));
        assert_eq!(evs[2].dur_ns, Some(70));
        assert_eq!(evs[3].name, "suite");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_jsonl("{\"ev\":\"enter\"}").is_err());
        assert!(parse_jsonl("not json").is_err());
        let err = parse_jsonl(&format!("{}\ngarbage", SAMPLE.trim_end())).unwrap_err();
        assert!(err.contains("line 5"), "{err}");
    }

    #[test]
    fn chrome_export_is_valid_json_with_complete_events() {
        let evs = parse_jsonl(SAMPLE).unwrap();
        let j = chrome_trace(&evs);
        // Round-trip through the JSON parser to prove validity.
        let c: Content = serde_json::from_str(&j).unwrap();
        let list = match c.get("traceEvents").unwrap() {
            Content::Seq(s) => s.clone(),
            other => panic!("traceEvents not a list: {other:?}"),
        };
        assert_eq!(list.len(), 2); // two exits -> two X events
        let ph = list[0].get("ph").unwrap();
        assert_eq!(String::from_content(ph).unwrap(), "X");
    }

    #[test]
    fn unmatched_enter_becomes_instant_event() {
        let text = concat!(
            r#"{"ev":"enter","id":1,"parent":0,"tid":3,"name":"stuck","t_ns":5}"#,
            "\n"
        );
        let evs = parse_jsonl(text).unwrap();
        let j = chrome_trace(&evs);
        let c: Content = serde_json::from_str(&j).unwrap();
        let list = match c.get("traceEvents").unwrap() {
            Content::Seq(s) => s.clone(),
            other => panic!("traceEvents not a list: {other:?}"),
        };
        assert_eq!(list.len(), 1);
        assert_eq!(
            String::from_content(list[0].get("ph").unwrap()).unwrap(),
            "i"
        );
    }

    #[test]
    fn well_formedness_accepts_nesting_and_rejects_violations() {
        let evs = parse_jsonl(SAMPLE).unwrap();
        check_well_formed(&evs).unwrap();

        // Exit without enter.
        let bad =
            parse_jsonl(r#"{"ev":"exit","id":9,"tid":1,"name":"x","t_ns":1,"dur_ns":1}"#).unwrap();
        assert!(check_well_formed(&bad)
            .unwrap_err()
            .contains("without enter"));

        // Non-LIFO exits on one thread.
        let crossed = parse_jsonl(concat!(
            r#"{"ev":"enter","id":1,"parent":0,"tid":1,"name":"a","t_ns":1}"#,
            "\n",
            r#"{"ev":"enter","id":2,"parent":1,"tid":1,"name":"b","t_ns":2}"#,
            "\n",
            r#"{"ev":"exit","id":1,"tid":1,"name":"a","t_ns":3,"dur_ns":2}"#,
            "\n",
        ))
        .unwrap();
        assert!(check_well_formed(&crossed)
            .unwrap_err()
            .contains("non-LIFO"));

        // Unknown parent.
        let orphan =
            parse_jsonl(r#"{"ev":"enter","id":5,"parent":4,"tid":1,"name":"c","t_ns":1}"#).unwrap();
        assert!(check_well_formed(&orphan)
            .unwrap_err()
            .contains("unknown parent"));
    }
}
