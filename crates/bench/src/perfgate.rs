//! `repro perf-gate` — a ratcheting, count-based CI performance gate.
//!
//! Wall-clock CI timings are too noisy to gate on: shared runners
//! jitter by 2–3x. The engines instead expose deterministic operation
//! counters — traversals performed, balls built, DAG states visited,
//! bitset words scanned — that are identical across machines and thread
//! counts for a fixed seed. The gate compares those counters in the
//! current run's `BENCH_*.json` files against archived baselines
//! (committed under `ci/perf-baselines/`) and fails when any gated
//! counter regresses by more than the tolerance. Wall-clock phase times
//! are reported advisory-only, never gated.
//!
//! The gate *ratchets*: when a counter improves past the tolerance the
//! gate prints a ratchet-candidate note, and the improvement is locked
//! in by copying the current file over the committed baseline (see
//! CONTRIBUTING.md for the refresh procedure).
//!
//! Two file shapes are understood:
//!
//! - A [`TimingReport`](topogen_core::report::TimingReport) archive
//!   (what `repro <exp> --timings --json` writes): the fixed
//!   [`GATED_COUNTERS`] subset is compared. Cache-traffic counters
//!   (`ball_cache_hits`, `store_*`) are excluded — they depend on
//!   store state, not on algorithmic work.
//! - A document with a top-level `"gate"` object of integer counters
//!   (what the `bench_scale` harness writes into `BENCH_scale.json`):
//!   every baseline gate counter is compared by name.

use serde::Content;
use std::path::{Path, PathBuf};

use crate::ExitCode;

/// TimingReport counters the gate compares (deterministic operation
/// counts; cache-traffic fields intentionally excluded).
pub const GATED_COUNTERS: [&str; 10] = [
    "bfs_runs",
    "balls_built",
    "partitioner_restarts",
    "dag_states",
    "pairs_accumulated",
    "arena_bytes",
    "scratch_bytes",
    "spill_runs",
    "words_scanned",
    "frontier_passes",
];

/// Default allowed regression before the gate fails (5%).
pub const DEFAULT_TOLERANCE: f64 = 0.05;

/// Gate configuration: where the archived baselines and the current
/// run's outputs live, and how much regression to tolerate.
#[derive(Clone, Debug)]
pub struct GateOptions {
    /// Directory of committed baseline `BENCH_*.json` files.
    pub baseline_dir: PathBuf,
    /// Directory holding the current run's `BENCH_*.json` files.
    pub current_dir: PathBuf,
    /// Allowed fractional regression per counter (0.05 = 5%).
    pub tolerance: f64,
}

impl Default for GateOptions {
    fn default() -> Self {
        GateOptions {
            baseline_dir: PathBuf::from("ci/perf-baselines"),
            current_dir: PathBuf::from("out"),
            tolerance: DEFAULT_TOLERANCE,
        }
    }
}

/// One compared counter that tripped the gate or the ratchet note.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterDelta {
    /// `BENCH_*.json` file name the counter came from.
    pub file: String,
    /// Counter name.
    pub counter: String,
    /// Archived baseline value.
    pub baseline: u64,
    /// Current run's value.
    pub current: u64,
}

impl CounterDelta {
    fn pct(&self) -> f64 {
        if self.baseline == 0 {
            f64::INFINITY
        } else {
            (self.current as f64 / self.baseline as f64 - 1.0) * 100.0
        }
    }
}

/// The gate's verdict: regressions (fail), improvements past tolerance
/// (ratchet candidates), advisory wall-clock lines, and bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Counters that regressed past tolerance — these fail the gate.
    pub regressions: Vec<CounterDelta>,
    /// Counters that improved past tolerance — refresh the baseline.
    pub ratchet_candidates: Vec<CounterDelta>,
    /// Advisory notes (wall-clock deltas, skipped files).
    pub notes: Vec<String>,
    /// Baseline files compared.
    pub files_compared: usize,
    /// Counters compared across all files.
    pub counters_compared: usize,
    /// Baseline files whose current counterpart was missing/unreadable.
    pub missing: Vec<String>,
    /// `(file, counter, baseline)` triples for counters the baseline
    /// gates on that the current run's document does not carry at all.
    /// Reading those as zero used to make a renamed or dropped counter
    /// look like a total improvement and pass silently; a nonzero
    /// baseline vanishing is a gate failure until the baseline is
    /// refreshed deliberately.
    pub missing_counters: Vec<(String, String, u64)>,
}

impl GateReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty() && self.missing_counters.is_empty()
    }

    /// Render the verdict as the lines `repro perf-gate` prints.
    pub fn render(&self, tolerance: f64) -> String {
        let mut out = String::new();
        for d in &self.regressions {
            out.push_str(&format!(
                "FAIL {}: {} regressed {} -> {} (+{:.1}%, tolerance {:.1}%)\n",
                d.file,
                d.counter,
                d.baseline,
                d.current,
                d.pct(),
                tolerance * 100.0
            ));
        }
        for f in &self.missing {
            out.push_str(&format!("FAIL {f}: no current-run counterpart\n"));
        }
        for (file, counter, base) in &self.missing_counters {
            out.push_str(&format!(
                "FAIL {file}: counter {counter} (baseline {base}) is absent from the current \
                 run; refresh the baseline if it was removed deliberately\n"
            ));
        }
        for d in &self.ratchet_candidates {
            out.push_str(&format!(
                "ratchet {}: {} improved {} -> {} ({:.1}%); refresh the baseline to lock it in\n",
                d.file,
                d.counter,
                d.baseline,
                d.current,
                d.pct()
            ));
        }
        for n in &self.notes {
            out.push_str(n);
            out.push('\n');
        }
        out.push_str(&format!(
            "perf-gate: {} counter(s) across {} file(s): {}\n",
            self.counters_compared,
            self.files_compared,
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// A counter value read from a JSON tree, distinguishing absence
/// (`None`) from an explicit zero — the gate treats a nonzero-baselined
/// counter that vanished entirely as a failure, not an improvement.
fn counter_lookup(doc: &Content, key: &str) -> Option<u64> {
    match doc.get(key)? {
        Content::U64(v) => Some(*v),
        Content::I64(v) if *v >= 0 => Some(*v as u64),
        Content::F64(v) if *v >= 0.0 => Some(*v as u64),
        _ => None,
    }
}

/// A counter value read leniently: absent keys and non-numeric values
/// read as zero (the emit-when-nonzero convention).
fn counter_of(doc: &Content, key: &str) -> u64 {
    counter_lookup(doc, key).unwrap_or(0)
}

/// Summed wall-clock seconds of a report's `phases` array (advisory).
fn total_phase_seconds(doc: &Content) -> f64 {
    let Some(Content::Seq(phases)) = doc.get("phases") else {
        return 0.0;
    };
    phases
        .iter()
        .map(|p| match p.get("seconds") {
            Some(Content::F64(s)) => *s,
            Some(Content::U64(s)) => *s as f64,
            _ => 0.0,
        })
        .sum()
}

/// The `(name, value)` counters a document exposes to the gate: the
/// entries of its top-level `"gate"` object when present, else the
/// [`GATED_COUNTERS`] subset of a timing report.
fn gate_counters(doc: &Content) -> Vec<(String, u64)> {
    if let Some(Content::Map(entries)) = doc.get("gate") {
        return entries
            .iter()
            .filter_map(|(k, v)| match v {
                Content::U64(n) => Some((k.clone(), *n)),
                Content::I64(n) if *n >= 0 => Some((k.clone(), *n as u64)),
                _ => None,
            })
            .collect();
    }
    GATED_COUNTERS
        .iter()
        .map(|k| (k.to_string(), counter_of(doc, k)))
        .collect()
}

/// Compare one baseline document against the current one.
fn compare_docs(
    file: &str,
    baseline: &Content,
    current: &Content,
    tolerance: f64,
    report: &mut GateReport,
) {
    for (name, base) in gate_counters(baseline) {
        let cur_doc = current.get("gate").unwrap_or(current);
        report.counters_compared += 1;
        let cur = match counter_lookup(cur_doc, &name) {
            Some(v) => v,
            // The emit-when-nonzero convention makes absence read as
            // zero — legitimate for a counter the baseline also has at
            // zero, but a nonzero baseline disappearing wholesale means
            // the counter was renamed or dropped, and "0, improved
            // 100%" would wave that through silently.
            None if base > 0 => {
                report.missing_counters.push((file.to_string(), name, base));
                continue;
            }
            None => 0,
        };
        let delta = CounterDelta {
            file: file.to_string(),
            counter: name,
            baseline: base,
            current: cur,
        };
        if cur as f64 > base as f64 * (1.0 + tolerance) {
            report.regressions.push(delta);
        } else if base > 0 && (cur as f64) < base as f64 * (1.0 - tolerance) {
            report.ratchet_candidates.push(delta);
        }
    }
    let (bt, ct) = (total_phase_seconds(baseline), total_phase_seconds(current));
    if bt > 0.0 && ct > 0.0 {
        report.notes.push(format!(
            "note {file}: wall-clock {bt:.3}s -> {ct:.3}s (advisory only, never gated)"
        ));
    }
}

/// Baseline `BENCH_*.json` file names under `dir`, sorted for a
/// deterministic report order.
fn baseline_files(dir: &Path) -> std::io::Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

/// Run the gate: compare every baseline file against its current-run
/// counterpart. `Err` is a usage-level problem (missing/empty baseline
/// directory); regressions are reported in the `Ok` report.
pub fn run_gate(opts: &GateOptions) -> Result<GateReport, String> {
    let names = baseline_files(&opts.baseline_dir).map_err(|e| {
        format!(
            "cannot read baseline dir {}: {e}",
            opts.baseline_dir.display()
        )
    })?;
    if names.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines under {}",
            opts.baseline_dir.display()
        ));
    }
    let mut report = GateReport::default();
    for name in names {
        let base_text = std::fs::read_to_string(opts.baseline_dir.join(&name))
            .map_err(|e| format!("cannot read baseline {name}: {e}"))?;
        let baseline: Content = serde_json::from_str(&base_text)
            .map_err(|e| format!("baseline {name} is not valid JSON: {e}"))?;
        let cur_path = opts.current_dir.join(&name);
        let current: Content = match std::fs::read_to_string(&cur_path)
            .ok()
            .and_then(|t| serde_json::from_str(&t).ok())
        {
            Some(c) => c,
            None => {
                report.missing.push(name);
                continue;
            }
        };
        report.files_compared += 1;
        compare_docs(&name, &baseline, &current, opts.tolerance, &mut report);
    }
    Ok(report)
}

/// The `repro perf-gate` entry point: parse flags, run, print, map to
/// an exit code.
pub fn run_cli(args: &[String]) -> ExitCode {
    let mut opts = GateOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => match it.next() {
                Some(d) => opts.baseline_dir = PathBuf::from(d),
                None => {
                    eprintln!("--baseline needs a directory");
                    return ExitCode::Usage;
                }
            },
            "--current" => match it.next() {
                Some(d) => opts.current_dir = PathBuf::from(d),
                None => {
                    eprintln!("--current needs a directory");
                    return ExitCode::Usage;
                }
            },
            "--tolerance" => {
                let Some(pct) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--tolerance needs a percentage");
                    return ExitCode::Usage;
                };
                if !(0.0..=100.0).contains(&pct) {
                    eprintln!("--tolerance must be in 0..=100 (percent)");
                    return ExitCode::Usage;
                }
                opts.tolerance = pct / 100.0;
            }
            other => {
                eprintln!("unknown perf-gate flag {other:?}");
                return ExitCode::Usage;
            }
        }
    }
    match run_gate(&opts) {
        Ok(report) => {
            print!("{}", report.render(opts.tolerance));
            if report.passed() {
                ExitCode::Clean
            } else {
                ExitCode::Failures
            }
        }
        Err(e) => {
            eprintln!("perf-gate: {e}");
            ExitCode::Usage
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("topogen-perfgate-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write(dir: &Path, name: &str, json: &str) {
        std::fs::write(dir.join(name), json).unwrap();
    }

    const BASE: &str = r#"{"bfs_runs": 100, "balls_built": 50, "ball_cache_hits": 7,
        "partitioner_restarts": 4, "dag_states": 0, "pairs_accumulated": 0,
        "arena_bytes": 0, "store_hits": 3, "store_misses": 1,
        "store_bytes_read": 9, "store_bytes_written": 9,
        "phases": [{"name": "balls", "seconds": 1.5}]}"#;

    #[test]
    fn passes_on_identical_reports() {
        let (b, c) = (tmpdir("pass-b"), tmpdir("pass-c"));
        write(&b, "BENCH_x.json", BASE);
        write(&c, "BENCH_x.json", BASE);
        let opts = GateOptions {
            baseline_dir: b.clone(),
            current_dir: c.clone(),
            tolerance: 0.05,
        };
        let r = run_gate(&opts).unwrap();
        assert!(r.passed(), "{:?}", r.regressions);
        assert_eq!(r.files_compared, 1);
        assert_eq!(r.counters_compared, GATED_COUNTERS.len());
        assert!(r.render(0.05).contains("PASS"));
        let _ = std::fs::remove_dir_all(&b);
        let _ = std::fs::remove_dir_all(&c);
    }

    #[test]
    fn fails_on_counter_regression_only_past_tolerance() {
        let (b, c) = (tmpdir("reg-b"), tmpdir("reg-c"));
        write(&b, "BENCH_x.json", BASE);
        // bfs_runs 100 -> 104 is inside 5%; balls_built 50 -> 60 is not.
        write(
            &c,
            "BENCH_x.json",
            &BASE
                .replace("\"bfs_runs\": 100", "\"bfs_runs\": 104")
                .replace("\"balls_built\": 50", "\"balls_built\": 60"),
        );
        let opts = GateOptions {
            baseline_dir: b.clone(),
            current_dir: c.clone(),
            tolerance: 0.05,
        };
        let r = run_gate(&opts).unwrap();
        assert!(!r.passed());
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].counter, "balls_built");
        assert!(r.render(0.05).contains("balls_built regressed 50 -> 60"));
        let _ = std::fs::remove_dir_all(&b);
        let _ = std::fs::remove_dir_all(&c);
    }

    #[test]
    fn cache_counters_are_not_gated() {
        let (b, c) = (tmpdir("cache-b"), tmpdir("cache-c"));
        write(&b, "BENCH_x.json", BASE);
        // A cold store (hits -> 0, misses way up) must not trip the gate.
        write(
            &c,
            "BENCH_x.json",
            &BASE
                .replace("\"store_hits\": 3", "\"store_hits\": 0")
                .replace("\"store_misses\": 1", "\"store_misses\": 999")
                .replace("\"ball_cache_hits\": 7", "\"ball_cache_hits\": 999"),
        );
        let opts = GateOptions {
            baseline_dir: b.clone(),
            current_dir: c.clone(),
            tolerance: 0.05,
        };
        assert!(run_gate(&opts).unwrap().passed());
        let _ = std::fs::remove_dir_all(&b);
        let _ = std::fs::remove_dir_all(&c);
    }

    #[test]
    fn improvement_past_tolerance_is_a_ratchet_candidate() {
        let (b, c) = (tmpdir("ratchet-b"), tmpdir("ratchet-c"));
        write(&b, "BENCH_x.json", BASE);
        write(
            &c,
            "BENCH_x.json",
            &BASE.replace("\"bfs_runs\": 100", "\"bfs_runs\": 80"),
        );
        let opts = GateOptions {
            baseline_dir: b.clone(),
            current_dir: c.clone(),
            tolerance: 0.05,
        };
        let r = run_gate(&opts).unwrap();
        assert!(r.passed());
        assert_eq!(r.ratchet_candidates.len(), 1);
        assert!(r.render(0.05).contains("ratchet"));
        let _ = std::fs::remove_dir_all(&b);
        let _ = std::fs::remove_dir_all(&c);
    }

    #[test]
    fn gate_object_counters_compared_by_name() {
        let (b, c) = (tmpdir("gate-b"), tmpdir("gate-c"));
        write(
            &b,
            "BENCH_scale.json",
            r#"{"rows": [], "gate": {"words_scanned": 1000, "frontier_passes": 12}}"#,
        );
        write(
            &c,
            "BENCH_scale.json",
            r#"{"rows": [], "gate": {"words_scanned": 2000, "frontier_passes": 12}}"#,
        );
        let opts = GateOptions {
            baseline_dir: b.clone(),
            current_dir: c.clone(),
            tolerance: 0.05,
        };
        let r = run_gate(&opts).unwrap();
        assert_eq!(r.counters_compared, 2);
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].counter, "words_scanned");
        let _ = std::fs::remove_dir_all(&b);
        let _ = std::fs::remove_dir_all(&c);
    }

    #[test]
    fn missing_current_file_fails_and_empty_baseline_is_usage() {
        let (b, c) = (tmpdir("miss-b"), tmpdir("miss-c"));
        write(&b, "BENCH_x.json", BASE);
        let opts = GateOptions {
            baseline_dir: b.clone(),
            current_dir: c.clone(),
            tolerance: 0.05,
        };
        let r = run_gate(&opts).unwrap();
        assert!(!r.passed());
        assert_eq!(r.missing, vec!["BENCH_x.json".to_string()]);

        let empty = tmpdir("miss-empty");
        let opts = GateOptions {
            baseline_dir: empty.clone(),
            current_dir: c.clone(),
            tolerance: 0.05,
        };
        assert!(run_gate(&opts).is_err());
        let _ = std::fs::remove_dir_all(&b);
        let _ = std::fs::remove_dir_all(&c);
        let _ = std::fs::remove_dir_all(&empty);
    }

    #[test]
    fn nonzero_baseline_counter_absent_from_current_fails_by_name() {
        let (b, c) = (tmpdir("drop-b"), tmpdir("drop-c"));
        write(&b, "BENCH_x.json", BASE);
        // balls_built (baseline 50) vanishes from the current report:
        // under the old absent-reads-as-zero rule this was a "100%
        // improvement" that passed silently.
        write(
            &c,
            "BENCH_x.json",
            &BASE.replace("\"balls_built\": 50,", ""),
        );
        let opts = GateOptions {
            baseline_dir: b.clone(),
            current_dir: c.clone(),
            tolerance: 0.05,
        };
        let r = run_gate(&opts).unwrap();
        assert!(!r.passed());
        assert_eq!(
            r.missing_counters,
            vec![("BENCH_x.json".to_string(), "balls_built".to_string(), 50)]
        );
        assert!(r.regressions.is_empty() && r.ratchet_candidates.is_empty());
        assert!(r
            .render(0.05)
            .contains("counter balls_built (baseline 50) is absent"));
        let _ = std::fs::remove_dir_all(&b);
        let _ = std::fs::remove_dir_all(&c);
    }

    #[test]
    fn zero_baseline_counter_may_stay_absent() {
        let (b, c) = (tmpdir("zeroabs-b"), tmpdir("zeroabs-c"));
        write(&b, "BENCH_x.json", BASE);
        // dag_states is 0 in the baseline; the emit-when-nonzero
        // convention omits it from a run that also did no DAG work.
        write(&c, "BENCH_x.json", &BASE.replace("\"dag_states\": 0,", ""));
        let opts = GateOptions {
            baseline_dir: b.clone(),
            current_dir: c.clone(),
            tolerance: 0.05,
        };
        let r = run_gate(&opts).unwrap();
        assert!(r.passed(), "{:?}", r.missing_counters);
        let _ = std::fs::remove_dir_all(&b);
        let _ = std::fs::remove_dir_all(&c);
    }

    #[test]
    fn gate_object_counter_absent_from_current_fails_by_name() {
        let (b, c) = (tmpdir("gatedrop-b"), tmpdir("gatedrop-c"));
        write(
            &b,
            "BENCH_scale.json",
            r#"{"rows": [], "gate": {"words_scanned": 1000, "frontier_passes": 12}}"#,
        );
        write(
            &c,
            "BENCH_scale.json",
            r#"{"rows": [], "gate": {"frontier_passes": 12}}"#,
        );
        let opts = GateOptions {
            baseline_dir: b.clone(),
            current_dir: c.clone(),
            tolerance: 0.05,
        };
        let r = run_gate(&opts).unwrap();
        assert!(!r.passed());
        assert_eq!(r.missing_counters.len(), 1);
        assert_eq!(r.missing_counters[0].1, "words_scanned");
        let _ = std::fs::remove_dir_all(&b);
        let _ = std::fs::remove_dir_all(&c);
    }

    #[test]
    fn zero_baseline_trips_on_any_growth() {
        let (b, c) = (tmpdir("zero-b"), tmpdir("zero-c"));
        write(&b, "BENCH_x.json", BASE);
        write(
            &c,
            "BENCH_x.json",
            &BASE.replace("\"dag_states\": 0", "\"dag_states\": 5"),
        );
        let opts = GateOptions {
            baseline_dir: b.clone(),
            current_dir: c.clone(),
            tolerance: 0.05,
        };
        let r = run_gate(&opts).unwrap();
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].counter, "dag_states");
        let _ = std::fs::remove_dir_all(&b);
        let _ = std::fs::remove_dir_all(&c);
    }
}
