//! # topogen-bench
//!
//! The experiment harness: one function per table/figure of the paper,
//! each returning the same rows/series the paper reports (as
//! [`topogen_core::report`] records), plus the `repro` binary that
//! prints them and Criterion benches over the computational kernels.
//!
//! Experiment index (see DESIGN.md §4 for the full mapping):
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | `tab1` | Figure 1 topology table | [`experiments::tab1::run`] |
//! | `fig2` | Figure 2(a–l) expansion/resilience/distortion | [`experiments::fig2::run`] |
//! | `fig3` / `fig4` | link-value rank distributions | [`experiments::fig3::run`] |
//! | `fig5` | link-value ↔ degree correlation | [`experiments::fig5::run`] |
//! | `fig6` | Appendix A degree CCDFs | [`experiments::fig6::run`] |
//! | `fig7` | eigenvalues & eccentricity distributions | [`experiments::fig7::run_eigen`] |
//! | `fig8` | vertex cover & biconnectivity growth | [`experiments::fig8::run_cover`] |
//! | `fig9` | attack & error tolerance | [`experiments::fig9::run`] |
//! | `fig10` | clustering coefficient curves | [`experiments::fig10::run`] |
//! | `fig11` | Appendix C parameter exploration | [`experiments::fig11::run`] |
//! | `fig12` / `fig13` | degree-based variants & PLRG re-wiring | [`experiments::fig12::run`] |
//! | `fig14` | link values of PLRG variants | [`experiments::fig3::run_variants`] |
//! | `fig15` | policy-induced ball example | [`experiments::fig15::run`] |
//! | `tab-signature` | §3.2.1 + §4.4 L/H tables | [`experiments::signatures::run_signature_table`] |
//! | `tab-hierarchy` | §5.1 strict/moderate/loose table | [`experiments::signatures::run_hierarchy_table`] |
//! | `bgp-vs-policy` | Gao–Rexford BGP vs the paper's policy model | [`experiments::bgp::run`] |
//! | `robustness-snapshots` | §3.1.1 snapshot stability | [`experiments::robustness::run_snapshots`] |
//! | `robustness-incompleteness` | §3.1.1 incompleteness caveat | [`experiments::robustness::run_incompleteness`] |
//! | `ablation-ts` | footnote 17 TS redundancy trade-off | [`experiments::ablations::run_ts_redundancy`] |
//! | `ablation-extremes` | §4.4 extreme-parameter regimes | [`experiments::ablations::run_extremes`] |
//! | `ablation-distortion` | spanning-tree polish quality | [`experiments::ablations::run_distortion_polish`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perfgate;
pub mod runner;
pub mod serve;
pub mod tracefmt;

use topogen_core::zoo::Scale;

/// The `repro` exit-code taxonomy, shared verbatim by the serve
/// daemon's per-request status field: `0` clean, `1` failures (including
/// timeouts), `2` usage error, `3` load error (corrupt/missing input).
/// Promoted from scattered literals so every producer and consumer —
/// batch CLI, runner, daemon ledger — agrees on one vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitCode {
    /// Everything completed (0).
    Clean,
    /// At least one unit failed or timed out (1).
    Failures,
    /// Bad invocation or malformed request (2).
    Usage,
    /// Input could not be loaded (3).
    LoadError,
}

impl ExitCode {
    /// The process exit code / wire status code.
    pub fn code(self) -> i32 {
        match self {
            ExitCode::Clean => 0,
            ExitCode::Failures => 1,
            ExitCode::Usage => 2,
            ExitCode::LoadError => 3,
        }
    }

    /// Stable human-readable label (the daemon ledger's `status`).
    pub fn as_str(self) -> &'static str {
        match self {
            ExitCode::Clean => "clean",
            ExitCode::Failures => "failures",
            ExitCode::Usage => "usage",
            ExitCode::LoadError => "load-error",
        }
    }

    /// Terminate the process with this code.
    pub fn exit(self) -> ! {
        std::process::exit(self.code())
    }
}

/// Shared experiment context.
#[derive(Clone, Copy, Debug)]
pub struct ExpCtx {
    /// Topology scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Quick (CI) vs thorough sampling budgets.
    pub quick: bool,
}

impl Default for ExpCtx {
    fn default() -> Self {
        ExpCtx {
            scale: Scale::Small,
            seed: 42,
            quick: true,
        }
    }
}

impl ExpCtx {
    /// Suite parameters matching this context.
    ///
    /// `Small`/`Paper` keep the historical quick/thorough budgets so
    /// archived outputs stay byte-identical. The `large`/`xl` tiers
    /// sample centers (the paper's "sufficiently large number of
    /// randomly chosen nodes") with budgets sized so one signature
    /// table stays CI-feasible: fewer, shallower balls as the graphs
    /// grow, leaning on the batched bitset BFS kernels for the
    /// expansion sweeps. The sampled tiers additionally run in
    /// checkpointed batches (partials land in the store, so a killed
    /// suite resumes mid-run) and attach bootstrap 95% CIs to the
    /// sampled estimates; the archived tiers keep both off.
    pub fn suite_params(&self) -> topogen_core::suite::SuiteParams {
        let mut p = if self.quick {
            topogen_core::suite::SuiteParams::quick()
        } else {
            topogen_core::suite::SuiteParams::thorough()
        };
        match self.scale {
            Scale::Small | Scale::Paper => {}
            Scale::Large => {
                p.centers = 16;
                p.expansion_sources = 128;
                p.max_radius = 40;
                p.max_ball_nodes = 900;
                p.batch = Some(4);
                p.bootstrap = Some(200);
            }
            Scale::Xl => {
                p.centers = 8;
                p.expansion_sources = 64;
                p.max_radius = 32;
                p.max_ball_nodes = 900;
                p.batch = Some(4);
                p.bootstrap = Some(200);
            }
        }
        p.seed = self.seed ^ 0x5EED;
        p
    }
}
