//! Fault-tolerant execution of the experiment suite.
//!
//! Each experiment runs as an isolated *unit*: on its own thread, under
//! `catch_unwind`, with an optional per-unit wall-clock deadline
//! (cooperatively enforced — the engines check the ambient
//! [`topogen_par::Deadline`] between chunks and at phase boundaries) and
//! bounded retry-with-reseed for stochastic failures. Every unit's
//! outcome lands in a [`RunLedger`] (`out/run-ledger.json`): status,
//! duration, attempt count, and the redacted panic payload. `--resume`
//! skips units the ledger already shows completed; `--keep-going` runs
//! the rest of the suite past a failure; the process exit code reflects
//! the aggregate status (0 all ok, 1 failures/timeouts, 3 load errors).

use serde::{Content, DeError, Deserialize, Serialize};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use topogen_par::{cancel, faults, panic_message, trace};

/// Extra wall-clock slack past the deadline before the runner abandons
/// a unit: the cooperative cancellation usually lands the `Cancelled`
/// unwind shortly after expiry, which is cleaner than detaching.
const DEADLINE_GRACE: Duration = Duration::from_secs(2);

/// How a unit failed (determines retry eligibility and exit code).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnitError {
    /// The unit completed but reported failure (degraded components, a
    /// `--strict-checks` violation, …). Retried — it may be stochastic.
    Failed(String),
    /// A measured-graph load error: deterministic, never retried, and
    /// the suite exits 3 (the CLI contract for missing/corrupt inputs).
    Load(String),
}

impl UnitError {
    fn message(&self) -> &str {
        match self {
            UnitError::Failed(m) | UnitError::Load(m) => m,
        }
    }
}

/// One isolated piece of suite work. `work` receives the attempt number
/// (0 = first try) so retries can reseed deterministically.
pub struct Unit {
    /// Stable id (the `repro` experiment name).
    pub id: String,
    /// The work; panics are caught by the runner.
    pub work: Arc<dyn Fn(u64) -> Result<(), UnitError> + Send + Sync>,
}

impl Unit {
    /// Convenience constructor.
    pub fn new(
        id: impl Into<String>,
        work: impl Fn(u64) -> Result<(), UnitError> + Send + Sync + 'static,
    ) -> Unit {
        Unit {
            id: id.into(),
            work: Arc::new(work),
        }
    }
}

/// Mix an attempt number into a seed (SplitMix64 finalizer); attempt 0
/// returns the seed unchanged so fault-free runs are byte-identical.
pub fn reseed(seed: u64, attempt: u64) -> u64 {
    if attempt == 0 {
        return seed;
    }
    let mut z = seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Terminal status of one unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitStatus {
    /// Completed on the first attempt.
    Ok,
    /// Completed, but only after at least one reseeded retry.
    Retried,
    /// Every attempt failed (panic or reported failure).
    Failed,
    /// The per-unit deadline expired.
    TimedOut,
}

impl UnitStatus {
    fn as_str(&self) -> &'static str {
        match self {
            UnitStatus::Ok => "ok",
            UnitStatus::Retried => "retried",
            UnitStatus::Failed => "failed",
            UnitStatus::TimedOut => "timed-out",
        }
    }

    /// Whether the unit produced its outputs.
    pub fn completed(&self) -> bool {
        matches!(self, UnitStatus::Ok | UnitStatus::Retried)
    }
}

impl Serialize for UnitStatus {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

impl Deserialize for UnitStatus {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => match s.as_str() {
                "ok" => Ok(UnitStatus::Ok),
                "retried" => Ok(UnitStatus::Retried),
                "failed" => Ok(UnitStatus::Failed),
                "timed-out" => Ok(UnitStatus::TimedOut),
                other => Err(DeError(format!("unknown unit status {other:?}"))),
            },
            other => Err(DeError(format!("expected status string, got {other:?}"))),
        }
    }
}

/// Per-unit artifact-store traffic, recorded when a cache is active and
/// the unit touched it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheBlock {
    /// Entries served from the store.
    pub hits: u64,
    /// Lookups that fell through to computation.
    pub misses: u64,
    /// Bytes read on hits.
    pub bytes_read: u64,
    /// Bytes written on misses.
    pub bytes_written: u64,
}

/// One ledger row.
#[derive(Clone, Debug)]
pub struct LedgerUnit {
    /// Unit id (`repro` experiment name).
    pub id: String,
    /// Terminal status.
    pub status: UnitStatus,
    /// Wall-clock duration of the **terminal attempt only**, seconds —
    /// what the unit's outputs actually cost, agreeing with the
    /// `--timings` phase tables (which are also per-attempt). Earlier
    /// failed attempts land in `duration_total_secs` instead; blending
    /// them here used to over-report every retried unit.
    pub duration_secs: f64,
    /// Wall-clock duration across *all* attempts, seconds; present only
    /// when the unit ran more than one attempt (otherwise it would
    /// equal `duration_secs`).
    pub duration_total_secs: Option<f64>,
    /// Attempts performed (1 = no retries).
    pub attempts: u64,
    /// Redacted failure message (panic payload / reported reason),
    /// `null` for successful units.
    pub error: Option<String>,
    /// Store traffic attributed to this unit; absent when no cache was
    /// active or the unit never touched it.
    pub cache: Option<CacheBlock>,
    /// High-water mark (bytes) of the hierarchy stage's traversal-set
    /// arenas during the terminal attempt — the unit's peak arena
    /// footprint, vs the cumulative `arena_bytes` counter in
    /// `--timings`. Absent when the unit never built a DAG arena.
    pub arena_bytes_peak: Option<u64>,
    /// Sorted runs the memory-budgeted streaming builder spilled to
    /// disk during the terminal attempt. Absent when no build streamed
    /// (no `--mem-budget`, or the build fit its buffer).
    pub spill_runs: Option<u64>,
}

// Manual serde: `cache` / `duration_total_secs` are omitted (not null)
// when absent, and ledgers written before the fields existed must keep
// loading for `--resume`.
impl Serialize for LedgerUnit {
    fn to_content(&self) -> Content {
        let mut fields = vec![
            ("id".to_string(), self.id.to_content()),
            ("status".to_string(), self.status.to_content()),
            ("duration_secs".to_string(), self.duration_secs.to_content()),
        ];
        if let Some(total) = self.duration_total_secs {
            fields.push(("duration_total_secs".to_string(), total.to_content()));
        }
        fields.push(("attempts".to_string(), self.attempts.to_content()));
        fields.push(("error".to_string(), self.error.to_content()));
        if let Some(cache) = &self.cache {
            fields.push(("cache".to_string(), cache.to_content()));
        }
        if let Some(peak) = self.arena_bytes_peak {
            fields.push(("arena_bytes_peak".to_string(), peak.to_content()));
        }
        if let Some(runs) = self.spill_runs {
            fields.push(("spill_runs".to_string(), runs.to_content()));
        }
        Content::Map(fields)
    }
}

impl Deserialize for LedgerUnit {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let field = |k: &str| c.get(k).ok_or_else(|| DeError(format!("missing {k}")));
        Ok(LedgerUnit {
            id: String::from_content(field("id")?)?,
            status: UnitStatus::from_content(field("status")?)?,
            duration_secs: f64::from_content(field("duration_secs")?)?,
            duration_total_secs: match c.get("duration_total_secs") {
                Some(v) => Some(f64::from_content(v)?),
                None => None,
            },
            attempts: u64::from_content(field("attempts")?)?,
            error: Option::from_content(field("error")?)?,
            cache: match c.get("cache") {
                Some(v) => Some(CacheBlock::from_content(v)?),
                None => None,
            },
            arena_bytes_peak: match c.get("arena_bytes_peak") {
                Some(v) => Some(u64::from_content(v)?),
                None => None,
            },
            spill_runs: match c.get("spill_runs") {
                Some(v) => Some(u64::from_content(v)?),
                None => None,
            },
        })
    }
}

/// Which artifact store a run used — recorded in the ledger so
/// `--resume` only trusts entries produced against the same cache.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreInfo {
    /// Store root directory as given on the command line.
    pub path: String,
    /// `.tgr` codec version the store was written with.
    pub codec_version: u64,
}

/// The structured run ledger (`out/run-ledger.json`).
#[derive(Clone, Debug)]
pub struct RunLedger {
    /// Schema version.
    pub version: u64,
    /// Master seed of the run.
    pub seed: u64,
    /// Scale label ("small" / "paper").
    pub scale: String,
    /// The artifact store this run cached through, if any.
    pub store: Option<StoreInfo>,
    /// Per-unit outcomes, in execution order.
    pub units: Vec<LedgerUnit>,
}

// Manual serde for the same reason as [`LedgerUnit`]: `store` is
// omitted when absent, and pre-cache ledgers must keep loading.
impl Serialize for RunLedger {
    fn to_content(&self) -> Content {
        let mut fields = vec![
            ("version".to_string(), self.version.to_content()),
            ("seed".to_string(), self.seed.to_content()),
            ("scale".to_string(), self.scale.to_content()),
        ];
        if let Some(store) = &self.store {
            fields.push(("store".to_string(), store.to_content()));
        }
        fields.push(("units".to_string(), self.units.to_content()));
        Content::Map(fields)
    }
}

impl Deserialize for RunLedger {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let field = |k: &str| c.get(k).ok_or_else(|| DeError(format!("missing {k}")));
        Ok(RunLedger {
            version: u64::from_content(field("version")?)?,
            seed: u64::from_content(field("seed")?)?,
            scale: String::from_content(field("scale")?)?,
            store: match c.get("store") {
                Some(v) => Some(StoreInfo::from_content(v)?),
                None => None,
            },
            units: Vec::from_content(field("units")?)?,
        })
    }
}

impl RunLedger {
    /// An empty ledger for a run configuration.
    pub fn new(seed: u64, scale: &str) -> RunLedger {
        RunLedger {
            version: 1,
            seed,
            scale: scale.to_string(),
            store: None,
            units: Vec::new(),
        }
    }

    /// Load a ledger from disk (for `--resume`).
    pub fn load(path: &str) -> Result<RunLedger, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Persist to disk (rewritten after every unit, so a crash of the
    /// runner itself loses at most the unit in flight).
    pub fn save(&self, path: &str) -> Result<(), String> {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
        }
        std::fs::write(path, serde_json::to_string_pretty(self).unwrap())
            .map_err(|e| format!("{path}: {e}"))
    }

    /// The recorded entry for `id`, if any.
    pub fn unit(&self, id: &str) -> Option<&LedgerUnit> {
        self.units.iter().find(|u| u.id == id)
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct RunnerOptions {
    /// Continue past failed units instead of stopping at the first.
    pub keep_going: bool,
    /// Skip units a prior ledger shows completed; re-run the rest.
    pub resume: bool,
    /// Per-unit wall-clock deadline.
    pub deadline: Option<Duration>,
    /// Reseeded retries per unit after a failed attempt.
    pub retries: u64,
    /// Where to persist the ledger (`None` = in-memory only).
    pub ledger_path: Option<String>,
    /// The artifact store the run caches through (recorded in the
    /// ledger; `--resume` rejects prior ledgers from a different store).
    pub store: Option<StoreInfo>,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            keep_going: false,
            resume: false,
            deadline: None,
            retries: 1,
            ledger_path: None,
            store: None,
        }
    }
}

/// The aggregate result of a suite run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The final ledger (carried-over entries first-class).
    pub ledger: RunLedger,
    /// Aggregate process exit code: [`Clean`](crate::ExitCode::Clean)
    /// when all completed, [`LoadError`](crate::ExitCode::LoadError) on
    /// any load error, [`Failures`](crate::ExitCode::Failures) on any
    /// other failure or timeout.
    pub exit_code: crate::ExitCode,
    /// Ids actually executed this run (resume skips are absent).
    pub executed: Vec<String>,
}

/// Install a process-wide panic hook that suppresses the expected
/// control-flow panics (deadline `Cancelled` unwinds and injected
/// faults) while leaving genuine panics visible. Idempotent.
pub fn quiet_expected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if cancel::is_cancelled_payload(payload) {
                return;
            }
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if msg.starts_with("injected fault at ") {
                return;
            }
            previous(info);
        }));
    });
}

/// The outcome of one attempt.
enum Attempt {
    Success,
    Soft(UnitError),
    Panicked(String),
    TimedOut,
}

/// Run one attempt of `work` on its own thread, under `catch_unwind`
/// and (when configured) an ambient deadline.
fn run_attempt(
    work: &Arc<dyn Fn(u64) -> Result<(), UnitError> + Send + Sync>,
    attempt: u64,
    deadline: Option<Duration>,
) -> Attempt {
    // The attempt span opens on the runner thread (so timed-out,
    // abandoned unit threads still close it) and parents everything the
    // unit thread traces via the captured parent id.
    let _attempt_span = trace::span_labeled("attempt", &attempt.to_string());
    let trace_parent = trace::current_parent();
    let (tx, rx) = mpsc::channel();
    let work = Arc::clone(work);
    let ambient = deadline.map(cancel::Deadline::after);
    let thread_ambient = ambient.clone();
    let builder = std::thread::Builder::new()
        .name("topogen-unit".to_string())
        // Deep generator/metric recursion fits comfortably; match the
        // main thread rather than the 2 MiB spawn default.
        .stack_size(16 * 1024 * 1024);
    let handle = builder.spawn(move || {
        let body = || std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(attempt)));
        let result = trace::with_parent(trace_parent, || match thread_ambient {
            Some(d) => cancel::with_deadline(d, body),
            None => body(),
        });
        // The receiver may have abandoned us after the grace period.
        let _ = tx.send(result);
    });
    let handle = match handle {
        Ok(h) => h,
        Err(e) => return Attempt::Panicked(format!("spawn failed: {e}")),
    };

    let received = match deadline {
        None => rx.recv().ok(),
        Some(limit) => match rx.recv_timeout(limit + DEADLINE_GRACE) {
            Ok(r) => Some(r),
            Err(_) => {
                // Cooperative cancellation did not land in time: tell
                // the workers once more and abandon the thread (it will
                // unwind at its next checkpoint).
                if let Some(d) = &ambient {
                    d.token().cancel();
                }
                drop(handle);
                return Attempt::TimedOut;
            }
        },
    };
    if deadline.is_none() {
        let _ = handle.join();
    }
    match received {
        Some(Ok(Ok(()))) => Attempt::Success,
        Some(Ok(Err(soft))) => Attempt::Soft(soft),
        Some(Err(payload)) => {
            if cancel::is_cancelled_payload(payload.as_ref()) {
                Attempt::TimedOut
            } else {
                Attempt::Panicked(panic_message(payload.as_ref()))
            }
        }
        None => Attempt::Panicked("unit thread vanished without a result".to_string()),
    }
}

/// Execute `units` in order under the runner's fault-isolation policy.
pub fn run_units(units: &[Unit], opts: &RunnerOptions, seed: u64, scale: &str) -> RunReport {
    let prior = match (&opts.ledger_path, opts.resume) {
        (Some(path), true) => match RunLedger::load(path) {
            Ok(l) if l.seed != seed || l.scale != scale => {
                eprintln!("runner: ledger at a different seed/scale; ignoring for --resume");
                None
            }
            Ok(l) if l.store != opts.store => {
                eprintln!("runner: ledger from a different store config; ignoring for --resume");
                None
            }
            Ok(l) => Some(l),
            Err(e) => {
                eprintln!("runner: cannot load ledger ({e}); running everything");
                None
            }
        },
        _ => None,
    };

    let mut ledger = RunLedger::new(seed, scale);
    ledger.store = opts.store.clone();
    let mut executed = Vec::new();
    let mut any_load = false;
    let mut any_failed = false;

    let _suite_span = trace::span_labeled("suite", scale);
    for unit in units {
        // Resume: carry completed entries over verbatim.
        if let Some(prev) = prior.as_ref().and_then(|l| l.unit(&unit.id)) {
            if prev.status.completed() {
                ledger.units.push(prev.clone());
                continue;
            }
        }

        executed.push(unit.id.clone());
        faults::set_current_unit(Some(&unit.id));
        let unit_span = trace::span_labeled("unit", &unit.id);
        let store_before = topogen_store::ambient::counters();
        let started = Instant::now();
        let mut attempts = 0u64;
        let mut entry: Option<LedgerUnit> = None;
        while attempts <= opts.retries {
            let attempt = attempts;
            attempts += 1;
            // Snapshot per attempt: the recorded duration covers only
            // the terminal attempt, so it matches what the unit's
            // outputs (and the `--timings` phase tables) actually cost;
            // earlier failed/retried attempts are kept apart in
            // `duration_total_secs` instead of blended in.
            let attempt_started = Instant::now();
            // Drain the arena high-water and spill-run globals so the
            // recorded peaks cover exactly this attempt (stale
            // contributions from earlier attempts or abandoned unit
            // threads are dropped).
            let _ = topogen_par::take_arena_highwater();
            let _ = topogen_par::take_spill_runs();
            match run_attempt(&unit.work, attempt, opts.deadline) {
                Attempt::Success => {
                    entry = Some(LedgerUnit {
                        id: unit.id.clone(),
                        status: if attempt == 0 {
                            UnitStatus::Ok
                        } else {
                            UnitStatus::Retried
                        },
                        duration_secs: attempt_started.elapsed().as_secs_f64(),
                        duration_total_secs: None,
                        attempts,
                        error: None,
                        cache: None,
                        arena_bytes_peak: None,
                        spill_runs: None,
                    });
                    break;
                }
                Attempt::TimedOut => {
                    // A longer run would time out again: no retry.
                    entry = Some(LedgerUnit {
                        id: unit.id.clone(),
                        status: UnitStatus::TimedOut,
                        duration_secs: attempt_started.elapsed().as_secs_f64(),
                        duration_total_secs: None,
                        attempts,
                        error: Some("deadline exceeded".to_string()),
                        cache: None,
                        arena_bytes_peak: None,
                        spill_runs: None,
                    });
                    break;
                }
                Attempt::Soft(UnitError::Load(msg)) => {
                    // Deterministic input problem: no retry, exit 3.
                    any_load = true;
                    entry = Some(LedgerUnit {
                        id: unit.id.clone(),
                        status: UnitStatus::Failed,
                        duration_secs: attempt_started.elapsed().as_secs_f64(),
                        duration_total_secs: None,
                        attempts,
                        error: Some(msg),
                        cache: None,
                        arena_bytes_peak: None,
                        spill_runs: None,
                    });
                    break;
                }
                Attempt::Soft(err) => {
                    if attempts > opts.retries {
                        entry = Some(LedgerUnit {
                            id: unit.id.clone(),
                            status: UnitStatus::Failed,
                            duration_secs: attempt_started.elapsed().as_secs_f64(),
                            duration_total_secs: None,
                            attempts,
                            error: Some(err.message().to_string()),
                            cache: None,
                            arena_bytes_peak: None,
                            spill_runs: None,
                        });
                    } else {
                        eprintln!(
                            "runner: {} attempt {} failed ({}); retrying with reseed",
                            unit.id,
                            attempt,
                            err.message()
                        );
                    }
                }
                Attempt::Panicked(msg) => {
                    if attempts > opts.retries {
                        entry = Some(LedgerUnit {
                            id: unit.id.clone(),
                            status: UnitStatus::Failed,
                            duration_secs: attempt_started.elapsed().as_secs_f64(),
                            duration_total_secs: None,
                            attempts,
                            error: Some(msg),
                            cache: None,
                            arena_bytes_peak: None,
                            spill_runs: None,
                        });
                    } else {
                        eprintln!(
                            "runner: {} attempt {attempt} panicked ({msg}); retrying with reseed",
                            unit.id
                        );
                    }
                }
            }
        }
        drop(unit_span);
        faults::set_current_unit(None);

        let mut entry = entry.expect("every unit records an outcome");
        if attempts > 1 {
            entry.duration_total_secs = Some(started.elapsed().as_secs_f64());
        }
        match topogen_par::take_arena_highwater() {
            0 => {}
            peak => entry.arena_bytes_peak = Some(peak),
        }
        match topogen_par::take_spill_runs() {
            0 => {}
            runs => entry.spill_runs = Some(runs),
        }
        if let (Some(before), Some(after)) = (store_before, topogen_store::ambient::counters()) {
            let d = before.delta_to(&after);
            if !d.is_zero() {
                entry.cache = Some(CacheBlock {
                    hits: d.hits,
                    misses: d.misses,
                    bytes_read: d.bytes_read,
                    bytes_written: d.bytes_written,
                });
            }
        }
        let ok = entry.status.completed();
        if !ok {
            any_failed = true;
            eprintln!(
                "runner: {} {} after {} attempt(s): {}",
                entry.id,
                entry.status.as_str(),
                entry.attempts,
                entry.error.as_deref().unwrap_or("-")
            );
        }
        ledger.units.push(entry);
        if let Some(path) = &opts.ledger_path {
            if let Err(e) = ledger.save(path) {
                eprintln!("runner: cannot write ledger: {e}");
            }
        }
        if !ok && !opts.keep_going {
            break;
        }
    }

    let exit_code = if any_load {
        crate::ExitCode::LoadError
    } else if any_failed {
        crate::ExitCode::Failures
    } else {
        crate::ExitCode::Clean
    };
    RunReport {
        ledger,
        exit_code,
        executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn counting_unit(
        id: &str,
        counter: Arc<AtomicU64>,
        behavior: impl Fn(u64) -> Result<(), UnitError> + Send + Sync + 'static,
    ) -> Unit {
        Unit::new(id, move |attempt| {
            counter.fetch_add(1, Ordering::SeqCst);
            behavior(attempt)
        })
    }

    #[test]
    fn keep_going_records_failure_and_continues() {
        let ran = Arc::new(AtomicU64::new(0));
        let units = vec![
            counting_unit("a", ran.clone(), |_| Ok(())),
            Unit::new("b", |_| panic!("unit b exploded")),
            counting_unit("c", ran.clone(), |_| Ok(())),
        ];
        let opts = RunnerOptions {
            keep_going: true,
            retries: 0,
            ..Default::default()
        };
        let report = run_units(&units, &opts, 42, "small");
        assert_eq!(report.exit_code, crate::ExitCode::Failures);
        assert_eq!(ran.load(Ordering::SeqCst), 2, "a and c both ran");
        let statuses: Vec<_> = report.ledger.units.iter().map(|u| u.status).collect();
        assert_eq!(
            statuses,
            vec![UnitStatus::Ok, UnitStatus::Failed, UnitStatus::Ok]
        );
        let b = report.ledger.unit("b").unwrap();
        assert_eq!(b.error.as_deref(), Some("unit b exploded"));
    }

    #[test]
    fn stop_on_first_failure_without_keep_going() {
        let ran = Arc::new(AtomicU64::new(0));
        let units = vec![
            Unit::new("a", |_| panic!("down")),
            counting_unit("b", ran.clone(), |_| Ok(())),
        ];
        let opts = RunnerOptions {
            retries: 0,
            ..Default::default()
        };
        let report = run_units(&units, &opts, 1, "small");
        assert_eq!(report.exit_code, crate::ExitCode::Failures);
        assert_eq!(report.ledger.units.len(), 1);
        assert_eq!(ran.load(Ordering::SeqCst), 0, "b never ran");
    }

    #[test]
    fn retry_with_reseed_flips_stochastic_failure_to_retried() {
        let unit = Unit::new("flaky", |attempt| {
            if attempt == 0 {
                panic!("bad seed");
            }
            Ok(())
        });
        let opts = RunnerOptions {
            retries: 1,
            ..Default::default()
        };
        let report = run_units(&[unit], &opts, 9, "small");
        assert_eq!(report.exit_code, crate::ExitCode::Clean);
        let u = &report.ledger.units[0];
        assert_eq!(u.status, UnitStatus::Retried);
        assert_eq!(u.attempts, 2);
        assert!(u.error.is_none());
    }

    #[test]
    fn load_errors_exit_three_without_retry() {
        let tries = Arc::new(AtomicU64::new(0));
        let unit = counting_unit("measured", tries.clone(), |_| {
            Err(UnitError::Load("as.edges:17: bad line".to_string()))
        });
        let opts = RunnerOptions {
            retries: 3,
            keep_going: true,
            ..Default::default()
        };
        let report = run_units(&[unit], &opts, 2, "small");
        assert_eq!(report.exit_code, crate::ExitCode::LoadError);
        assert_eq!(tries.load(Ordering::SeqCst), 1, "load errors never retry");
        assert_eq!(
            report.ledger.units[0].error.as_deref(),
            Some("as.edges:17: bad line")
        );
    }

    #[test]
    fn deadline_expiry_is_timed_out_not_a_hang() {
        // The unit sleeps far past the deadline but checkpoints after,
        // exactly like a delay fault inside an engine phase.
        let unit = Unit::new("slow", |_| {
            std::thread::sleep(Duration::from_millis(150));
            cancel::checkpoint();
            Ok(())
        });
        let opts = RunnerOptions {
            deadline: Some(Duration::from_millis(30)),
            retries: 2,
            ..Default::default()
        };
        let started = Instant::now();
        let report = run_units(&[unit], &opts, 3, "small");
        assert!(started.elapsed() < Duration::from_secs(5), "no hang");
        let u = &report.ledger.units[0];
        assert_eq!(u.status, UnitStatus::TimedOut);
        assert_eq!(u.attempts, 1, "timeouts are not retried");
        assert_eq!(report.exit_code, crate::ExitCode::Failures);
    }

    #[test]
    fn resume_skips_completed_and_reruns_failed() {
        let dir = std::env::temp_dir().join(format!(
            "topogen-runner-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run-ledger.json").to_string_lossy().to_string();

        let first = vec![
            Unit::new("good", |_| Ok(())),
            Unit::new("bad", |_| panic!("first pass fails")),
        ];
        let opts = RunnerOptions {
            keep_going: true,
            retries: 0,
            ledger_path: Some(path.clone()),
            ..Default::default()
        };
        let r1 = run_units(&first, &opts, 7, "small");
        assert_eq!(r1.exit_code, crate::ExitCode::Failures);
        assert_eq!(r1.executed, vec!["good", "bad"]);

        // Second pass: "bad" is fixed; --resume must re-run only it.
        let good_runs = Arc::new(AtomicU64::new(0));
        let second = vec![
            counting_unit("good", good_runs.clone(), |_| Ok(())),
            Unit::new("bad", |_| Ok(())),
        ];
        let opts2 = RunnerOptions {
            resume: true,
            ..opts
        };
        let r2 = run_units(&second, &opts2, 7, "small");
        assert_eq!(r2.exit_code, crate::ExitCode::Clean);
        assert_eq!(r2.executed, vec!["bad"], "only the failed unit re-ran");
        assert_eq!(good_runs.load(Ordering::SeqCst), 0);
        assert_eq!(r2.ledger.unit("good").unwrap().status, UnitStatus::Ok);
        assert_eq!(r2.ledger.unit("bad").unwrap().status, UnitStatus::Ok);

        // The persisted ledger reflects the second pass.
        let reloaded = RunLedger::load(&path).unwrap();
        assert!(reloaded.units.iter().all(|u| u.status.completed()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reseed_identity_on_first_attempt() {
        assert_eq!(reseed(42, 0), 42);
        assert_ne!(reseed(42, 1), 42);
        assert_ne!(reseed(42, 1), reseed(42, 2));
    }

    #[test]
    fn ledger_round_trips_through_json() {
        let mut l = RunLedger::new(5, "small");
        l.store = Some(StoreInfo {
            path: "out/store".into(),
            codec_version: 1,
        });
        l.units.push(LedgerUnit {
            id: "tab1".into(),
            status: UnitStatus::TimedOut,
            duration_secs: 1.25,
            duration_total_secs: None,
            attempts: 1,
            error: Some("deadline exceeded".into()),
            cache: None,
            arena_bytes_peak: None,
            spill_runs: None,
        });
        l.units.push(LedgerUnit {
            id: "tab2".into(),
            status: UnitStatus::Ok,
            duration_secs: 0.5,
            duration_total_secs: Some(0.9),
            attempts: 1,
            error: None,
            cache: Some(CacheBlock {
                hits: 3,
                misses: 1,
                bytes_read: 4096,
                bytes_written: 1024,
            }),
            arena_bytes_peak: Some(2048),
            spill_runs: Some(3),
        });
        let j = serde_json::to_string_pretty(&l).unwrap();
        assert!(j.contains("timed-out"));
        let back: RunLedger = serde_json::from_str(&j).unwrap();
        assert_eq!(back.units[0].status, UnitStatus::TimedOut);
        assert_eq!(back.units[0].error.as_deref(), Some("deadline exceeded"));
        assert_eq!(back.units[0].cache, None);
        assert_eq!(back.units[0].duration_total_secs, None);
        assert_eq!(back.units[0].arena_bytes_peak, None);
        assert_eq!(back.units[0].spill_runs, None);
        assert_eq!(back.units[1].arena_bytes_peak, Some(2048));
        assert_eq!(back.units[1].spill_runs, Some(3));
        assert_eq!(back.units[1].duration_total_secs, Some(0.9));
        assert_eq!(back.units[1].cache.unwrap().hits, 3);
        assert_eq!(back.store, l.store);
        assert_eq!(back.seed, 5);
    }

    #[test]
    fn pre_cache_ledgers_still_load() {
        // A ledger written before the cache/store fields existed.
        let old = r#"{
            "version": 1,
            "seed": 7,
            "scale": "small",
            "units": [
                {"id": "a", "status": "ok", "duration_secs": 0.1,
                 "attempts": 1, "error": null}
            ]
        }"#;
        let l: RunLedger = serde_json::from_str(old).unwrap();
        assert_eq!(l.store, None);
        assert_eq!(l.units[0].cache, None);
        assert!(l.units[0].status.completed());
    }

    #[test]
    fn resume_rejects_ledger_from_different_store() {
        let dir = std::env::temp_dir().join(format!(
            "topogen-runner-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run-ledger.json").to_string_lossy().to_string();

        // First pass: cacheless, everything completes.
        let opts = RunnerOptions {
            retries: 0,
            ledger_path: Some(path.clone()),
            ..Default::default()
        };
        let r1 = run_units(&[Unit::new("good", |_| Ok(()))], &opts, 7, "small");
        assert_eq!(r1.exit_code, crate::ExitCode::Clean);

        // Second pass resumes with a store configured: the prior
        // (storeless) ledger must not be trusted, so "good" re-runs.
        let ran = Arc::new(AtomicU64::new(0));
        let opts2 = RunnerOptions {
            resume: true,
            store: Some(StoreInfo {
                path: "out/store".into(),
                codec_version: 1,
            }),
            ..opts
        };
        let r2 = run_units(
            &[counting_unit("good", ran.clone(), |_| Ok(()))],
            &opts2,
            7,
            "small",
        );
        assert_eq!(r2.executed, vec!["good"], "store mismatch forces a re-run");
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(r2.ledger.store, opts2.store, "new ledger records the store");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
