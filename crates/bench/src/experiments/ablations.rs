//! Ablations the paper calls out in §4.4:
//!
//! * **TS redundancy** (footnote 17): raising Transit-Stub's extra-edge
//!   budget raises resilience — but the distortion rises with it "to
//!   match that of the random graph"; you cannot buy the Internet's HHL
//!   signature with redundancy knobs.
//! * **Extreme parameter regimes**: Waxman under extreme geographic
//!   bias tends to a Euclidean-MST-like LLL graph; Tiers with minimal
//!   redundancy tends to an MST; a TS that is mostly transit tends to a
//!   random graph.
//! * **Distortion heuristic quality**: the spanning-tree local search
//!   ([`topogen_metrics::distortion::improve_tree_distortion`]) vs the
//!   plain BFS-root heuristics (our analogue of the paper's footnote 15
//!   comparison against Bartal's algorithm).

use crate::ExpCtx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_core::report::TableData;
use topogen_core::suite::run_suite;
use topogen_core::zoo::{build, BuiltTopology, TopologySpec};
use topogen_generators::tiers::TiersParams;
use topogen_generators::transit_stub::TransitStubParams;
use topogen_generators::waxman::WaxmanParams;
use topogen_metrics::distortion::{graph_distortion, DistortionParams};

fn sig_of(ctx: &ExpCtx, spec: &TopologySpec) -> (String, f64, f64) {
    let t = build(spec, ctx.scale, ctx.seed);
    let r = run_suite(&t, &ctx.suite_params());
    let last = |c: &[topogen_metrics::CurvePoint]| {
        c.iter()
            .rev()
            .find(|p| p.value.is_finite())
            .map(|p| p.value)
            .unwrap_or(f64::NAN)
    };
    (
        r.signature.to_string(),
        last(&r.resilience),
        last(&r.distortion),
    )
}

/// Footnote 17: the TS extra-edge ladder — resilience and distortion
/// both rise; the signature leaves HLL but lands on the random graph's
/// HHH, never the Internet's HHL.
pub fn run_ts_redundancy(ctx: &ExpCtx) -> TableData {
    let ladder = [(0usize, 0usize), (20, 40), (75, 200), (200, 800)];
    let mut rows = Vec::new();
    for (ets, ess) in ladder {
        let spec = TopologySpec::TransitStub(TransitStubParams {
            extra_transit_stub_edges: ets,
            extra_stub_stub_edges: ess,
            ..TransitStubParams::paper_default()
        });
        let (sig, r, d) = sig_of(ctx, &spec);
        rows.push(vec![
            format!("TS +{ets}ts +{ess}ss"),
            sig,
            format!("{r:.1}"),
            format!("{d:.2}"),
        ]);
    }
    TableData {
        id: "ablation-ts-redundancy".into(),
        header: vec![
            "Instance".into(),
            "Signature".into(),
            "R(last)".into(),
            "D(last)".into(),
        ],
        rows,
        failures: Vec::new(),
    }
}

/// §4.4's extreme regimes.
pub fn run_extremes(ctx: &ExpCtx) -> TableData {
    let mut rows = Vec::new();
    // Waxman with extreme geographic bias: fragmented, MST-like LCC.
    let frag = TopologySpec::Waxman(WaxmanParams {
        n: 1200,
        alpha: 0.05,
        beta: 0.02,
    });
    let (sig, r, d) = sig_of(ctx, &frag);
    rows.push(vec![
        "Waxman beta=0.02 (extreme bias)".into(),
        sig,
        format!("{r:.1}"),
        format!("{d:.2}"),
    ]);

    // Tiers with minimal redundancy: an MST with stars.
    let mst_tiers = TopologySpec::Tiers(TiersParams {
        mans_per_wan: 10,
        lans_per_man: 5,
        wan_nodes: 350,
        man_nodes: 20,
        lan_nodes: 4,
        wan_redundancy: 1,
        man_redundancy: 1,
        man_wan_redundancy: 1,
        lan_man_redundancy: 1,
        ..TiersParams::paper_default()
    });
    let (sig, r, d) = sig_of(ctx, &mst_tiers);
    rows.push(vec![
        "Tiers redundancy=1 (MST-like)".into(),
        sig,
        format!("{r:.1}"),
        format!("{d:.2}"),
    ]);

    // TS with a dominant transit portion: tends toward a random graph
    // ("For two-level TS hierarchies with a large transit portion, TS
    // tends toward a random graph", §4.4).
    let transit_heavy = TopologySpec::TransitStub(TransitStubParams {
        stubs_per_transit_node: 1,
        transit_domains: 6,
        transit_nodes_per_domain: 60,
        transit_edge_prob: 0.08,
        transit_domain_edge_prob: 0.8,
        stub_nodes_per_domain: 2,
        stub_edge_prob: 0.5,
        ..TransitStubParams::paper_default()
    });
    let (sig, r, d) = sig_of(ctx, &transit_heavy);
    rows.push(vec![
        "TS transit-heavy".into(),
        sig,
        format!("{r:.1}"),
        format!("{d:.2}"),
    ]);

    TableData {
        id: "ablation-extremes".into(),
        header: vec![
            "Instance".into(),
            "Signature".into(),
            "R(last)".into(),
            "D(last)".into(),
        ],
        rows,
        failures: Vec::new(),
    }
}

/// The distortion-heuristic ablation: plain BFS-root heuristics vs the
/// polished local search, on the graphs where tree choice matters.
pub fn run_distortion_polish(ctx: &ExpCtx) -> TableData {
    let specs: Vec<(&str, BuiltTopology)> = vec![
        (
            "Mesh 16x16",
            build(&TopologySpec::Mesh { side: 16 }, ctx.scale, ctx.seed),
        ),
        (
            "Waxman 450",
            build(
                &TopologySpec::Waxman(WaxmanParams {
                    n: 450,
                    alpha: 0.05,
                    beta: 0.3,
                }),
                ctx.scale,
                ctx.seed,
            ),
        ),
        (
            "Tiers small",
            build(
                &TopologySpec::Tiers(TiersParams {
                    mans_per_wan: 6,
                    lans_per_man: 4,
                    wan_nodes: 150,
                    man_nodes: 12,
                    lan_nodes: 4,
                    ..TiersParams::paper_default()
                }),
                ctx.scale,
                ctx.seed,
            ),
        ),
    ];
    let mut rows = Vec::new();
    let _rng = StdRng::seed_from_u64(ctx.seed);
    for (name, t) in specs {
        let plain = graph_distortion(
            &t.graph,
            &DistortionParams {
                polish: false,
                ..Default::default()
            },
        )
        .unwrap_or(f64::NAN);
        let polished = graph_distortion(
            &t.graph,
            &DistortionParams {
                polish: true,
                ..Default::default()
            },
        )
        .unwrap_or(f64::NAN);
        rows.push(vec![
            name.to_string(),
            format!("{plain:.3}"),
            format!("{polished:.3}"),
            format!("{:.1}%", 100.0 * (plain - polished) / plain.max(1e-9)),
        ]);
    }
    TableData {
        id: "ablation-distortion-polish".into(),
        header: vec![
            "Graph".into(),
            "D (BFS heuristics)".into(),
            "D (with local search)".into(),
            "improvement".into(),
        ],
        rows,
        failures: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polish_never_hurts() {
        let t = run_distortion_polish(&ExpCtx::default());
        for row in &t.rows {
            let plain: f64 = row[1].parse().unwrap();
            let polished: f64 = row[2].parse().unwrap();
            assert!(
                polished <= plain + 1e-9,
                "{}: polish worsened {plain} → {polished}",
                row[0]
            );
        }
    }
}
