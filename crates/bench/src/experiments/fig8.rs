//! Appendix B, Figure 8: (a–c) vertex cover vs ball size and (d–f)
//! biconnected components vs ball size.

use crate::experiments::zoo_figure_degraded;
use crate::ExpCtx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_core::report::{FigureData, Series};
use topogen_metrics::balls::{sample_centers, PlainBalls};
use topogen_metrics::bicon_metric::bicon_curve;
use topogen_metrics::cover::cover_curve;
use topogen_metrics::CurvePoint;

fn to_series(name: &str, curve: &[CurvePoint]) -> Series {
    let x: Vec<f64> = curve.iter().map(|p| p.avg_size).collect();
    let y: Vec<f64> = curve.iter().map(|p| p.value).collect();
    Series::new(name, &x, &y)
}

fn run_ball_metric(ctx: &ExpCtx, id: &str, y_label: &str, which: &str) -> FigureData {
    let centers_n = if ctx.quick { 8 } else { 24 };
    let max_ball = if ctx.quick { 1_200 } else { 4_000 };
    let max_h = if ctx.quick { 40 } else { 64 };
    zoo_figure_degraded(ctx.scale, ctx.seed, id, "ball size", y_label, |t| {
        // The RL graph at quick settings is large; its balls are capped
        // like everything else's, so it stays included.
        let src = PlainBalls { graph: &t.graph };
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xF18);
        let centers = sample_centers(t.graph.node_count(), centers_n, &mut rng);
        let curve = match which {
            "cover" => cover_curve(&src, &centers, max_h, max_ball),
            "bicon" => bicon_curve(&src, &centers, max_h, max_ball),
            other => panic!("unknown metric {other:?}"),
        };
        Some(to_series(&t.name, &curve))
    })
}

/// Figure 8(a–c): vertex cover growth.
pub fn run_cover(ctx: &ExpCtx) -> FigureData {
    run_ball_metric(ctx, "fig8-vertex-cover", "vertex cover", "cover")
}

/// Figure 8(d–f): biconnected-component growth.
pub fn run_bicon(ctx: &ExpCtx) -> FigureData {
    run_ball_metric(
        ctx,
        "fig8-biconnectivity",
        "number of biconnected components",
        "bicon",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_grows_with_ball() {
        let ctx = ExpCtx {
            quick: true,
            ..Default::default()
        };
        let f = run_cover(&ctx);
        // Vertex cover grows monotonically with ball size for every zoo
        // member (within finite-sample noise: allow tiny dips).
        for s in &f.series {
            let first = s.y.iter().find(|v| **v > 0.0).copied().unwrap_or(0.0);
            let last = *s.y.last().unwrap();
            assert!(last >= first, "{}: cover shrank {first} → {last}", s.label);
        }
    }

    #[test]
    fn tree_bicon_tracks_edges() {
        let f = run_bicon(&ExpCtx::default());
        let tree = f.series.iter().find(|s| s.label == "Tree").unwrap();
        // For trees, #biconnected components = #edges = ball size − 1.
        for (x, y) in tree.x.iter().zip(&tree.y) {
            if *x >= 2.0 {
                assert!((y - (x - 1.0)).abs() < 1.5, "ball {x}: {y} components");
            }
        }
    }
}
