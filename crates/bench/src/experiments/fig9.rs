//! Appendix B, Figure 9: attack tolerance (a–c) and error tolerance
//! (d–f) — average path length of the largest component as nodes are
//! removed by decreasing degree (attack) or at random (error).

use crate::experiments::{build_zoo, zoo_figure_degraded};
use crate::ExpCtx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_core::report::{FigureData, Series};
use topogen_metrics::tolerance::{standard_fractions, tolerance_curve, Removal};

/// One tolerance panel.
pub fn run(ctx: &ExpCtx, mode: Removal) -> FigureData {
    let samples = if ctx.quick { 12 } else { 60 };
    let fractions = standard_fractions();
    let label = match mode {
        Removal::Attack => "attack",
        Removal::Error => "error",
    };
    zoo_figure_degraded(
        ctx.scale,
        ctx.seed,
        format!("fig9-{label}-tolerance"),
        "fraction of nodes removed",
        "average path length (largest component)",
        |t| {
            if ctx.quick && t.name == "RL" {
                // Path-length sampling on the 15k-node RL graph at every
                // removal fraction is minutes-scale; thorough runs include it.
                return None;
            }
            let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x7019);
            let pts = tolerance_curve(&t.graph, mode, &fractions, samples, &mut rng);
            let x: Vec<f64> = pts.iter().map(|p| p.fraction).collect();
            let y: Vec<f64> = pts.iter().map(|p| p.avg_path_length).collect();
            Some(Series::new(&t.name, &x, &y))
        },
    )
}

/// The Albert-et-al. claim the panel supports: power-law graphs (PLRG,
/// AS) suffer far more under attack than under error; returns per-name
/// `(attack path stretch, error path stretch)` at 10% removal.
pub fn attack_vs_error(ctx: &ExpCtx) -> Vec<(String, f64, f64)> {
    let samples = if ctx.quick { 12 } else { 60 };
    let fr = [0.0, 0.1];
    let zoo = build_zoo(ctx.scale, ctx.seed);
    let mut out = Vec::new();
    for t in &zoo {
        if t.name == "RL" && ctx.quick {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xAE);
        let atk = tolerance_curve(&t.graph, Removal::Attack, &fr, samples, &mut rng);
        let err = tolerance_curve(&t.graph, Removal::Error, &fr, samples, &mut rng);
        // "Stretch": relative growth of the path length, weighted by how
        // much of the network even survives.
        let stretch = |pts: &[topogen_metrics::tolerance::TolerancePoint]| {
            let base = pts[0].avg_path_length.max(1e-9);
            let survived = pts[1].largest_component as f64 / pts[0].largest_component.max(1) as f64;
            if pts[1].avg_path_length.is_nan() || survived < 0.05 {
                f64::INFINITY // shattered
            } else {
                pts[1].avg_path_length / base / survived
            }
        };
        out.push((t.name.clone(), stretch(&atk), stretch(&err)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_panel_has_series() {
        let f = run(&ExpCtx::default(), Removal::Error);
        assert!(f.series.len() >= 8);
        for s in &f.series {
            assert_eq!(s.x[0], 0.0);
            assert!(s.y[0] > 1.0, "{}: baseline APL {}", s.label, s.y[0]);
        }
    }

    #[test]
    fn plrg_attack_fragility() {
        let rows = attack_vs_error(&ExpCtx::default());
        let (_, atk, err) = rows.iter().find(|(n, ..)| n == "PLRG").unwrap();
        assert!(
            atk > err,
            "PLRG must degrade more under attack: attack {atk} vs error {err}"
        );
    }
}
