//! Table 1 (the paper's Figure 1): the topology zoo with node counts and
//! average degrees.
//!
//! Paper values for reference: RL 170589 / 2.53, AS 10941 / 4.13, PLRG
//! 9230 / 4.46, TS 1008 / 2.78, Tiers 5000 / 2.83, Waxman 5000 / 7.22,
//! Mesh 900 / 3.87, Random 5018 / 4.18, Tree 1093 / 2.00.

use crate::experiments::build_zoo_degraded;
use crate::ExpCtx;
use topogen_core::report::TableData;

/// Reference rows from the paper's Figure 1 for side-by-side printing.
fn paper_reference(name: &str) -> (&'static str, &'static str) {
    match name {
        "RL" => ("170589", "2.53"),
        "AS" => ("10941", "4.13"),
        "PLRG" => ("9230", "4.46"),
        "TS" => ("1008", "2.78"),
        "Tiers" => ("5000", "2.83"),
        "Waxman" => ("5000", "7.22"),
        "Mesh" => ("900", "3.87"),
        "Random" => ("5018", "4.18"),
        "Tree" => ("1093", "2.00"),
        _ => ("-", "-"),
    }
}

/// Build the zoo and emit the table. Topologies that fail to build are
/// rendered as degraded rows with the reason footnoted.
pub fn run(ctx: &ExpCtx) -> TableData {
    let zoo = build_zoo_degraded(ctx.scale, ctx.seed);
    let rows = zoo
        .built
        .iter()
        .map(|t| {
            let (pn, pd) = paper_reference(&t.name);
            vec![
                t.name.clone(),
                t.graph.node_count().to_string(),
                format!("{:.2}", t.graph.average_degree()),
                pn.to_string(),
                pd.to_string(),
            ]
        })
        .collect();
    let mut table = TableData::new(
        "tab1",
        vec![
            "Topology".into(),
            "Nodes".into(),
            "AvgDeg".into(),
            "Paper nodes".into(),
            "Paper deg".into(),
        ],
        rows,
    );
    for (name, reason) in zoo.failures {
        table.push_failed_row(name, reason);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_zoo_rows() {
        let t = run(&ExpCtx::default());
        assert_eq!(t.rows.len(), 9);
        let names: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        for want in [
            "Tree", "Mesh", "Random", "Waxman", "TS", "Tiers", "PLRG", "AS", "RL",
        ] {
            assert!(names.contains(&want), "{want} missing");
        }
    }

    #[test]
    fn average_degrees_in_realistic_band() {
        let t = run(&ExpCtx::default());
        for row in &t.rows {
            let deg: f64 = row[2].parse().unwrap();
            assert!((1.5..12.0).contains(&deg), "{}: degree {deg}", row[0]);
        }
    }
}
