//! Figure 2: the paper's centerpiece — expansion, resilience and
//! distortion curves for the canonical (a–c), measured (d–f), generated
//! (g–i) and degree-based (j–l) panels, including the AS/RL policy
//! variants.

use crate::experiments::{build_zoo, catching};
use crate::ExpCtx;
use topogen_core::report::{FigureData, Series};
use topogen_core::suite::{run_suite, run_suite_policy, run_suite_rl_policy, SuiteResult};
use topogen_core::zoo::{build, BuiltTopology, TopologySpec};
use topogen_metrics::CurvePoint;

/// Which of the three metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// E(h).
    Expansion,
    /// R(n).
    Resilience,
    /// D(n).
    Distortion,
}

impl Metric {
    /// All three.
    pub fn all() -> [Metric; 3] {
        [Metric::Expansion, Metric::Resilience, Metric::Distortion]
    }

    /// Label for ids/axes.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Expansion => "expansion",
            Metric::Resilience => "resilience",
            Metric::Distortion => "distortion",
        }
    }
}

fn curve_series(label: &str, metric: Metric, r: &SuiteResult) -> Series {
    match metric {
        Metric::Expansion => {
            let x: Vec<f64> = (0..r.expansion.len()).map(|h| h as f64).collect();
            Series::new(label, &x, &r.expansion)
        }
        Metric::Resilience => points_series(label, &r.resilience),
        Metric::Distortion => points_series(label, &r.distortion),
    }
}

fn points_series(label: &str, pts: &[CurvePoint]) -> Series {
    let x: Vec<f64> = pts.iter().map(|p| p.avg_size).collect();
    let y: Vec<f64> = pts.iter().map(|p| p.value).collect();
    Series::new(label, &x, &y)
}

/// One Figure 2 panel: `panel` ∈ {"canonical", "measured", "generated",
/// "degree-based"}, one figure per metric.
pub fn run(ctx: &ExpCtx, panel: &str, metric: Metric) -> FigureData {
    let params = ctx.suite_params();
    let mut series = Vec::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    let specs: Vec<TopologySpec> = match panel {
        "canonical" => named_specs(ctx, &["Tree", "Mesh", "Random"]),
        "measured" => vec![TopologySpec::MeasuredAs, TopologySpec::MeasuredRl],
        "generated" => named_specs(ctx, &["TS", "Tiers", "Waxman", "PLRG"]),
        "degree-based" => TopologySpec::degree_based_zoo(ctx.scale),
        other => panic!("unknown panel {other:?}"),
    };
    // Per-topology fault isolation, at both stages: a topology that
    // fails to build or to measure is footnoted instead of aborting the
    // panel (its seeding is independent, so the survivors are unchanged).
    let mut topologies: Vec<BuiltTopology> = Vec::new();
    for s in &specs {
        match catching(|| build(s, ctx.scale, ctx.seed)) {
            Ok(t) => topologies.push(t),
            Err(reason) => failures.push((s.name(), reason)),
        }
    }
    for t in &topologies {
        let measured = catching(|| {
            let mut local = Vec::new();
            let r = run_suite(t, &params);
            local.push(curve_series(&t.name, metric, &r));
            // Policy variants, exactly as the paper plots them: AS(Policy)
            // through valley-free balls, RL(Policy) through the Appendix E
            // router overlay.
            if t.annotations.is_some() {
                let rp = run_suite_policy(t, &params);
                local.push(curve_series(&format!("{}(Policy)", t.name), metric, &rp));
            }
            if t.as_overlay.is_some() {
                let rp = run_suite_rl_policy(t, &params);
                local.push(curve_series(&format!("{}(Policy)", t.name), metric, &rp));
            }
            local
        });
        match measured {
            Ok(local) => series.extend(local),
            Err(reason) => failures.push((t.name.clone(), reason)),
        }
    }
    let (x_label, y_label) = match metric {
        Metric::Expansion => ("ball radius h", "expansion E(h)"),
        Metric::Resilience => ("ball size n", "resilience R(n)"),
        Metric::Distortion => ("ball size n", "distortion D(n)"),
    };
    let mut fig = FigureData::new(
        format!("fig2-{}-{}", metric.label(), panel),
        x_label,
        y_label,
        series,
    );
    for (label, reason) in failures {
        fig.note_failure(label, reason);
    }
    fig
}

/// Look up zoo specs by topology name (each `build` seeds its own RNG,
/// so building just the named specs matches building the whole zoo).
fn named_specs(ctx: &ExpCtx, names: &[&str]) -> Vec<TopologySpec> {
    let zoo = TopologySpec::figure1_zoo(ctx.scale);
    names
        .iter()
        .map(|n| {
            zoo.iter()
                .find(|s| s.name() == *n)
                .unwrap_or_else(|| panic!("{n} not in zoo"))
                .clone()
        })
        .collect()
}

/// The qualitative checks the panels support (used by EXPERIMENTS.md and
/// the integration tests): returns (claim, holds).
#[allow(clippy::vec_init_then_push)]
pub fn qualitative_checks(ctx: &ExpCtx) -> Vec<(String, bool)> {
    use topogen_metrics::expansion::expansion_growth_rate;
    let params = ctx.suite_params();
    let zoo = build_zoo(ctx.scale, ctx.seed);
    let get = |name: &str| zoo.iter().find(|t| t.name == name).unwrap();
    let suite = |t: &BuiltTopology| run_suite(t, &params);

    let mesh = suite(get("Mesh"));
    let tiers = suite(get("Tiers"));
    let tree = suite(get("Tree"));
    let ts = suite(get("TS"));
    let plrg = suite(get("PLRG"));
    let asg = suite(get("AS"));
    let waxman = suite(get("Waxman"));
    let random = suite(get("Random"));

    let last = |c: &[CurvePoint]| {
        c.iter()
            .rev()
            .find(|p| p.value.is_finite())
            .map(|p| p.value)
            .unwrap_or(f64::NAN)
    };
    let mut checks = Vec::new();
    checks.push((
        "Tiers and Mesh expand slowly; all others exponentially".into(),
        expansion_growth_rate(&tiers.expansion) < 0.2
            && expansion_growth_rate(&mesh.expansion) < 0.2
            && expansion_growth_rate(&plrg.expansion) > 0.2
            && expansion_growth_rate(&asg.expansion) > 0.2,
    ));
    checks.push((
        "TS and Tree have low resilience; PLRG/AS/Waxman/Random high".into(),
        last(&ts.resilience) < 10.0
            && last(&tree.resilience) < 10.0
            && last(&plrg.resilience) > 30.0
            && last(&asg.resilience) > 30.0
            && last(&waxman.resilience) > 30.0,
    ));
    checks.push((
        "Waxman/Random/Mesh have high distortion; AS/PLRG/TS/Tiers low".into(),
        last(&waxman.distortion) > last(&asg.distortion)
            && last(&random.distortion) > last(&plrg.distortion)
            && last(&mesh.distortion) > last(&ts.distortion),
    ));
    checks.push((
        "the AS and RL graphs behave alike (same signature)".into(),
        asg.signature == suite(get("RL")).signature,
    ));
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_panel_has_three_series() {
        let f = run(&ExpCtx::default(), "canonical", Metric::Expansion);
        assert_eq!(f.series.len(), 3);
        assert!(f.id.contains("expansion"));
        // Expansion curves approach 1 (the quick radius budget of 40
        // truncates the 58-hop mesh slightly).
        for s in &f.series {
            let last = *s.y.last().unwrap();
            assert!(last > 0.9, "{}: E ends at {last}", s.label);
        }
    }

    #[test]
    #[should_panic]
    fn unknown_panel_panics() {
        let _ = run(&ExpCtx::default(), "nope", Metric::Expansion);
    }
}
