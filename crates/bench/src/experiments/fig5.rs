//! Figure 5: correlation between minimum endpoint degree and link value
//! for the nine networks of §5.2.

use crate::experiments::fig3::linkvalue_zoo;
use crate::ExpCtx;
use topogen_core::hier::{hierarchy_report, HierOptions};
use topogen_core::report::TableData;
use topogen_core::zoo::build;

/// One correlation row.
#[derive(Clone, Debug)]
pub struct CorrRow {
    /// Topology name.
    pub name: String,
    /// Pearson correlation between link value and min endpoint degree.
    pub correlation: f64,
}

/// Compute the correlations (including the AS policy variant, as the
/// paper plots "AS(Policy)").
pub fn correlations(ctx: &ExpCtx) -> Vec<CorrRow> {
    let mut rows = Vec::new();
    for spec in linkvalue_zoo(ctx) {
        let t = build(&spec, ctx.scale, ctx.seed);
        let r = hierarchy_report(&t, &HierOptions::default());
        rows.push(CorrRow {
            name: r.name.clone(),
            correlation: r.degree_correlation.unwrap_or(f64::NAN),
        });
        if t.annotations.is_some() {
            let rp = hierarchy_report(
                &t,
                &HierOptions {
                    policy: true,
                    core_threshold: 3000,
                },
            );
            rows.push(CorrRow {
                name: format!("{}(Policy)", t.name),
                correlation: rp.degree_correlation.unwrap_or(f64::NAN),
            });
        }
    }
    // The paper's bar chart is sorted by correlation, descending.
    rows.sort_by(|a, b| b.correlation.partial_cmp(&a.correlation).unwrap());
    rows
}

/// The figure as a table (it is a bar chart in the paper).
pub fn run(ctx: &ExpCtx) -> TableData {
    let rows = correlations(ctx)
        .into_iter()
        .map(|r| vec![r.name, format!("{:.3}", r.correlation)])
        .collect();
    TableData {
        id: "fig5-degree-correlation".into(),
        header: vec!["Topology".into(), "corr(link value, min degree)".into()],
        rows,
        failures: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plrg_tops_tree() {
        // The §5.2 ordering claims we verify in integration tests too;
        // here just the cheap shape property (sorted descending).
        let rows = correlations(&ExpCtx::default());
        assert!(rows.len() >= 8);
        assert!(rows
            .windows(2)
            .all(|w| w[0].correlation >= w[1].correlation || w[1].correlation.is_nan()));
        let pos = |name: &str| rows.iter().position(|r| r.name == name).unwrap();
        assert!(pos("PLRG") < pos("Tree"), "PLRG must out-correlate Tree");
    }
}
