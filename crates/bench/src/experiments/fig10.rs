//! Figure 10: clustering coefficient vs ball size, plus the §4.4
//! whole-graph clustering observation (PLRG tracks the AS graph under
//! ball-growing, but not on the whole graph).

use crate::experiments::{build_zoo_degraded, zoo_figure_degraded};
use crate::ExpCtx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_core::report::{FigureData, Series, TableData};
use topogen_metrics::balls::{sample_centers, PlainBalls};
use topogen_metrics::clustering::{clustering_curve, graph_clustering};

/// The ball-growing clustering curves.
pub fn run(ctx: &ExpCtx) -> FigureData {
    let centers_n = if ctx.quick { 8 } else { 24 };
    let max_ball = if ctx.quick { 1_500 } else { 5_000 };
    zoo_figure_degraded(
        ctx.scale,
        ctx.seed,
        "fig10-clustering",
        "ball size",
        "clustering coefficient",
        |t| {
            let src = PlainBalls { graph: &t.graph };
            let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xC1);
            let centers = sample_centers(t.graph.node_count(), centers_n, &mut rng);
            let curve = clustering_curve(&src, &centers, if ctx.quick { 40 } else { 64 }, max_ball);
            let x: Vec<f64> = curve.iter().map(|p| p.avg_size).collect();
            let y: Vec<f64> = curve.iter().map(|p| p.value).collect();
            Some(Series::new(&t.name, &x, &y))
        },
    )
}

/// Whole-graph clustering coefficients (the §4.4 caveat table).
pub fn whole_graph_table(ctx: &ExpCtx) -> TableData {
    let zoo = build_zoo_degraded(ctx.scale, ctx.seed);
    let rows = zoo
        .built
        .iter()
        .map(|t| {
            vec![
                t.name.clone(),
                graph_clustering(&t.graph)
                    .map(|c| format!("{c:.4}"))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    let mut table = TableData::new(
        "fig10-global-clustering",
        vec!["Topology".into(), "global clustering".into()],
        rows,
    );
    for (name, reason) in zoo.failures {
        table.push_failed_row(name, reason);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_clustering_zero() {
        let t = whole_graph_table(&ExpCtx::default());
        for name in ["Tree", "Mesh"] {
            let row = t.rows.iter().find(|r| r[0] == name).unwrap();
            let c: f64 = row[1].parse().unwrap();
            assert_eq!(c, 0.0, "{name}");
        }
    }

    #[test]
    fn curves_bounded() {
        let f = run(&ExpCtx::default());
        for s in &f.series {
            assert!(s.y.iter().all(|&c| (0.0..=1.0).contains(&c)), "{}", s.label);
        }
    }
}
