//! Appendix D, Figures 12 & 13: the degree-based generator variants.
//!
//! Figure 12: degree CCDF plus the three basic metrics for B-A, Brite,
//! BT (GLP), Inet and PLRG — "they are all qualitatively similar with
//! respect to our metrics".
//!
//! Figure 13: the "Modified B-A" / "Modified Brite" experiment — extract
//! each graph's degree sequence, reconnect it with the PLRG method, and
//! show the metric curves coincide with the originals, demonstrating
//! that "what seems to determine the qualitative behavior ... is the
//! degree distribution, not the connectivity method". We also include
//! the *deterministic* connectivity contrast (Appendix D.1's closing
//! observation that deterministic wiring is NOT equivalent).

use crate::experiments::fig2::Metric;
use crate::ExpCtx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_core::classify::Signature;
use topogen_core::report::{FigureData, Series, TableData};
use topogen_core::suite::run_suite;
use topogen_core::zoo::{build, BuiltTopology, TopologySpec};
use topogen_generators::connectivity::match_deterministic;
use topogen_generators::degseq::degree_ccdf;
use topogen_graph::components::largest_component;

/// Figure 12: CCDF + metric curves for the degree-based panel. Returns
/// `(ccdf figure, [expansion, resilience, distortion] figures)`.
pub fn run(ctx: &ExpCtx) -> (FigureData, Vec<FigureData>) {
    let specs = TopologySpec::degree_based_zoo(ctx.scale);
    let built: Vec<BuiltTopology> = specs
        .iter()
        .map(|s| build(s, ctx.scale, ctx.seed))
        .collect();
    let ccdf_series = built
        .iter()
        .map(|t| {
            let c = degree_ccdf(&t.graph);
            Series::new(
                &t.name,
                &c.iter().map(|p| p.degree as f64).collect::<Vec<_>>(),
                &c.iter().map(|p| p.fraction).collect::<Vec<_>>(),
            )
        })
        .collect();
    let ccdf = FigureData {
        id: "fig12-ccdf".into(),
        x_label: "degree".into(),
        y_label: "complementary cumulative frequency".into(),
        series: ccdf_series,
        failures: Vec::new(),
    };
    let params = ctx.suite_params();
    let mut figs = Vec::new();
    let results: Vec<_> = built.iter().map(|t| run_suite(t, &params)).collect();
    for metric in Metric::all() {
        let series = built
            .iter()
            .zip(&results)
            .map(|(t, r)| match metric {
                Metric::Expansion => {
                    let x: Vec<f64> = (0..r.expansion.len()).map(|h| h as f64).collect();
                    Series::new(&t.name, &x, &r.expansion)
                }
                Metric::Resilience => Series::new(
                    &t.name,
                    &r.resilience.iter().map(|p| p.avg_size).collect::<Vec<_>>(),
                    &r.resilience.iter().map(|p| p.value).collect::<Vec<_>>(),
                ),
                Metric::Distortion => Series::new(
                    &t.name,
                    &r.distortion.iter().map(|p| p.avg_size).collect::<Vec<_>>(),
                    &r.distortion.iter().map(|p| p.value).collect::<Vec<_>>(),
                ),
            })
            .collect();
        figs.push(FigureData {
            id: format!("fig12-{}", metric.label()),
            x_label: "h or n".into(),
            y_label: metric.label().into(),
            series,
            failures: Vec::new(),
        });
    }
    (ccdf, figs)
}

/// Figure 13 + the deterministic contrast, as a signature table: each
/// variant, its PLRG-rewired "Modified" twin, and (for PLRG) the
/// deterministic-wiring twin.
pub fn run_modified(ctx: &ExpCtx) -> TableData {
    let params = ctx.suite_params();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |name: &str, sig: Signature, g: &topogen_graph::Graph| {
        // Diameter estimate (eccentricity of node 0 — within 2× of the
        // true diameter) and clustering: the fine structure where the
        // deterministic threshold-like graph departs from the random
        // variants even when the coarse L/H signature coincides.
        let ecc = topogen_graph::bfs::eccentricity(g, 0);
        let clus = topogen_metrics::clustering::graph_clustering(g).unwrap_or(0.0);
        rows.push(vec![
            name.to_string(),
            sig.to_string(),
            ecc.to_string(),
            format!("{clus:.3}"),
        ]);
    };
    for spec in TopologySpec::degree_based_zoo(ctx.scale) {
        let original = build(&spec, ctx.scale, ctx.seed);
        let orig_sig = run_suite(&original, &params).signature;
        push(&original.name, orig_sig, &original.graph);
        let modified = build(
            &TopologySpec::PlrgRewired(Box::new(spec.clone())),
            ctx.scale,
            ctx.seed,
        );
        let mod_sig = run_suite(&modified, &params).signature;
        push(&modified.name, mod_sig, &modified.graph);
    }
    // Appendix D.1's full connectivity sweep over one PLRG degree
    // sequence: every *random* rule should keep the HHL signature;
    // the deterministic rule should not.
    let base = build(
        &TopologySpec::Plrg(topogen_generators::plrg::PlrgParams {
            n: if ctx.quick { 1300 } else { 9000 },
            alpha: 2.246,
            max_degree: None,
        }),
        ctx.scale,
        ctx.seed,
    );
    let degrees = base.graph.degrees();
    let wrap = |name: &str, g: topogen_graph::Graph| BuiltTopology {
        name: name.into(),
        graph: largest_component(&g).0,
        annotations: None,
        router_as: None,
        as_overlay: None,
        spec: TopologySpec::MeasuredAs, // placeholder spec, unused
    };
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xD1);
    let variants: Vec<(&str, topogen_graph::Graph)> = vec![
        (
            "PLRG(uniform wiring)",
            topogen_generators::connectivity::match_uniform(&degrees, &mut rng),
        ),
        (
            "PLRG(highest-first uniform)",
            topogen_generators::connectivity::match_highest_first(
                &degrees,
                topogen_generators::connectivity::PartnerRule::Uniform,
                &mut rng,
            ),
        ),
        (
            "PLRG(highest-first proportional)",
            topogen_generators::connectivity::match_highest_first(
                &degrees,
                topogen_generators::connectivity::PartnerRule::ProportionalToDegree,
                &mut rng,
            ),
        ),
        (
            "PLRG(highest-first unsatisfied)",
            topogen_generators::connectivity::match_highest_first(
                &degrees,
                topogen_generators::connectivity::PartnerRule::ProportionalToUnsatisfied,
                &mut rng,
            ),
        ),
        ("PLRG(deterministic wiring)", match_deterministic(&degrees)),
    ];
    for (name, g) in variants {
        let t = wrap(name, g);
        let sig = run_suite(&t, &params).signature;
        push(name, sig, &t.graph);
    }
    TableData {
        id: "fig13-modified-variants".into(),
        header: vec![
            "Topology".into(),
            "Signature".into(),
            "Ecc(0)".into(),
            "Clustering".into(),
        ],
        rows,
        failures: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccdf_has_five_variants() {
        let (ccdf, figs) = run(&ExpCtx::default());
        assert_eq!(ccdf.series.len(), 5);
        assert_eq!(figs.len(), 3);
    }
}
