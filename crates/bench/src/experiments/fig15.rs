//! Appendix E, Figure 15: the policy-induced ball-growing example —
//! eight annotated ASes around center A, with ball membership at each
//! radius, plus a router-overlay demonstration of the RL policy path
//! construction.

use crate::ExpCtx;
use topogen_core::report::TableData;
use topogen_graph::Graph;
use topogen_policy::balls::policy_ball;
use topogen_policy::overlay::RouterOverlay;
use topogen_policy::rel::{annotations_from_pairs, AsAnnotations};

/// The Figure 15 example graph (A..H = 0..7) with the provider–customer
/// orientation that reproduces the paper's stated memberships.
pub fn figure15_graph() -> (Graph, AsAnnotations) {
    let g = Graph::from_edges(
        8,
        vec![
            (0, 1), // A-B
            (0, 2), // A-C
            (0, 7), // A-H
            (1, 4), // B-E (E provider of B)
            (2, 3), // C-D
            (3, 4), // D-E
            (4, 6), // E-G
            (4, 5), // E-F
        ],
    );
    let ann = annotations_from_pairs(
        &g,
        &[
            (0, 1),
            (0, 2),
            (0, 7),
            (4, 1),
            (2, 3),
            (3, 4),
            (4, 6),
            (4, 5),
        ],
        &[],
        &[],
    );
    (g, ann)
}

/// Ball memberships around A for radii 0..=4, as a table (names A..H).
pub fn run(_ctx: &ExpCtx) -> TableData {
    let (g, ann) = figure15_graph();
    let names = ["A", "B", "C", "D", "E", "F", "G", "H"];
    let mut rows = Vec::new();
    for h in 0..=4u32 {
        let (ball, map) = policy_ball(&g, &ann, 0, h);
        let mut members: Vec<&str> = map.originals().iter().map(|&v| names[v as usize]).collect();
        members.sort_unstable();
        rows.push(vec![
            h.to_string(),
            members.join(" "),
            ball.edge_count().to_string(),
        ]);
    }
    TableData {
        id: "fig15-policy-ball".into(),
        header: vec!["radius h".into(), "ball members".into(), "links".into()],
        rows,
        failures: Vec::new(),
    }
}

/// The RL half of Appendix E: expand the Figure 15 ASes into a toy
/// router overlay (one router per AS, chained through the AS structure)
/// and report router-level policy distances from A's router.
pub fn run_overlay(_ctx: &ExpCtx) -> TableData {
    let (asg, ann) = figure15_graph();
    // One border router per AS; router adjacency mirrors AS adjacency.
    let routers = Graph::from_edges(
        8,
        asg.edges().iter().map(|e| (e.a, e.b)).collect::<Vec<_>>(),
    );
    let router_as: Vec<u32> = (0..8).collect();
    let ov = RouterOverlay::new(&routers, &router_as, &asg, &ann);
    let d = ov.policy_router_distances(0);
    let names = ["A", "B", "C", "D", "E", "F", "G", "H"];
    let rows = (0..8usize)
        .map(|v| {
            vec![
                names[v].to_string(),
                if d[v] == u32::MAX {
                    "unreachable".into()
                } else {
                    d[v].to_string()
                },
            ]
        })
        .collect();
    TableData {
        id: "fig15-router-overlay".into(),
        header: vec!["router (AS)".into(), "policy distance from A".into()],
        rows,
        failures: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ball_memberships() {
        let t = run(&ExpCtx::default());
        // h=3: A B C D E H (F and G enter at 4).
        assert_eq!(t.rows[3][1], "A B C D E H");
        assert_eq!(t.rows[4][1], "A B C D E F G H");
        // h=3 includes 5 links, h=4 adds (E,F) and (E,G).
        assert_eq!(t.rows[3][2], "5");
        assert_eq!(t.rows[4][2], "7");
    }

    #[test]
    fn overlay_distances_match_as_policy() {
        let t = run_overlay(&ExpCtx::default());
        let get = |n: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == n)
                .map(|r| r[1].clone())
                .unwrap()
        };
        assert_eq!(get("B"), "1");
        assert_eq!(get("E"), "3"); // via C, D — the valley via B is blocked
        assert_eq!(get("F"), "4");
    }
}
