//! Appendix C (Figure 11): the parameter-space exploration table —
//! node counts and average degrees across the PLRG / Transit-Stub /
//! Tiers / Waxman parameter grid.
//!
//! §4.4's conclusion rests on this sweep: "for most parameter values the
//! results are in agreement with what we have presented here", with the
//! extreme regimes (exercised in `ablation-extremes`) as the exceptions.

use crate::ExpCtx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_core::report::TableData;
use topogen_core::zoo::Scale;
use topogen_generators::plrg::{plrg, PlrgParams};
use topogen_generators::tiers::{tiers, TiersParams};
use topogen_generators::transit_stub::{transit_stub, TransitStubParams};
use topogen_generators::waxman::{waxman, WaxmanParams};
use topogen_graph::components::largest_component;

/// Run the sweep. At `Scale::Small`/quick the node counts are divided by
/// 4 to keep the Waxman O(n²) generation and the metric-free table fast.
pub fn run(ctx: &ExpCtx) -> TableData {
    let div = if ctx.quick || ctx.scale == Scale::Small {
        4
    } else {
        1
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xF11);

    // --- PLRG: the appendix's α grid (paper avg degrees 2.79–4.61). ---
    for alpha in [2.550144, 2.358213, 2.246677, 2.253182] {
        let p = PlrgParams {
            n: 10_000 / div,
            alpha,
            max_degree: None,
        };
        let g = largest_component(&plrg(&p, &mut rng)).0;
        rows.push(vec![
            "PLRG".into(),
            format!("alpha={alpha:.6}"),
            g.node_count().to_string(),
            format!("{:.2}", g.average_degree()),
        ]);
    }

    // --- Transit-Stub: default plus the extra-edge ladder
    // (3 eTS eSS 6 0.55 6 0.32 9 0.248, paper avg degrees 2.78–3.99). ---
    let ladder = [
        (0usize, 0usize),
        (5, 10),
        (10, 20),
        (20, 40),
        (40, 80),
        (50, 100),
        (75, 200),
        (100, 400),
        (200, 800),
    ];
    for (ets, ess) in ladder {
        let p = TransitStubParams {
            extra_transit_stub_edges: ets,
            extra_stub_stub_edges: ess,
            ..TransitStubParams::paper_default()
        };
        let g = transit_stub(&p, &mut rng).graph;
        rows.push(vec![
            "TS".into(),
            format!("3 {ets} {ess} 6 0.55 6 0.32 9 0.248"),
            g.node_count().to_string(),
            format!("{:.2}", g.average_degree()),
        ]);
    }

    // --- Tiers: a recoverable slice of the appendix grid. ---
    let tiers_grid = [
        (20usize, 4usize, 200usize, 10usize, 4usize),
        (50, 10, 500, 40, 5),
        (100, 10, 1000, 50, 4),
    ];
    for (mans, lans, wan, man, lan) in tiers_grid {
        let p = TiersParams {
            mans_per_wan: (mans / div).max(1),
            lans_per_man: lans,
            wan_nodes: (wan / div).max(10),
            man_nodes: man,
            lan_nodes: lan,
            ..TiersParams::paper_default()
        };
        let g = tiers(&p, &mut rng);
        rows.push(vec![
            "Tiers".into(),
            format!(
                "1 {} {} {} {} {}",
                p.mans_per_wan, p.lans_per_man, p.wan_nodes, p.man_nodes, p.lan_nodes
            ),
            g.node_count().to_string(),
            format!("{:.2}", g.average_degree()),
        ]);
    }

    // --- Waxman: the appendix's (n, α, β) grid. ---
    let waxman_grid = [
        (1000usize, 0.050, 0.20),
        (5000, 0.005, 0.05),
        (5000, 0.005, 0.10),
        (5000, 0.005, 0.30),
        (5000, 0.005, 0.50),
        (5000, 0.010, 0.05),
        (5000, 0.010, 0.10),
        (5000, 0.010, 0.30),
    ];
    for (n, alpha, beta) in waxman_grid {
        let n = n / div;
        // Scale α to keep the expected degree of the scaled instance
        // comparable (degree ∝ α·n).
        let alpha = (alpha * div as f64).min(1.0);
        let g = largest_component(&waxman(&WaxmanParams { n, alpha, beta }, &mut rng)).0;
        rows.push(vec![
            "Waxman".into(),
            format!("n={n} alpha={alpha:.3} beta={beta:.2}"),
            g.node_count().to_string(),
            format!("{:.2}", g.average_degree()),
        ]);
    }

    TableData {
        id: "fig11-parameter-exploration".into(),
        header: vec![
            "Generator".into(),
            "Parameters".into(),
            "Nodes (LCC)".into(),
            "AvgDeg".into(),
        ],
        rows,
        failures: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_families() {
        let t = run(&ExpCtx::default());
        let count = |fam: &str| t.rows.iter().filter(|r| r[0] == fam).count();
        assert_eq!(count("PLRG"), 4);
        assert_eq!(count("TS"), 9);
        assert!(count("Tiers") >= 2);
        assert_eq!(count("Waxman"), 8);
    }

    #[test]
    fn ts_extra_edges_raise_degree() {
        let t = run(&ExpCtx::default());
        let ts: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[0] == "TS")
            .map(|r| r[3].parse().unwrap())
            .collect();
        // The paper's ladder: avg degree grows monotonically with the
        // extra-edge budget (2.78 → 3.99).
        assert!(*ts.last().unwrap() > ts.first().unwrap() + 0.5);
    }

    #[test]
    fn waxman_beta_raises_degree() {
        let t = run(&ExpCtx::default());
        let w: Vec<(String, f64)> = t
            .rows
            .iter()
            .filter(|r| r[0] == "Waxman")
            .map(|r| (r[1].clone(), r[3].parse().unwrap()))
            .collect();
        let b05 = w
            .iter()
            .find(|(p, _)| p.contains("alpha=0.020 beta=0.05"))
            .unwrap()
            .1;
        let b30 = w
            .iter()
            .find(|(p, _)| p.contains("alpha=0.020 beta=0.30"))
            .unwrap()
            .1;
        assert!(b30 > b05, "beta=0.30 ({b30}) must beat beta=0.05 ({b05})");
    }
}
