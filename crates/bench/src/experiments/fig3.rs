//! Figures 3 & 4 (link-value rank distributions) and Figure 14 (the same
//! for the degree-based variants). The two paper figures plot identical
//! data with log- and linear-scaled x axes, so one series set serves
//! both.

use crate::ExpCtx;
use topogen_core::hier::{hierarchy_report, HierOptions};
use topogen_core::report::{FigureData, Series};
use topogen_core::zoo::{build, BuiltTopology, TopologySpec};
use topogen_generators::plrg::PlrgParams;
use topogen_generators::tiers::TiersParams;
use topogen_generators::transit_stub::TransitStubParams;
use topogen_generators::waxman::WaxmanParams;
use topogen_hierarchy::linkvalue::normalized_rank_distribution;

/// Link-value-experiment instances: smaller than the Figure 1 zoo
/// because traversal sets need all-pairs analysis (the paper likewise
/// fell back to the RL core, footnote 29). At `quick` ≈ 300–500 nodes,
/// thorough ≈ 1000+.
pub fn linkvalue_zoo(ctx: &ExpCtx) -> Vec<TopologySpec> {
    let f: usize = if ctx.quick { 1 } else { 3 };
    vec![
        TopologySpec::Tree {
            k: 3,
            depth: 4 + (f > 1) as usize,
        },
        TopologySpec::Mesh { side: 16 * f },
        TopologySpec::Random {
            n: 450 * f,
            p: 0.009 / f as f64,
        },
        TopologySpec::Waxman(WaxmanParams {
            n: 450 * f,
            alpha: 0.05 / f as f64,
            beta: 0.3,
        }),
        TopologySpec::TransitStub(TransitStubParams {
            transit_domains: 3 * f,
            stubs_per_transit_node: 2,
            stub_nodes_per_domain: 6,
            ..TransitStubParams::paper_default()
        }),
        TopologySpec::Tiers(TiersParams {
            mans_per_wan: 6 * f,
            lans_per_man: 4,
            wan_nodes: 150 * f,
            man_nodes: 12,
            lan_nodes: 4,
            ..TiersParams::paper_default()
        }),
        TopologySpec::Plrg(PlrgParams {
            n: 500 * f,
            alpha: 2.246,
            max_degree: None,
        }),
        TopologySpec::MeasuredAs,
    ]
}

fn rank_series(name: &str, values: &[f64]) -> Series {
    let dist = normalized_rank_distribution(values);
    let x: Vec<f64> = dist.iter().map(|p| p.normalized_rank).collect();
    let y: Vec<f64> = dist.iter().map(|p| p.value).collect();
    Series::new(name, &x, &y)
}

/// Figures 3/4: rank distributions for the zoo, with the AS policy
/// variant.
pub fn run(ctx: &ExpCtx) -> FigureData {
    let mut series = Vec::new();
    for spec in linkvalue_zoo(ctx) {
        let t = build(&spec, ctx.scale, ctx.seed);
        let r = hierarchy_report(&t, &HierOptions::default());
        series.push(rank_series(&r.name, &r.values));
        if t.annotations.is_some() {
            let rp = hierarchy_report(
                &t,
                &HierOptions {
                    policy: true,
                    core_threshold: 3000,
                },
            );
            series.push(rank_series(&format!("{}(Policy)", t.name), &rp.values));
        }
    }
    FigureData {
        id: "fig3-linkvalue-rank".into(),
        x_label: "normalized link rank".into(),
        y_label: "normalized link value".into(),
        series,
        failures: Vec::new(),
    }
}

/// Figure 14: the same distributions for the degree-based variants
/// (B-A, Brite, BT, Inet, PLRG), which the paper shows all fall in the
/// moderate band of the measured networks.
pub fn run_variants(ctx: &ExpCtx) -> FigureData {
    let n = if ctx.quick { 500 } else { 1500 };
    let mut specs = vec![
        TopologySpec::Ba(topogen_generators::ba::BaParams { n, m: 2 }),
        TopologySpec::Brite(topogen_generators::brite::BriteParams::paper_default(n)),
        TopologySpec::Glp(topogen_generators::glp::GlpParams::paper_as_fit(n)),
        TopologySpec::Inet(topogen_generators::inet::InetParams::paper_default(n)),
        TopologySpec::Plrg(PlrgParams {
            n,
            alpha: 2.246,
            max_degree: None,
        }),
    ];
    specs.push(TopologySpec::MeasuredAs);
    let mut series = Vec::new();
    for spec in specs {
        let t: BuiltTopology = build(&spec, ctx.scale, ctx.seed);
        let r = hierarchy_report(&t, &HierOptions::default());
        series.push(rank_series(&r.name, &r.values));
    }
    FigureData {
        id: "fig14-linkvalue-variants".into(),
        x_label: "normalized link rank".into(),
        y_label: "normalized link value".into(),
        series,
        failures: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_eight_entries() {
        assert_eq!(linkvalue_zoo(&ExpCtx::default()).len(), 8);
    }
}
