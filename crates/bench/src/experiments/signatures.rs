//! The two classification tables: §3.2.1/§4.4's Low/High signature table
//! and §5.1's strict/moderate/loose hierarchy table — the paper's two
//! headline results.

use crate::experiments::catching;
use crate::experiments::fig3::linkvalue_zoo;
use crate::ExpCtx;
use topogen_core::hier::{hierarchy_report_timed, HierOptions};
use topogen_core::report::{TableData, TimingReport};
use topogen_core::suite::{run_suite, run_suite_policy, run_suite_rl_policy, SuiteCis};
use topogen_core::zoo::{build, Scale, TopologySpec};

/// The paper's expected signature per topology (§4.4's table).
pub fn paper_signature(name: &str) -> Option<&'static str> {
    Some(match name {
        "Mesh" => "LHH",
        "Random" => "HHH",
        "Tree" => "HLL",
        "Complete" => "HHL",
        "Linear" => "LLL",
        "AS" | "RL" | "PLRG" => "HHL",
        "AS(Policy)" | "RL(Policy)" => "HHL",
        "Tiers" => "LHL",
        "TS" => "HLL",
        "Waxman" => "HHH",
        _ => return None,
    })
}

/// Bootstrap 95% half-width cells for a sampled-tier row ("-" when the
/// suite ran without bootstrap resampling).
fn ci_cells(cis: Option<&SuiteCis>) -> [String; 3] {
    match cis {
        Some(c) => [
            SuiteCis::pm(c.expansion_rate),
            SuiteCis::pm(c.resilience_peak),
            SuiteCis::pm(c.distortion_last),
        ],
        None => ["-".to_string(), "-".to_string(), "-".to_string()],
    }
}

/// The §4.4 signature table over the full zoo (plus Complete and Linear
/// for calibration), with the paper's expected column and a match flag.
pub fn run_signature_table(ctx: &ExpCtx) -> TableData {
    run_signature_table_timed(ctx).0
}

/// [`run_signature_table`] plus the merged engine instrumentation of
/// every suite run it performed (what `repro tab-signature --timings`
/// prints and archives as `BENCH_tab-signature.json`).
pub fn run_signature_table_timed(ctx: &ExpCtx) -> (TableData, TimingReport) {
    let params = ctx.suite_params();
    // At the sampled-center tiers the curves are estimates over a
    // center subsample, so the table records the population and sample
    // sizes next to each signature, plus bootstrap 95% half-widths for
    // the three classified statistics; Small/Paper keep the historical
    // four-column shape byte-identical.
    let sampled = matches!(ctx.scale, Scale::Large | Scale::Xl);
    let mut timings = TimingReport::default();
    let mut specs = TopologySpec::figure1_zoo(ctx.scale);
    specs.push(TopologySpec::Complete { n: 150 });
    specs.push(TopologySpec::Linear { n: 600 });
    // Extension: the N-level hierarchy from Zegura et al.'s original
    // comparison — expected to behave like the structural family.
    specs.push(TopologySpec::NLevel(
        topogen_generators::nlevel::NLevelParams::three_level_1000(),
    ));
    let mut rows = Vec::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    for spec in specs {
        // Per-topology isolation: a failed build or suite degrades this
        // spec's rows instead of aborting the table.
        let outcome = catching(|| {
            let t = build(&spec, ctx.scale, ctx.seed);
            let r = run_suite(&t, &params);
            (t, r)
        });
        let (t, r) = match outcome {
            Ok(tr) => tr,
            Err(reason) => {
                failures.push((spec.name(), reason));
                continue;
            }
        };
        timings.merge(&r.timings);
        let n = t.graph.node_count();
        let centers = params.centers.min(n);
        let sig = r.signature.to_string();
        let expect = paper_signature(&t.name).unwrap_or("-");
        let ok = if expect == "-" || sig == expect {
            "yes"
        } else {
            "NO"
        };
        let mut row = vec![
            t.name.clone(),
            sig.clone(),
            expect.to_string(),
            ok.to_string(),
        ];
        if sampled {
            row.push(n.to_string());
            row.push(centers.to_string());
            row.extend(ci_cells(r.cis.as_ref()));
        }
        rows.push(row);
        if t.annotations.is_some() {
            let rp = run_suite_policy(&t, &params);
            timings.merge(&rp.timings);
            let psig = rp.signature.to_string();
            let pname = format!("{}(Policy)", t.name);
            let pexpect = paper_signature(&pname).unwrap_or("-");
            let pok = if pexpect == "-" || psig == pexpect {
                "yes"
            } else {
                "NO"
            };
            let mut row = vec![pname, psig, pexpect.to_string(), pok.to_string()];
            if sampled {
                row.push(n.to_string());
                row.push(centers.to_string());
                row.extend(ci_cells(rp.cis.as_ref()));
            }
            rows.push(row);
        }
        if t.as_overlay.is_some() {
            let rp = run_suite_rl_policy(&t, &params);
            timings.merge(&rp.timings);
            let psig = rp.signature.to_string();
            let pname = format!("{}(Policy)", t.name);
            let pexpect = paper_signature(&pname).unwrap_or("-");
            let pok = if pexpect == "-" || psig == pexpect {
                "yes"
            } else {
                "NO"
            };
            let mut row = vec![pname, psig, pexpect.to_string(), pok.to_string()];
            if sampled {
                row.push(n.to_string());
                row.push(centers.to_string());
                row.extend(ci_cells(rp.cis.as_ref()));
            }
            rows.push(row);
        }
    }
    let mut header = vec![
        "Topology".to_string(),
        "Signature".to_string(),
        "Paper".to_string(),
        "Match".to_string(),
    ];
    if sampled {
        header.push("Nodes".to_string());
        header.push("Centers".to_string());
        header.push("Exp±".to_string());
        header.push("Res±".to_string());
        header.push("Dist±".to_string());
    }
    let mut table = TableData::new("tab-signature", header, rows);
    for (name, reason) in failures {
        table.push_failed_row(name, reason);
    }
    (table, timings)
}

/// The paper's expected hierarchy class per topology (§5.1's table).
pub fn paper_hierarchy(name: &str) -> Option<&'static str> {
    Some(match name {
        "Mesh" | "Random" | "Waxman" => "loose",
        "Tree" | "Tiers" | "TS" => "strict",
        "AS" | "RL" | "PLRG" | "AS(Policy)" | "RL(Policy)" => "moderate",
        _ => return None,
    })
}

/// The §5.1 strict/moderate/loose table (with the AS policy variant).
pub fn run_hierarchy_table(ctx: &ExpCtx) -> TableData {
    run_hierarchy_table_timed(ctx).0
}

/// [`run_hierarchy_table`] plus the merged link-value engine
/// instrumentation of every hierarchy analysis it performed (what
/// `repro tab-hierarchy --timings` prints and archives as
/// `BENCH_tab-hierarchy.json`): per-stage wall times, DAG states
/// visited, pairs accumulated, arena bytes.
pub fn run_hierarchy_table_timed(ctx: &ExpCtx) -> (TableData, TimingReport) {
    let mut timings = TimingReport::default();
    let mut rows = Vec::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    for spec in linkvalue_zoo(ctx) {
        let outcome = catching(|| {
            let t = build(&spec, ctx.scale, ctx.seed);
            let (r, rt) = hierarchy_report_timed(&t, &HierOptions::default());
            (t, r, rt)
        });
        let (t, r, rt) = match outcome {
            Ok(trt) => trt,
            Err(reason) => {
                failures.push((spec.name(), reason));
                continue;
            }
        };
        timings.merge(&rt);
        let expect = paper_hierarchy(&t.name).unwrap_or("-");
        let ok = if expect == "-" || r.class == expect {
            "yes"
        } else {
            "NO"
        };
        rows.push(vec![
            r.name.clone(),
            r.class.clone(),
            format!("{:.4}", r.max),
            expect.to_string(),
            ok.to_string(),
        ]);
        if t.annotations.is_some() {
            let (rp, rpt) = hierarchy_report_timed(
                &t,
                &HierOptions {
                    policy: true,
                    core_threshold: 3000,
                },
            );
            timings.merge(&rpt);
            let pname = format!("{}(Policy)", t.name);
            let pexpect = paper_hierarchy(&pname).unwrap_or("-");
            let pok = if pexpect == "-" || rp.class == pexpect {
                "yes"
            } else {
                "NO"
            };
            rows.push(vec![
                pname,
                rp.class.clone(),
                format!("{:.4}", rp.max),
                pexpect.to_string(),
                pok.to_string(),
            ]);
        }
    }
    let mut table = TableData::new(
        "tab-hierarchy",
        vec![
            "Topology".into(),
            "Class".into(),
            "MaxValue".into(),
            "Paper".into(),
            "Match".into(),
        ],
        rows,
    );
    for (name, reason) in failures {
        table.push_failed_row(name, reason);
    }
    (table, timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_tables_complete() {
        assert_eq!(paper_signature("PLRG"), Some("HHL"));
        assert_eq!(paper_signature("nonsense"), None);
        assert_eq!(paper_hierarchy("Waxman"), Some("loose"));
        assert_eq!(paper_hierarchy("nonsense"), None);
    }
}
