//! Robustness experiments for the paper's methodological caveats.
//!
//! §3.1.1: "We have computed our topology metrics for at least three
//! different snapshots of both topologies ... the qualitative
//! conclusions we draw in this paper hold across these different
//! snapshots", and "Both these topologies may be incomplete ... We hope
//! that the qualitative conclusions ... will be fairly robust to minor
//! methodological improvements in topology collection."
//!
//! We test both: (a) *snapshots* — regenerate the synthetic Internet
//! with different seeds and sizes and confirm the signature and
//! hierarchy class are stable; (b) *incompleteness* — observe the AS
//! graph from few vantage points (losing peripheral peering links, as
//! real BGP collection does) or drop random edges, and confirm the
//! classifications survive.

use crate::ExpCtx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_core::hier::{hierarchy_report, HierOptions};
use topogen_core::report::TableData;
use topogen_core::suite::run_suite;
use topogen_core::zoo::{build, BuiltTopology, TopologySpec};
use topogen_graph::components::largest_component;
use topogen_measured::as_graph::{internet_as, InternetAsParams};
use topogen_measured::observe::{observed_from_top_vantages, random_edge_loss};

fn classify_graph(ctx: &ExpCtx, name: &str, g: topogen_graph::Graph) -> Vec<String> {
    let t = BuiltTopology {
        name: name.into(),
        graph: g,
        annotations: None,
        router_as: None,
        as_overlay: None,
        spec: TopologySpec::MeasuredAs,
    };
    let sig = run_suite(&t, &ctx.suite_params()).signature.to_string();
    let hier = if t.graph.node_count() <= 1500 {
        hierarchy_report(&t, &HierOptions::default()).class
    } else {
        "-".into()
    };
    vec![
        name.to_string(),
        t.graph.node_count().to_string(),
        format!("{:.2}", t.graph.average_degree()),
        sig,
        hier,
    ]
}

/// Snapshot stability: the AS model at several seeds and sizes.
pub fn run_snapshots(ctx: &ExpCtx) -> TableData {
    let mut rows = Vec::new();
    for (label, n, seed) in [
        ("AS snapshot A", 1100usize, ctx.seed),
        ("AS snapshot B", 1100, ctx.seed ^ 0xB),
        ("AS snapshot C", 1100, ctx.seed ^ 0xC),
        ("AS half-size", 550, ctx.seed),
        ("AS double-size", 2200, ctx.seed),
    ] {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = internet_as(
            &InternetAsParams {
                n,
                ..InternetAsParams::default_scaled()
            },
            &mut rng,
        );
        rows.push(classify_graph(ctx, label, m.graph));
    }
    TableData {
        id: "robustness-snapshots".into(),
        header: vec![
            "Snapshot".into(),
            "Nodes".into(),
            "AvgDeg".into(),
            "Signature".into(),
            "Hierarchy".into(),
        ],
        rows,
        failures: Vec::new(),
    }
}

/// Incompleteness: the AS graph as seen from k vantages, and under
/// random edge loss.
pub fn run_incompleteness(ctx: &ExpCtx) -> TableData {
    let t = build(&TopologySpec::MeasuredAs, ctx.scale, ctx.seed);
    let ann = t.annotations.as_ref().expect("AS annotations");
    let mut rows = Vec::new();
    rows.push(classify_graph(ctx, "AS (complete)", t.graph.clone()));
    for k in [1usize, 3, 10] {
        let o = observed_from_top_vantages(&t.graph, ann, k);
        let (lcc, _) = largest_component(&o);
        rows.push(classify_graph(
            ctx,
            &format!("AS seen from {k} vantage(s)"),
            lcc,
        ));
    }
    // Router-level incompleteness: the RL graph as a traceroute mapper
    // with k sources would see it (the paper's RL collection method).
    let rl = build(&TopologySpec::MeasuredRl, ctx.scale, ctx.seed);
    rows.push(classify_graph(ctx, "RL (complete)", rl.graph.clone()));
    for k in [3usize, 10] {
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ (0x7 + k as u64));
        let o = topogen_measured::observe::traceroute_observed_sampled(&rl.graph, k, 1, &mut rng);
        let (lcc, _) = largest_component(&o);
        rows.push(classify_graph(
            ctx,
            &format!("RL seen by {k} traceroute sources"),
            lcc,
        ));
    }
    for loss in [0.05f64, 0.15] {
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x1055);
        let lossy = random_edge_loss(&t.graph, loss, &mut rng);
        let (lcc, _) = largest_component(&lossy);
        rows.push(classify_graph(
            ctx,
            &format!("AS with {:.0}% random edge loss", 100.0 * loss),
            lcc,
        ));
    }
    TableData {
        id: "robustness-incompleteness".into(),
        header: vec![
            "View".into(),
            "Nodes".into(),
            "AvgDeg".into(),
            "Signature".into(),
            "Hierarchy".into(),
        ],
        rows,
        failures: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_share_signature() {
        let t = run_snapshots(&ExpCtx::default());
        let sigs: std::collections::HashSet<&String> = t.rows.iter().map(|r| &r[3]).collect();
        assert_eq!(sigs.len(), 1, "snapshot signatures diverged: {t:?}");
        assert!(t.rows.iter().all(|r| r[3] == "HHL"));
    }
}
