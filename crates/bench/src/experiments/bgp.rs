//! BGP-vs-policy comparison: how good is the paper's shortest-valley-free
//! approximation of real routing?
//!
//! The paper's policy model (§3.2.1, after \[42\]) takes the *shortest*
//! valley-free path; real BGP under Gao–Rexford preferences (customer >
//! peer > provider, then shortest) can pick longer ones. This experiment
//! computes, over the synthetic AS graph:
//!
//! * mean plain shortest-path length,
//! * mean shortest valley-free length (the paper's model),
//! * mean Gao–Rexford selected length (the `bgp_sim` substrate),
//!
//! and the inflation between each pair — quantifying how much of the
//! total policy inflation the paper's approximation captures.

use crate::ExpCtx;
use topogen_core::report::TableData;
use topogen_core::zoo::{build, TopologySpec};
use topogen_graph::{bfs, NodeId, UNREACHED};
use topogen_policy::bgp_sim::routes_to;
use topogen_policy::valley::policy_distances;

/// Run the comparison over all (or sampled) destinations.
pub fn run(ctx: &ExpCtx) -> TableData {
    let t = build(&TopologySpec::MeasuredAs, ctx.scale, ctx.seed);
    let g = &t.graph;
    let ann = t.annotations.as_ref().expect("AS annotations");
    let n = g.node_count();
    let step = if ctx.quick { (n / 120).max(1) } else { 1 };

    let mut sum_plain = 0u64;
    let mut sum_vf = 0u64;
    let mut sum_bgp = 0u64;
    let mut pairs = 0u64;
    let mut vf_inflated = 0u64;
    let mut bgp_over_vf = 0u64;
    let mut mismatched_reach = 0u64;
    for d in (0..n as NodeId).step_by(step) {
        let plain = bfs::distances(g, d);
        let vf = policy_distances(g, ann, d);
        let bgp = routes_to(g, ann, d);
        for u in 0..n {
            if u == d as usize {
                continue;
            }
            if vf[u] == UNREACHED || bgp.len[u] == UNREACHED {
                if (vf[u] == UNREACHED) != (bgp.len[u] == UNREACHED) {
                    mismatched_reach += 1;
                }
                continue;
            }
            pairs += 1;
            sum_plain += plain[u] as u64;
            sum_vf += vf[u] as u64;
            sum_bgp += bgp.len[u] as u64;
            if vf[u] > plain[u] {
                vf_inflated += 1;
            }
            if bgp.len[u] > vf[u] {
                bgp_over_vf += 1;
            }
        }
    }
    let p = pairs.max(1) as f64;
    let rows = vec![
        vec!["pairs sampled".into(), pairs.to_string()],
        vec![
            "mean plain shortest".into(),
            format!("{:.3}", sum_plain as f64 / p),
        ],
        vec![
            "mean valley-free shortest (paper's model)".into(),
            format!("{:.3}", sum_vf as f64 / p),
        ],
        vec![
            "mean BGP selected (Gao-Rexford)".into(),
            format!("{:.3}", sum_bgp as f64 / p),
        ],
        vec![
            "pairs inflated by valley-freeness".into(),
            format!("{:.1}%", 100.0 * vf_inflated as f64 / p),
        ],
        vec![
            "pairs further inflated by preferences".into(),
            format!("{:.1}%", 100.0 * bgp_over_vf as f64 / p),
        ],
        vec![
            "reachability mismatches (must be 0)".into(),
            mismatched_reach.to_string(),
        ],
    ];
    TableData {
        id: "bgp-vs-policy".into(),
        header: vec!["Quantity".into(), "Value".into()],
        rows,
        failures: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_agrees_and_ordering_holds() {
        let t = run(&ExpCtx::default());
        let get = |name: &str| -> String {
            t.rows
                .iter()
                .find(|r| r[0].starts_with(name))
                .map(|r| r[1].clone())
                .unwrap()
        };
        assert_eq!(get("reachability mismatches"), "0");
        let plain: f64 = get("mean plain").parse().unwrap();
        let vf: f64 = get("mean valley-free").parse().unwrap();
        let bgp: f64 = get("mean BGP").parse().unwrap();
        assert!(
            vf >= plain - 1e-9,
            "valley-free below plain: {vf} < {plain}"
        );
        assert!(bgp >= vf - 1e-9, "BGP below valley-free: {bgp} < {vf}");
    }
}
