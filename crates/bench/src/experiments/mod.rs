//! One module per reproduced table/figure.

pub mod ablations;
pub mod bgp;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig15;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod robustness;
pub mod signatures;
pub mod tab1;

use topogen_core::zoo::{build, BuiltTopology, Scale, TopologySpec};

/// Build the Figure 1 zoo (shared by most experiments). Cached per call
/// site; building is seconds-scale at `Scale::Small`.
pub fn build_zoo(scale: Scale, seed: u64) -> Vec<BuiltTopology> {
    TopologySpec::figure1_zoo(scale)
        .iter()
        .map(|s| build(s, scale, seed))
        .collect()
}

/// The canonical / measured / generated grouping the paper's figures use.
pub fn group_of(name: &str) -> &'static str {
    match name {
        "Tree" | "Mesh" | "Random" | "Complete" | "Linear" => "canonical",
        "AS" | "RL" => "measured",
        "B-A" | "Brite" | "BT" | "Inet" | "AB" => "degree-based",
        _ => "generated",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups() {
        assert_eq!(group_of("Tree"), "canonical");
        assert_eq!(group_of("AS"), "measured");
        assert_eq!(group_of("PLRG"), "generated");
        assert_eq!(group_of("BT"), "degree-based");
    }
}
