//! One module per reproduced table/figure.

pub mod ablations;
pub mod bgp;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig15;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod robustness;
pub mod signatures;
pub mod tab1;

use topogen_core::zoo::{build, BuiltTopology, Scale, TopologySpec};
use topogen_par::{cancel, panic_message};

/// Build the Figure 1 zoo (shared by most experiments). Cached per call
/// site; building is seconds-scale at `Scale::Small`.
pub fn build_zoo(scale: Scale, seed: u64) -> Vec<BuiltTopology> {
    TopologySpec::figure1_zoo(scale)
        .iter()
        .map(|s| build(s, scale, seed))
        .collect()
}

/// Run one component of an experiment (one topology's build or suite)
/// with panic isolation: a panic becomes `Err(redacted message)` so the
/// rest of the table/figure still renders. Deadline cancellations are
/// *not* absorbed — they unwind the whole unit so timeouts stay prompt.
pub fn catching<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            if cancel::is_cancelled_payload(payload.as_ref()) {
                std::panic::resume_unwind(payload);
            }
            Err(panic_message(payload.as_ref()))
        }
    }
}

/// The Figure 1 zoo with per-topology fault isolation: topologies that
/// fail to build are reported as `(name, reason)` instead of aborting
/// the whole experiment (the degraded entries render as footnotes).
pub struct ZooBuild {
    /// The topologies that built successfully, in zoo order.
    pub built: Vec<BuiltTopology>,
    /// `(topology name, redacted reason)` for each failed build.
    pub failures: Vec<(String, String)>,
}

/// The common shape of the zoo figures (fig6–fig10): one series per
/// topology, with per-topology panic isolation at both the build and
/// the measure stage. `f` returns `None` to skip a topology (the
/// existing RL-at-quick-settings escape hatches); panics inside `f`
/// become footnoted failures instead of aborting the figure.
pub fn zoo_figure_degraded(
    scale: Scale,
    seed: u64,
    id: impl Into<String>,
    x_label: &str,
    y_label: &str,
    mut f: impl FnMut(&BuiltTopology) -> Option<topogen_core::report::Series>,
) -> topogen_core::report::FigureData {
    let zoo = build_zoo_degraded(scale, seed);
    let mut fig = topogen_core::report::FigureData::new(id, x_label, y_label, Vec::new());
    for (name, reason) in zoo.failures {
        fig.note_failure(name, reason);
    }
    for t in &zoo.built {
        match catching(|| f(t)) {
            Ok(Some(s)) => fig.series.push(s),
            Ok(None) => {}
            Err(reason) => fig.note_failure(t.name.clone(), reason),
        }
    }
    fig
}

/// [`build_zoo`] with per-topology panic isolation.
pub fn build_zoo_degraded(scale: Scale, seed: u64) -> ZooBuild {
    let mut built = Vec::new();
    let mut failures = Vec::new();
    for s in &TopologySpec::figure1_zoo(scale) {
        match catching(|| build(s, scale, seed)) {
            Ok(t) => built.push(t),
            Err(reason) => failures.push((s.name(), reason)),
        }
    }
    ZooBuild { built, failures }
}

/// The canonical / measured / generated grouping the paper's figures use.
pub fn group_of(name: &str) -> &'static str {
    match name {
        "Tree" | "Mesh" | "Random" | "Complete" | "Linear" => "canonical",
        "AS" | "RL" => "measured",
        "B-A" | "Brite" | "BT" | "Inet" | "AB" => "degree-based",
        _ => "generated",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups() {
        assert_eq!(group_of("Tree"), "canonical");
        assert_eq!(group_of("AS"), "measured");
        assert_eq!(group_of("PLRG"), "generated");
        assert_eq!(group_of("BT"), "degree-based");
    }
}
