//! Appendix B, Figure 7: (a–c) eigenvalue vs rank, (d–f) normalized
//! eccentricity distributions.

use crate::experiments::zoo_figure_degraded;
use crate::ExpCtx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_core::report::{FigureData, Series};
use topogen_metrics::eccentricity::{eccentricity_histogram, eccentricity_sample};
use topogen_metrics::spectrum::eigenvalue_spectrum;

/// Figure 7(a–c): the top `k` adjacency eigenvalues against rank. The
/// paper skipped the RL graph ("too large"); Lanczos handles our scaled
/// substitute, but at quick settings we skip it too for time parity.
pub fn run_eigen(ctx: &ExpCtx) -> FigureData {
    let k = if ctx.quick { 20 } else { 60 };
    zoo_figure_degraded(
        ctx.scale,
        ctx.seed,
        "fig7-eigenvalues",
        "rank",
        "eigenvalue",
        |t| {
            if ctx.quick && t.name == "RL" {
                return None;
            }
            let spec = eigenvalue_spectrum(&t.graph, k, ctx.seed ^ 0xE16);
            let pts: Vec<(f64, f64)> = spec
                .iter()
                .enumerate()
                .filter(|(_, &v)| v > 0.0)
                .map(|(i, &v)| ((i + 1) as f64, v))
                .collect();
            let x: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pts.iter().map(|p| p.1).collect();
            Some(Series::new(&t.name, &x, &y))
        },
    )
}

/// Figure 7(d–f): histogram of node eccentricities normalized by the
/// mean — the "node diameter distribution" of Zegura et al.
pub fn run_diameter(ctx: &ExpCtx) -> FigureData {
    let samples = if ctx.quick { 150 } else { 1000 };
    let bins = 11;
    zoo_figure_degraded(
        ctx.scale,
        ctx.seed,
        "fig7-eccentricity",
        "normalized eccentricity",
        "fraction of nodes",
        |t| {
            let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xD1A);
            let eccs = eccentricity_sample(&t.graph, samples, &mut rng);
            let hist = eccentricity_histogram(&eccs, bins);
            let x: Vec<f64> = hist.iter().map(|b| b.normalized).collect();
            let y: Vec<f64> = hist.iter().map(|b| b.fraction).collect();
            Some(Series::new(&t.name, &x, &y))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_series_descending() {
        let f = run_eigen(&ExpCtx::default());
        assert!(f.series.len() >= 8);
        for s in &f.series {
            assert!(
                s.y.windows(2).all(|w| w[0] >= w[1] - 1e-9),
                "{} spectrum not sorted",
                s.label
            );
        }
    }

    #[test]
    fn eccentricity_histograms_normalized() {
        let f = run_diameter(&ExpCtx::default());
        for s in &f.series {
            let total: f64 = s.y.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: Σ = {total}", s.label);
        }
    }
}
