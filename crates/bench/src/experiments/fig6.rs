//! Appendix A, Figure 6: complementary cumulative degree distributions
//! for the canonical, measured and generated networks — "only the PLRG
//! qualitatively captures the degree distribution of the measured
//! networks".

use crate::experiments::{build_zoo, zoo_figure_degraded};
use crate::ExpCtx;
use topogen_core::report::{FigureData, Series};
use topogen_generators::degseq::degree_ccdf;

/// All zoo CCDFs as one figure.
pub fn run(ctx: &ExpCtx) -> FigureData {
    zoo_figure_degraded(
        ctx.scale,
        ctx.seed,
        "fig6-degree-ccdf",
        "degree",
        "complementary cumulative frequency",
        |t| {
            let c = degree_ccdf(&t.graph);
            let x: Vec<f64> = c.iter().map(|p| p.degree as f64).collect();
            let y: Vec<f64> = c.iter().map(|p| p.fraction).collect();
            Some(Series::new(&t.name, &x, &y))
        },
    )
}

/// The qualitative claim of Appendix A as a check: the heavy-tail span
/// (max degree / mean degree) of PLRG and the measured graphs is an
/// order of magnitude beyond the structural generators'.
pub fn heavy_tail_ordering(ctx: &ExpCtx) -> Vec<(String, f64)> {
    let zoo = build_zoo(ctx.scale, ctx.seed);
    zoo.iter()
        .map(|t| {
            (
                t.name.clone(),
                topogen_generators::degseq::max_to_mean_degree_ratio(&t.graph),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccdf_series_start_at_one() {
        let f = run(&ExpCtx::default());
        assert_eq!(f.series.len(), 9);
        for s in &f.series {
            assert!(
                (s.y[0] - 1.0).abs() < 1e-9,
                "{} CCDF starts at {}",
                s.label,
                s.y[0]
            );
        }
    }

    #[test]
    fn plrg_and_measured_heavy_tailed_structural_not() {
        let ratios = heavy_tail_ordering(&ExpCtx::default());
        let get = |n: &str| ratios.iter().find(|(name, _)| name == n).unwrap().1;
        assert!(get("PLRG") > 10.0);
        assert!(get("AS") > 10.0);
        assert!(get("RL") > 10.0);
        assert!(get("TS") < 5.0);
        assert!(get("Mesh") < 2.0);
        assert!(get("Tree") < 3.0);
        // Tiers' WAN/MAN routers have bounded nearest-neighbor degree.
        assert!(get("Tiers") < 10.0);
    }
}
