//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale small|paper|large|xl] [--seed N] [--thorough] [--json DIR]
//!                    [--timings] [--kernel auto|scalar|bitset] [--mem-budget BYTES]
//!                    [--keep-going] [--resume] [--deadline SECS] [--retries N]
//!                    [--strict-checks] [--cache[=DIR]] [--trace[=DIR]]
//!
//! --scale large (~170k-node structural/degree-based graphs) and xl
//! (~1M nodes where the generators allow) run the sampled-center
//! tiers: metric curves are estimated over a seeded center subsample
//! and the tables record population + sample sizes per row, plus
//! bootstrap 95% half-width columns for the classified statistics.
//!
//! --mem-budget BYTES (binary K/M/G suffixes accepted) caps the edge
//! buffer used while building topologies: streaming-capable generators
//! emit through a bounded builder that spills sorted runs to out/ and
//! k-way merges them into the final CSR. The built graph is identical
//! to the in-memory path; --timings reports the peak buffer bytes and
//! spill-run count. At the sampled tiers suite jobs also run in
//! store-checkpointed batches, so a killed run restarted with --resume
//! and --cache serves completed batches from the store.
//!
//! --kernel forces the BFS kernel for metric plans: `scalar` is the
//! per-center queue BFS, `bitset` the batched word-parallel kernels,
//! `auto` (default) picks per plan from graph size and job count.
//! Outputs are bit-identical across kernels; only the counters differ.
//!
//! --timings prints the parallel engines' instrumentation — shared-ball
//! counters (traversals, cache hits) for the metric suite, hierarchy
//! counters (DAG states, pairs accumulated, arena bytes) for the
//! link-value stage, per-phase wall times for both, store-cache traffic
//! when a cache is active — and with --json also archives it as
//! BENCH_<id>.json.
//!
//! --trace[=DIR] records a structured span log — suite units and retry
//! attempts, per-center metric-engine stages, hierarchy traversal/cover
//! stages, store get/put/gc — to an append-only JSONL file
//! DIR/<cmd>-seed<seed>.jsonl (default DIR: out/trace). Timestamps live
//! only in the trace file: archived tables/figures stay byte-identical
//! with tracing on or off. With --timings, span rollups (count + summed
//! wall time per span name) are folded into the timing output and
//! BENCH_<id>.json. `repro trace export [PATH]` converts a JSONL log
//! (default: the newest in the trace dir) to Chrome trace-event JSON
//! next to it (.trace.json), loadable in chrome://tracing or Perfetto.
//!
//! --cache[=DIR] caches topologies and derived artifacts (metric
//! curves, link values) in a content-addressed store (default
//! out/store); warm runs reuse them and produce byte-identical outputs.
//! Disabled automatically under TOPOGEN_FAULTS so injected failures
//! never poison the store.
//!
//! Every experiment runs as an isolated unit (panics are caught and
//! recorded, not fatal). For `all`, outcomes land in the run ledger
//! `out/run-ledger.json`:
//!   --keep-going        run the remaining units past a failure
//!   --resume            skip units the ledger already shows completed
//!   --deadline SECS     per-unit wall-clock deadline (cooperative)
//!   --retries N         reseeded retries after a failed attempt (default 1)
//!   --strict-checks     fig2 [FAIL] qualitative checks fail the unit
//!
//! Exit codes: 0 everything completed, 1 failures or timeouts,
//! 2 usage error, 3 a measured-graph load error.
//!
//! Fault injection (tests/CI): TOPOGEN_FAULTS=site[@scope]:kind:rate:seed
//! with sites build/metric/hier, kinds panic/delay[MS].
//!
//! experiments:
//!   tab1                 Figure 1: the topology table
//!   fig2                 Figure 2: expansion/resilience/distortion, all panels
//!   fig3|fig4            Figures 3/4: link-value rank distributions
//!   fig5                 Figure 5: link-value ↔ degree correlations
//!   fig6                 Appendix A: degree CCDFs
//!   fig7                 Appendix B: eigenvalues + eccentricity
//!   fig8                 Appendix B: vertex cover + biconnectivity
//!   fig9                 Appendix B: attack + error tolerance
//!   fig10                clustering coefficient curves + global table
//!   fig11                Appendix C: parameter exploration
//!   fig12                Appendix D: degree-based variants
//!   fig13                Appendix D: Modified B-A/Brite + deterministic wiring
//!   fig14                Appendix D.2: variant link values
//!   fig15                Appendix E: policy-ball example + router overlay
//!   tab-signature        §4.4: the L/H signature table
//!   tab-hierarchy        §5.1: the strict/moderate/loose table
//!   bgp-vs-policy        Gao–Rexford BGP vs the paper's shortest-valley-free model
//!   robustness-snapshots     §3.1.1: stability across snapshots/sizes
//!   robustness-incompleteness §3.1.1: vantage/loss incompleteness
//!   ablation-ts          footnote 17: TS redundancy trade-off
//!   ablation-extremes    §4.4: extreme parameter regimes
//!   ablation-distortion  spanning-tree local-search quality
//!   load-measured PATH   load a measured graph (text edge list or
//!                        binary .tgr, sniffed by magic), print its stats
//!   store ls             list the artifact store's entries
//!   store verify         checksum-walk every entry, report corruption
//!   store gc --max-bytes N  evict least-recently-used entries over N
//!   trace export [PATH]  convert a trace JSONL log to Chrome trace JSON
//!   check [--suite NAME] [--cases N] [--seed S] [--json]
//!                        run the registered invariant suites
//!                        (crates/check): differential oracles for the
//!                        kernels, threading, codec, degree sequences,
//!                        store/ledger, trace spans, and hierarchy
//!                        baseline. --json archives the structured
//!                        report as out/check-report.json. On a
//!                        violation, prints a one-line
//!                        TOPOGEN_CHECK=suite:invariant:seed repro;
//!                        exporting that env var replays exactly the
//!                        recorded case.
//!   perf-gate [--baseline DIR] [--current DIR] [--tolerance PCT]
//!                        compare the current run's BENCH_*.json op
//!                        counters against committed baselines
//!                        (ci/perf-baselines); fail on >PCT% regression
//!                        (default 5%), wall-clock advisory-only
//!   serve --addr HOST:PORT  run the topology-metrics daemon: POST
//!                        /measure with a schema_version=1 JSON request
//!                        (topology + seed + scale + metric set), bounded
//!                        worker pool with 429 backpressure, per-request
//!                        deadlines, store-backed repeat queries, NDJSON
//!                        progress streaming, JSONL request ledger;
//!                        SIGTERM/SIGINT drain gracefully under
//!                        --drain-deadline SECS and print a summary;
//!                        --self-test boots one and probes it end to end;
//!                        --chaos-soak [--requests N] hammers one under
//!                        an armed I/O fault matrix and asserts no
//!                        deadlock, no worker loss, no corruption
//!   measure FILE|-       answer one measure request on stdout (the
//!                        daemon's byte-identical batch twin)
//!   all                  everything above (except load-measured/store/
//!                        trace/serve/measure)
//! ```

use std::io::Write as _;
use std::time::Duration;
use topogen_bench::experiments as exp;
use topogen_bench::runner::{self, RunnerOptions, Unit, UnitError};
use topogen_bench::serve;
use topogen_bench::{tracefmt, ExitCode, ExpCtx};
use topogen_core::report::{render_figure, FigureData, TableData, TimingReport};
use topogen_core::zoo::Scale;
use topogen_metrics::tolerance::Removal;
use topogen_par::trace;

/// The `all` suite, in execution order.
const ALL_UNITS: [&str; 22] = [
    "tab1",
    "tab-signature",
    "tab-hierarchy",
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "bgp-vs-policy",
    "robustness-snapshots",
    "robustness-incompleteness",
    "ablation-ts",
    "ablation-extremes",
    "ablation-distortion",
];

struct Output {
    json_dir: Option<String>,
    timings: bool,
    strict_checks: bool,
    /// Degraded components noted while rendering this unit's artifacts;
    /// drained at the end of `run_cmd` to fail the unit (the outputs are
    /// still printed and archived with their `n/a (failed)` cells).
    degraded: std::sync::Mutex<Vec<String>>,
    /// Trace position at the start of the current unit attempt; spans
    /// recorded past it are rolled up into that unit's `--timings`
    /// report. `None` when tracing is off.
    trace_mark: std::sync::Mutex<Option<trace::Mark>>,
}

impl Clone for Output {
    fn clone(&self) -> Self {
        Output {
            json_dir: self.json_dir.clone(),
            timings: self.timings,
            strict_checks: self.strict_checks,
            degraded: std::sync::Mutex::new(Vec::new()),
            trace_mark: std::sync::Mutex::new(None),
        }
    }
}

impl Output {
    fn note_degraded(&self, id: &str, failures: &[topogen_core::report::Degradation]) {
        if failures.is_empty() {
            return;
        }
        let mut held = self.degraded.lock().unwrap_or_else(|p| p.into_inner());
        for f in failures {
            held.push(format!("{id}/{}: {}", f.label, f.reason));
        }
    }

    fn take_degraded(&self) -> Vec<String> {
        std::mem::take(&mut *self.degraded.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Remember where the trace buffer stands right now, so this unit's
    /// `--timings` report can roll up just the spans it records.
    fn mark_trace(&self) {
        let mark = trace::active().map(|sink| sink.mark());
        *self.trace_mark.lock().unwrap_or_else(|p| p.into_inner()) = mark;
    }

    fn table(&self, t: &TableData) {
        println!("== {} ==", t.id);
        println!("{}", t.render());
        self.note_degraded(&t.id, &t.failures);
        self.dump(&t.id, serde_json::to_string_pretty(t).unwrap());
    }

    fn figure(&self, f: &FigureData) {
        println!("== {} ==", f.id);
        println!("{}", render_figure(f));
        self.note_degraded(&f.id, &f.failures);
        self.dump(&f.id, serde_json::to_string_pretty(f).unwrap());
    }

    /// Print (and archive as `BENCH_<id>.json`) an experiment's merged
    /// engine instrumentation when `--timings` was given.
    fn timing_report(&self, id: &str, r: &TimingReport) {
        if !self.timings {
            return;
        }
        let mut r = r.clone();
        if let Some(sink) = trace::active() {
            if let Some(mark) = &*self.trace_mark.lock().unwrap_or_else(|p| p.into_inner()) {
                r.add_span_rollups(&sink.rollup_since(mark));
            }
        }
        println!("== {id} timings ==");
        print!("{}", r.render());
        self.dump(
            &format!("BENCH_{id}"),
            serde_json::to_string_pretty(&r).unwrap(),
        );
    }

    fn dump(&self, id: &str, json: String) {
        if let Some(dir) = &self.json_dir {
            let path = format!("{dir}/{id}.json");
            match std::fs::File::create(&path) {
                Ok(mut f) => {
                    let _ = f.write_all(json.as_bytes());
                }
                Err(e) => eprintln!("warning: cannot write {path}: {e}"),
            }
        }
    }
}

/// Parse a byte count with an optional binary K/M/G suffix ("65536",
/// "64K", "256M", "2G").
fn parse_byte_count(s: &str) -> Option<u64> {
    let (num, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1u64 << 10),
        b'M' | b'm' => (&s[..s.len() - 1], 1u64 << 20),
        b'G' | b'g' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok()?.checked_mul(mult)
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment> [--scale small|paper|large|xl] [--seed N] [--thorough] \
         [--json DIR] [--timings] [--kernel auto|scalar|bitset] [--mem-budget BYTES] \
         [--keep-going] [--resume] [--deadline SECS] [--retries N] [--strict-checks] \
         [--cache[=DIR]] [--trace[=DIR]]"
    );
    eprintln!("       repro store <ls|verify|gc> [--cache[=DIR]] [--max-bytes N]");
    eprintln!("       repro trace export [PATH] [--trace[=DIR]]");
    eprintln!("       repro check [--suite NAME] [--cases N] [--seed S] [--json]");
    eprintln!("       repro perf-gate [--baseline DIR] [--current DIR] [--tolerance PCT]");
    eprintln!(
        "       repro serve --addr HOST:PORT [--workers N] [--queue N] [--cache[=DIR]] \
         [--deadline SECS] [--drain-deadline SECS] [--ledger PATH] [--timings] \
         [--self-test] [--chaos-soak [--requests N]]"
    );
    eprintln!("       repro measure FILE|-");
    eprintln!("run `repro list` for the experiment index");
    ExitCode::Usage.exit();
}

fn main() {
    topogen_par::faults::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    // The daemon and one-shot measure modes have their own flag sets;
    // dispatch before the batch parser can trip over them.
    match args.first().map(String::as_str) {
        Some("serve") => run_serve_cmd(&args[1..]).exit(),
        Some("measure") => run_measure_cmd(&args[1..]).exit(),
        Some("check") => run_check_cmd(&args[1..]).exit(),
        Some("perf-gate") => topogen_bench::perfgate::run_cli(&args[1..]).exit(),
        _ => {}
    }
    let mut ctx = ExpCtx::default();
    let mut json_dir = None;
    let mut timings = false;
    let mut strict_checks = false;
    let mut cache_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut max_bytes: Option<u64> = None;
    let mut opts = RunnerOptions::default();
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timings" => timings = true,
            "--cache" => cache_dir = Some("out/store".to_string()),
            other if other.starts_with("--cache=") => {
                let dir = &other["--cache=".len()..];
                if dir.is_empty() {
                    eprintln!("--cache= needs a directory");
                    usage();
                }
                cache_dir = Some(dir.to_string());
            }
            "--trace" => trace_dir = Some("out/trace".to_string()),
            other if other.starts_with("--trace=") => {
                let dir = &other["--trace=".len()..];
                if dir.is_empty() {
                    eprintln!("--trace= needs a directory");
                    usage();
                }
                trace_dir = Some(dir.to_string());
            }
            "--max-bytes" => {
                max_bytes = Some(
                    it.next()
                        .expect("--max-bytes needs a byte count")
                        .parse()
                        .expect("max-bytes must be u64"),
                );
            }
            "--keep-going" => opts.keep_going = true,
            "--resume" => opts.resume = true,
            "--strict-checks" => strict_checks = true,
            "--deadline" => {
                let secs: f64 = it
                    .next()
                    .expect("--deadline needs seconds")
                    .parse()
                    .expect("deadline must be a number of seconds");
                opts.deadline = Some(Duration::from_secs_f64(secs));
            }
            "--retries" => {
                opts.retries = it
                    .next()
                    .expect("--retries needs a count")
                    .parse()
                    .expect("retries must be an integer");
            }
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                ctx.scale = match v.as_str() {
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    "large" => Scale::Large,
                    "xl" => Scale::Xl,
                    other => panic!("unknown scale {other:?}"),
                };
            }
            "--kernel" => {
                let v = it.next().expect("--kernel needs auto|scalar|bitset");
                match topogen_graph::bfs_bitset::KernelPolicy::parse(&v) {
                    // Set process-wide so every RunCtx (batch units,
                    // ambient snapshots) observes the same choice.
                    Some(p) => topogen_graph::bfs_bitset::set_default_policy(p),
                    None => {
                        eprintln!("unknown kernel {v:?} (want auto|scalar|bitset)");
                        usage();
                    }
                }
            }
            "--mem-budget" => {
                let v = it
                    .next()
                    .expect("--mem-budget needs BYTES (K/M/G suffixes ok)");
                match parse_byte_count(&v) {
                    // Set process-wide so every RunCtx (batch units,
                    // ambient snapshots) routes streaming-capable
                    // builds through the bounded builder.
                    Some(b) if b > 0 => topogen_graph::stream::set_default_budget(Some(b)),
                    _ => {
                        eprintln!("bad --mem-budget {v:?} (want BYTES, e.g. 64M)");
                        usage();
                    }
                }
            }
            "--seed" => {
                ctx.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be u64");
            }
            "--thorough" => ctx.quick = false,
            "--json" => {
                let dir = it.next().expect("--json needs a directory");
                std::fs::create_dir_all(&dir).expect("create json dir");
                json_dir = Some(dir);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
            other => positional.push(other.to_string()),
        }
    }
    let cmd = match positional.first() {
        Some(c) => c.clone(),
        None => usage(),
    };
    let arg = positional.get(1).cloned();
    if positional.len() > 2 && cmd != "trace" {
        eprintln!("unexpected argument {:?}", positional[2]);
        usage();
    }

    if cmd == "store" {
        run_store_cmd(
            arg.as_deref(),
            cache_dir.as_deref().unwrap_or("out/store"),
            max_bytes,
        )
        .exit();
    }
    if cmd == "trace" {
        if positional.len() > 3 {
            eprintln!("unexpected argument {:?}", positional[3]);
            usage();
        }
        run_trace_cmd(
            arg.as_deref(),
            positional.get(2).map(|s| s.as_str()),
            trace_dir.as_deref().unwrap_or("out/trace"),
        )
        .exit();
    }
    if max_bytes.is_some() {
        eprintln!("--max-bytes only applies to `repro store gc`");
        usage();
    }

    // Install the ambient artifact store. Faulted runs never cache:
    // an injected panic mid-build must not leave a plausible-looking
    // entry behind for clean runs to consume.
    let mut _ambient_store = None;
    if let Some(dir) = &cache_dir {
        if topogen_par::faults::active() {
            eprintln!("warning: TOPOGEN_FAULTS active; --cache disabled for this run");
        } else {
            match topogen_store::Store::open(dir) {
                Ok(store) => {
                    // Held for the remainder of main: the batch CLI is
                    // the process, so process-lifetime scoping is right.
                    _ambient_store = Some(topogen_store::ambient::install(Some(
                        std::sync::Arc::new(store),
                    )));
                    opts.store = Some(runner::StoreInfo {
                        path: dir.clone(),
                        codec_version: topogen_store::codec::CODEC_VERSION as u64,
                    });
                }
                Err(e) => {
                    eprintln!("cannot open store at {dir}: {e}");
                    ExitCode::Usage.exit();
                }
            }
        }
    }
    // Install the trace sink. Recording is append-only and off the
    // result path: experiment outputs are byte-identical either way.
    let trace_sink = trace_dir.as_ref().map(|_| {
        let sink = std::sync::Arc::new(trace::TraceSink::new());
        trace::install(Some(sink.clone()));
        sink
    });
    let out = Output {
        json_dir,
        timings,
        strict_checks,
        degraded: std::sync::Mutex::new(Vec::new()),
        trace_mark: std::sync::Mutex::new(None),
    };

    if cmd == "list" {
        println!("tab1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11");
        println!("fig12 fig13 fig14 fig15 tab-signature tab-hierarchy");
        println!("bgp-vs-policy robustness-snapshots robustness-incompleteness");
        println!("ablation-ts ablation-extremes ablation-distortion");
        println!("load-measured store trace check perf-gate all");
        return;
    }
    if cmd == "load-measured" && arg.is_none() {
        eprintln!("load-measured needs a PATH argument");
        usage();
    }
    if let Some(extra) = arg.as_deref().filter(|_| cmd != "load-measured") {
        eprintln!("unexpected argument {extra:?}");
        usage();
    }
    let known = cmd == "all"
        || cmd == "load-measured"
        || cmd == "fig4"
        || ALL_UNITS.contains(&cmd.as_str());
    if !known {
        eprintln!("unknown experiment {cmd:?}; run `repro list`");
        ExitCode::Usage.exit();
    }

    // Suppress the expected control-flow panic chatter (deadline
    // cancellations, injected faults); genuine panics still print.
    runner::quiet_expected_panics();

    let scale_label = match ctx.scale {
        Scale::Small => "small",
        Scale::Paper => "paper",
        Scale::Large => "large",
        Scale::Xl => "xl",
    };
    let unit_for = |id: &str| -> Unit {
        let id_owned = id.to_string();
        let out = out.clone();
        let arg = arg.clone();
        let base = ctx;
        Unit::new(id, move |attempt| {
            let mut c = base;
            c.seed = runner::reseed(base.seed, attempt);
            run_cmd(&id_owned, arg.as_deref(), &c, &out)
        })
    };

    let units: Vec<Unit> = if cmd == "all" {
        opts.ledger_path
            .get_or_insert_with(|| "out/run-ledger.json".to_string());
        ALL_UNITS.iter().map(|c| unit_for(c)).collect()
    } else {
        vec![unit_for(&cmd)]
    };

    let report = runner::run_units(&units, &opts, ctx.seed, scale_label);
    if let (Some(sink), Some(dir)) = (&trace_sink, &trace_dir) {
        match flush_trace(sink, dir, &cmd, ctx.seed) {
            Ok((path, events)) => eprintln!(">>> trace: {events} event(s) at {path}"),
            Err(e) => eprintln!("warning: cannot write trace log: {e}"),
        }
    }
    if let Some(c) = topogen_store::ambient::counters() {
        if !c.is_zero() {
            eprintln!(
                ">>> store-cache: {} hit(s), {} miss(es), {}B read, {}B written{}",
                c.hits,
                c.misses,
                c.bytes_read,
                c.bytes_written,
                if c.corrupt > 0 {
                    format!(", {} corrupt entr(ies) recomputed", c.corrupt)
                } else {
                    String::new()
                },
            );
        }
    }
    if cmd == "all" {
        let done = report
            .ledger
            .units
            .iter()
            .filter(|u| u.status.completed())
            .count();
        eprintln!(
            ">>> suite: {done}/{} units completed ({} executed, ledger at {})",
            report.ledger.units.len(),
            report.executed.len(),
            opts.ledger_path.as_deref().unwrap_or("-"),
        );
    }
    report.exit_code.exit();
}

/// Append the sink's recorded events to `<dir>/<cmd>-seed<seed>.jsonl`.
/// Returns the path and the number of events written.
fn flush_trace(
    sink: &trace::TraceSink,
    dir: &str,
    cmd: &str,
    seed: u64,
) -> std::io::Result<(String, usize)> {
    std::fs::create_dir_all(dir)?;
    let path = format!("{dir}/{cmd}-seed{seed}.jsonl");
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    let events = sink.write_jsonl(&mut file)?;
    file.sync_all()?;
    Ok((path, events))
}

/// `repro trace export [PATH]` — convert a trace JSONL log (default:
/// the newest `.jsonl` under the trace dir) to Chrome trace-event JSON
/// written next to it as `<stem>.trace.json`.
fn run_trace_cmd(sub: Option<&str>, path: Option<&str>, dir: &str) -> ExitCode {
    if sub != Some("export") {
        eprintln!(
            "trace needs the subcommand `export [PATH]`{}",
            sub.map(|s| format!(" (got {s:?})")).unwrap_or_default()
        );
        return ExitCode::Usage;
    }
    let src = match path {
        Some(p) => std::path::PathBuf::from(p),
        None => match newest_jsonl(dir) {
            Some(p) => p,
            None => {
                eprintln!("no .jsonl trace logs under {dir}; run with --trace first");
                return ExitCode::Failures;
            }
        },
    };
    let text = match std::fs::read_to_string(&src) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", src.display());
            return ExitCode::Failures;
        }
    };
    let events = match tracefmt::parse_jsonl(&text) {
        Ok(evs) => evs,
        Err(e) => {
            eprintln!("{}: {e}", src.display());
            return ExitCode::Failures;
        }
    };
    let json = tracefmt::chrome_trace(&events);
    let dst = src.with_extension("trace.json");
    if let Err(e) = std::fs::write(&dst, json) {
        eprintln!("cannot write {}: {e}", dst.display());
        return ExitCode::Failures;
    }
    println!(
        "exported {} event(s): {} -> {} (open in chrome://tracing or ui.perfetto.dev)",
        events.len(),
        src.display(),
        dst.display()
    );
    ExitCode::Clean
}

/// The most recently modified `.jsonl` file directly under `dir`.
fn newest_jsonl(dir: &str) -> Option<std::path::PathBuf> {
    let mut best: Option<(std::time::SystemTime, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        let Ok(modified) = entry.metadata().and_then(|m| m.modified()) else {
            continue;
        };
        if best.as_ref().is_none_or(|(t, _)| modified > *t) {
            best = Some((modified, path));
        }
    }
    best.map(|(_, p)| p)
}

/// `repro store <ls|verify|gc>` — inspect and maintain the artifact
/// store without running any experiment.
fn run_store_cmd(sub: Option<&str>, dir: &str, max_bytes: Option<u64>) -> ExitCode {
    let store = match topogen_store::Store::open(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open store at {dir}: {e}");
            return ExitCode::Usage;
        }
    };
    match sub {
        Some("ls") => {
            let entries = store.ls();
            let total: u64 = entries.iter().map(|e| e.bytes).sum();
            for e in &entries {
                println!(
                    "{}  {:>10}  {}",
                    e.hash,
                    e.bytes,
                    e.key.as_deref().unwrap_or("-")
                );
            }
            println!("{} entr(ies), {total} bytes at {dir}", entries.len());
            ExitCode::Clean
        }
        Some("verify") => {
            let report = store.verify();
            for (rel, err) in &report.corrupt {
                eprintln!("corrupt: {rel}: {err}");
            }
            println!(
                "verified {} entr(ies) at {dir}: {} ok, {} corrupt",
                report.ok + report.corrupt.len(),
                report.ok,
                report.corrupt.len()
            );
            if report.corrupt.is_empty() {
                ExitCode::Clean
            } else {
                ExitCode::Failures
            }
        }
        Some("gc") => {
            let Some(limit) = max_bytes else {
                eprintln!("store gc needs --max-bytes N");
                return ExitCode::Usage;
            };
            let report = store.gc(limit);
            println!(
                "evicted {} entr(ies) ({} bytes); kept {} ({} bytes) under {limit} at {dir}",
                report.evicted.len(),
                report.bytes_freed,
                report.kept,
                report.bytes_kept
            );
            ExitCode::Clean
        }
        other => {
            eprintln!(
                "store needs a subcommand ls|verify|gc{}",
                other.map(|o| format!(" (got {o:?})")).unwrap_or_default()
            );
            ExitCode::Usage
        }
    }
}

/// `repro serve`: run (or self-test) the topology-metrics daemon.
/// Process-level shutdown signals for the foreground daemon. `std` has
/// no signal API, so this registers handlers through libc's `signal`
/// (always linked on unix) — the handler only flips an atomic, which is
/// async-signal-safe; the foreground loop does the actual drain.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

fn run_serve_cmd(args: &[String]) -> ExitCode {
    let mut config = serve::ServeConfig::new("127.0.0.1:7878");
    let mut cache_dir: Option<String> = None;
    let mut self_test = false;
    let mut chaos_soak = false;
    let mut soak_requests = 96usize;
    let mut drain_deadline = Duration::from_secs(30);
    let mut timings = false;
    let mut ledger_given = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                config.addr = it.next().expect("--addr needs HOST:PORT").clone();
            }
            "--workers" => {
                config.workers = it
                    .next()
                    .expect("--workers needs a count")
                    .parse()
                    .expect("workers must be a positive integer");
                if config.workers == 0 {
                    eprintln!("--workers must be at least 1");
                    return ExitCode::Usage;
                }
            }
            "--queue" => {
                config.queue = it
                    .next()
                    .expect("--queue needs a count")
                    .parse()
                    .expect("queue must be an integer");
            }
            "--ledger" => {
                config.ledger_path = it.next().expect("--ledger needs a path").into();
                ledger_given = true;
            }
            "--deadline" => {
                let secs: f64 = it
                    .next()
                    .expect("--deadline needs seconds")
                    .parse()
                    .expect("deadline must be a number of seconds");
                config.default_deadline = Some(Duration::from_secs_f64(secs));
            }
            "--drain-deadline" => {
                let secs: f64 = it
                    .next()
                    .expect("--drain-deadline needs seconds")
                    .parse()
                    .expect("drain deadline must be a number of seconds");
                if secs <= 0.0 || secs.is_nan() {
                    eprintln!("--drain-deadline must be positive");
                    return ExitCode::Usage;
                }
                drain_deadline = Duration::from_secs_f64(secs);
            }
            "--requests" => {
                soak_requests = it
                    .next()
                    .expect("--requests needs a count")
                    .parse()
                    .expect("requests must be an integer");
            }
            "--timings" => timings = true,
            "--chaos-soak" => chaos_soak = true,
            "--cache" => cache_dir = Some("out/store".to_string()),
            other if other.starts_with("--cache=") => {
                let dir = &other["--cache=".len()..];
                if dir.is_empty() {
                    eprintln!("--cache= needs a directory");
                    return ExitCode::Usage;
                }
                cache_dir = Some(dir.to_string());
            }
            "--self-test" => self_test = true,
            other => {
                eprintln!("unknown serve flag {other:?}");
                return ExitCode::Usage;
            }
        }
    }
    if chaos_soak {
        // The soak brings its own scratch store and daemon; only the
        // ledger location is honored (so CI can keep it as an artifact).
        return serve::chaos_soak(
            soak_requests,
            ledger_given.then(|| config.ledger_path.clone()),
        );
    }
    if let Some(dir) = &cache_dir {
        match topogen_store::Store::open(dir) {
            Ok(store) => config.store = Some(std::sync::Arc::new(store)),
            Err(e) => {
                eprintln!("cannot open store at {dir}: {e}");
                return ExitCode::Usage;
            }
        }
    }
    if self_test {
        return serve::daemon::self_test(config);
    }
    let ledger = config.ledger_path.display().to_string();
    match serve::serve(config) {
        Ok(mut handle) => {
            println!("serving on http://{} (ledger: {ledger})", handle.addr());
            println!(
                "POST /measure with a schema_version={} document; GET /healthz to probe",
                serve::WIRE_VERSION
            );
            if timings {
                println!(
                    "timings: ledger recovered_lines={} (damaged lines skipped at open)",
                    handle.recovered_lines()
                );
            }
            // Serve until SIGTERM/SIGINT, then drain: stop accepting,
            // finish in-flight work within the drain deadline, cancel
            // stragglers, flush the ledger, and report.
            sig::install();
            while !sig::requested() {
                std::thread::sleep(Duration::from_millis(50));
            }
            eprintln!(
                "serve: shutdown signal received; draining (deadline {:.0}s)",
                drain_deadline.as_secs_f64()
            );
            let summary = handle.drain(drain_deadline);
            println!("{summary}");
            ExitCode::Clean
        }
        Err(e) => {
            eprintln!("cannot serve: {e}");
            ExitCode::Usage
        }
    }
}

/// `repro check`: run the registered invariant suites (crates/check)
/// against their independent oracles and report every violation with a
/// replayable `TOPOGEN_CHECK=suite:invariant:seed` line. Exporting that
/// env var makes the next `repro check` replay exactly the recorded
/// case (with whatever `TOPOGEN_FAULTS` the original run had, if any,
/// re-armed by the caller).
fn run_check_cmd(args: &[String]) -> ExitCode {
    let mut opts = topogen_check::CheckOptions::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--suite" => match it.next() {
                Some(name) => opts.suite = Some(name.clone()),
                None => {
                    eprintln!("--suite needs a suite name");
                    return ExitCode::Usage;
                }
            },
            "--cases" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.cases = n,
                _ => {
                    eprintln!("--cases needs a positive integer");
                    return ExitCode::Usage;
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.seed = s,
                None => {
                    eprintln!("--seed needs a u64");
                    return ExitCode::Usage;
                }
            },
            "--json" => json = true,
            other => {
                eprintln!("unknown check flag {other:?}");
                return ExitCode::Usage;
            }
        }
    }
    if let Ok(line) = std::env::var("TOPOGEN_CHECK") {
        match topogen_check::ReplaySpec::parse(&line) {
            Ok(spec) => {
                eprintln!(">>> replaying TOPOGEN_CHECK={}", spec.render());
                opts.replay = Some(spec);
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::Usage;
            }
        }
    }
    let report = match topogen_check::run_checks(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::Usage;
        }
    };
    if report.faults_armed {
        eprintln!(">>> TOPOGEN_FAULTS armed: violations below may be injected");
    }
    for s in &report.suites {
        for inv in &s.invariants {
            let status = if inv.failures.is_empty() {
                "ok"
            } else {
                "FAIL"
            };
            println!(
                "{status:>4}  {}:{}  ({} case(s))",
                s.suite, inv.invariant, inv.cases_run
            );
        }
    }
    for (suite, inv, f) in report.failures() {
        eprintln!(
            "FAIL {suite}:{} case seed {}: {}",
            inv.invariant, f.case_seed, f.detail
        );
        eprintln!("     shrink: {}", f.shrink_hint);
        eprintln!("     repro:  {}", f.repro);
    }
    println!(
        "check: {} suite(s), {} case(s), {} violation(s)",
        report.suites.len(),
        report.cases_run(),
        report.failure_count()
    );
    if json {
        let path = "out/check-report.json";
        let body = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(e) = std::fs::create_dir_all("out").and_then(|()| std::fs::write(path, body)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::Failures;
        }
        eprintln!(">>> report: {path}");
    }
    if report.ok() {
        ExitCode::Clean
    } else {
        ExitCode::Failures
    }
}

/// `repro measure FILE|-`: execute one measure request inline and print
/// the exact response body the daemon would serve for it.
fn run_measure_cmd(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("measure needs exactly one argument: FILE or `-` for stdin");
        return ExitCode::Usage;
    };
    let text = if path == "-" {
        let mut buf = String::new();
        match std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("cannot read stdin: {e}");
                return ExitCode::LoadError;
            }
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::LoadError;
            }
        }
    };
    let req = match serve::MeasureRequest::from_json(&text) {
        Ok(req) => req,
        Err(e) => {
            eprintln!("bad request: {e}");
            return ExitCode::Usage;
        }
    };
    runner::quiet_expected_panics();
    let body = serve::run_measure(&topogen_core::ctx::RunCtx::new(), &req).body();
    print!("{body}");
    ExitCode::Clean
}

fn run_cmd(cmd: &str, arg: Option<&str>, ctx: &ExpCtx, out: &Output) -> Result<(), UnitError> {
    if ALL_UNITS.contains(&cmd) || cmd == "fig4" {
        eprintln!(">>> {cmd}");
    }
    let _ = out.take_degraded(); // drop leftovers from an aborted attempt
    out.mark_trace();
    match cmd {
        "tab1" => out.table(&exp::tab1::run(ctx)),
        "fig2" => {
            for panel in ["canonical", "measured", "generated", "degree-based"] {
                for metric in exp::fig2::Metric::all() {
                    out.figure(&exp::fig2::run(ctx, panel, metric));
                }
            }
            println!("# qualitative checks (paper §4.1–4.3):");
            let mut failed = Vec::new();
            for (claim, holds) in exp::fig2::qualitative_checks(ctx) {
                println!("#   [{}] {}", if holds { "PASS" } else { "FAIL" }, claim);
                if !holds {
                    failed.push(claim);
                }
            }
            if out.strict_checks && !failed.is_empty() {
                return Err(UnitError::Failed(format!(
                    "{} qualitative check(s) failed: {}",
                    failed.len(),
                    failed.join("; ")
                )));
            }
        }
        "fig3" | "fig4" => out.figure(&exp::fig3::run(ctx)),
        "fig5" => out.table(&exp::fig5::run(ctx)),
        "fig6" => out.figure(&exp::fig6::run(ctx)),
        "fig7" => {
            out.figure(&exp::fig7::run_eigen(ctx));
            out.figure(&exp::fig7::run_diameter(ctx));
        }
        "fig8" => {
            out.figure(&exp::fig8::run_cover(ctx));
            out.figure(&exp::fig8::run_bicon(ctx));
        }
        "fig9" => {
            out.figure(&exp::fig9::run(ctx, Removal::Attack));
            out.figure(&exp::fig9::run(ctx, Removal::Error));
        }
        "fig10" => {
            out.figure(&exp::fig10::run(ctx));
            out.table(&exp::fig10::whole_graph_table(ctx));
        }
        "fig11" => out.table(&exp::fig11::run(ctx)),
        "fig12" => {
            let (ccdf, figs) = exp::fig12::run(ctx);
            out.figure(&ccdf);
            for f in figs {
                out.figure(&f);
            }
        }
        "fig13" => out.table(&exp::fig12::run_modified(ctx)),
        "fig14" => out.figure(&exp::fig3::run_variants(ctx)),
        "fig15" => {
            out.table(&exp::fig15::run(ctx));
            out.table(&exp::fig15::run_overlay(ctx));
        }
        "tab-signature" => {
            let (table, timings) = exp::signatures::run_signature_table_timed(ctx);
            out.table(&table);
            out.timing_report(&table.id, &timings);
        }
        "tab-hierarchy" => {
            let (table, timings) = exp::signatures::run_hierarchy_table_timed(ctx);
            out.table(&table);
            out.timing_report(&table.id, &timings);
        }
        "bgp-vs-policy" => out.table(&exp::bgp::run(ctx)),
        "robustness-snapshots" => out.table(&exp::robustness::run_snapshots(ctx)),
        "robustness-incompleteness" => out.table(&exp::robustness::run_incompleteness(ctx)),
        "ablation-ts" => out.table(&exp::ablations::run_ts_redundancy(ctx)),
        "ablation-extremes" => out.table(&exp::ablations::run_extremes(ctx)),
        "ablation-distortion" => out.table(&exp::ablations::run_distortion_polish(ctx)),
        "load-measured" => {
            let path = arg.expect("validated in main");
            let m = topogen_measured::load_measured(path)
                .map_err(|e| UnitError::Load(e.to_string()))?;
            let table = TableData::new(
                "load-measured",
                vec!["Graph".into(), "Quantity".into(), "Value".into()],
                vec![
                    vec![m.name.clone(), "raw nodes".into(), m.raw_nodes.to_string()],
                    vec![m.name.clone(), "raw edges".into(), m.raw_edges.to_string()],
                    vec![
                        m.name.clone(),
                        "giant component nodes".into(),
                        m.graph.node_count().to_string(),
                    ],
                    vec![
                        m.name.clone(),
                        "giant component edges".into(),
                        m.graph.edge_count().to_string(),
                    ],
                    vec![
                        m.name.clone(),
                        "avg degree".into(),
                        format!("{:.2}", m.avg_degree()),
                    ],
                ],
            );
            out.table(&table);
        }
        other => {
            // Unknown ids are rejected in main; reaching this is a bug.
            return Err(UnitError::Failed(format!("unknown experiment {other:?}")));
        }
    }
    // Degraded components fail the unit (the artifacts above were still
    // printed and archived); a reseeded retry may recover stochastic
    // failures, and `--resume` re-runs exactly these units.
    let degraded = out.take_degraded();
    if !degraded.is_empty() {
        return Err(UnitError::Failed(format!(
            "{} degraded component(s): {}",
            degraded.len(),
            degraded.join("; ")
        )));
    }
    Ok(())
}
