//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale small|paper] [--seed N] [--thorough] [--json DIR] [--timings]
//!
//! --timings prints the parallel engines' instrumentation — shared-ball
//! counters (traversals, cache hits) for the metric suite, hierarchy
//! counters (DAG states, pairs accumulated, arena bytes) for the
//! link-value stage, per-phase wall times for both — and with --json
//! also archives it as BENCH_<id>.json.
//!
//! experiments:
//!   tab1                 Figure 1: the topology table
//!   fig2                 Figure 2: expansion/resilience/distortion, all panels
//!   fig3|fig4            Figures 3/4: link-value rank distributions
//!   fig5                 Figure 5: link-value ↔ degree correlations
//!   fig6                 Appendix A: degree CCDFs
//!   fig7                 Appendix B: eigenvalues + eccentricity
//!   fig8                 Appendix B: vertex cover + biconnectivity
//!   fig9                 Appendix B: attack + error tolerance
//!   fig10                clustering coefficient curves + global table
//!   fig11                Appendix C: parameter exploration
//!   fig12                Appendix D: degree-based variants
//!   fig13                Appendix D: Modified B-A/Brite + deterministic wiring
//!   fig14                Appendix D.2: variant link values
//!   fig15                Appendix E: policy-ball example + router overlay
//!   tab-signature        §4.4: the L/H signature table
//!   tab-hierarchy        §5.1: the strict/moderate/loose table
//!   bgp-vs-policy        Gao–Rexford BGP vs the paper's shortest-valley-free model
//!   robustness-snapshots     §3.1.1: stability across snapshots/sizes
//!   robustness-incompleteness §3.1.1: vantage/loss incompleteness
//!   ablation-ts          footnote 17: TS redundancy trade-off
//!   ablation-extremes    §4.4: extreme parameter regimes
//!   ablation-distortion  spanning-tree local-search quality
//!   all                  everything above
//! ```

use std::io::Write as _;
use topogen_bench::experiments as exp;
use topogen_bench::ExpCtx;
use topogen_core::report::{render_figure, FigureData, TableData, TimingReport};
use topogen_core::zoo::Scale;
use topogen_metrics::tolerance::Removal;

struct Output {
    json_dir: Option<String>,
    timings: bool,
}

impl Output {
    fn table(&self, t: &TableData) {
        println!("== {} ==", t.id);
        println!("{}", t.render());
        self.dump(&t.id, serde_json::to_string_pretty(t).unwrap());
    }

    fn figure(&self, f: &FigureData) {
        println!("== {} ==", f.id);
        println!("{}", render_figure(f));
        self.dump(&f.id, serde_json::to_string_pretty(f).unwrap());
    }

    /// Print (and archive as `BENCH_<id>.json`) an experiment's merged
    /// engine instrumentation when `--timings` was given.
    fn timing_report(&self, id: &str, r: &TimingReport) {
        if !self.timings {
            return;
        }
        println!("== {id} timings ==");
        print!("{}", r.render());
        self.dump(
            &format!("BENCH_{id}"),
            serde_json::to_string_pretty(r).unwrap(),
        );
    }

    fn dump(&self, id: &str, json: String) {
        if let Some(dir) = &self.json_dir {
            let path = format!("{dir}/{id}.json");
            match std::fs::File::create(&path) {
                Ok(mut f) => {
                    let _ = f.write_all(json.as_bytes());
                }
                Err(e) => eprintln!("warning: cannot write {path}: {e}"),
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: repro <experiment> [--scale small|paper] [--seed N] [--thorough] [--json DIR] [--timings]"
        );
        eprintln!("run `repro list` for the experiment index");
        std::process::exit(2);
    }
    let mut ctx = ExpCtx::default();
    let mut json_dir = None;
    let mut timings = false;
    let mut cmd = String::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timings" => timings = true,
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                ctx.scale = match v.as_str() {
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => panic!("unknown scale {other:?}"),
                };
            }
            "--seed" => {
                ctx.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be u64");
            }
            "--thorough" => ctx.quick = false,
            "--json" => {
                let dir = it.next().expect("--json needs a directory");
                std::fs::create_dir_all(&dir).expect("create json dir");
                json_dir = Some(dir);
            }
            other if cmd.is_empty() => cmd = other.to_string(),
            other => panic!("unexpected argument {other:?}"),
        }
    }
    let out = Output { json_dir, timings };
    run_cmd(&cmd, &ctx, &out);
}

fn run_cmd(cmd: &str, ctx: &ExpCtx, out: &Output) {
    match cmd {
        "list" => {
            println!("tab1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11");
            println!("fig12 fig13 fig14 fig15 tab-signature tab-hierarchy");
            println!("bgp-vs-policy robustness-snapshots robustness-incompleteness");
            println!("ablation-ts ablation-extremes ablation-distortion all");
        }
        "tab1" => out.table(&exp::tab1::run(ctx)),
        "fig2" => {
            for panel in ["canonical", "measured", "generated", "degree-based"] {
                for metric in exp::fig2::Metric::all() {
                    out.figure(&exp::fig2::run(ctx, panel, metric));
                }
            }
            println!("# qualitative checks (paper §4.1–4.3):");
            for (claim, holds) in exp::fig2::qualitative_checks(ctx) {
                println!("#   [{}] {}", if holds { "PASS" } else { "FAIL" }, claim);
            }
        }
        "fig3" | "fig4" => out.figure(&exp::fig3::run(ctx)),
        "fig5" => out.table(&exp::fig5::run(ctx)),
        "fig6" => out.figure(&exp::fig6::run(ctx)),
        "fig7" => {
            out.figure(&exp::fig7::run_eigen(ctx));
            out.figure(&exp::fig7::run_diameter(ctx));
        }
        "fig8" => {
            out.figure(&exp::fig8::run_cover(ctx));
            out.figure(&exp::fig8::run_bicon(ctx));
        }
        "fig9" => {
            out.figure(&exp::fig9::run(ctx, Removal::Attack));
            out.figure(&exp::fig9::run(ctx, Removal::Error));
        }
        "fig10" => {
            out.figure(&exp::fig10::run(ctx));
            out.table(&exp::fig10::whole_graph_table(ctx));
        }
        "fig11" => out.table(&exp::fig11::run(ctx)),
        "fig12" => {
            let (ccdf, figs) = exp::fig12::run(ctx);
            out.figure(&ccdf);
            for f in figs {
                out.figure(&f);
            }
        }
        "fig13" => out.table(&exp::fig12::run_modified(ctx)),
        "fig14" => out.figure(&exp::fig3::run_variants(ctx)),
        "fig15" => {
            out.table(&exp::fig15::run(ctx));
            out.table(&exp::fig15::run_overlay(ctx));
        }
        "tab-signature" => {
            let (table, timings) = exp::signatures::run_signature_table_timed(ctx);
            out.table(&table);
            out.timing_report(&table.id, &timings);
        }
        "tab-hierarchy" => {
            let (table, timings) = exp::signatures::run_hierarchy_table_timed(ctx);
            out.table(&table);
            out.timing_report(&table.id, &timings);
        }
        "bgp-vs-policy" => out.table(&exp::bgp::run(ctx)),
        "robustness-snapshots" => out.table(&exp::robustness::run_snapshots(ctx)),
        "robustness-incompleteness" => out.table(&exp::robustness::run_incompleteness(ctx)),
        "ablation-ts" => out.table(&exp::ablations::run_ts_redundancy(ctx)),
        "ablation-extremes" => out.table(&exp::ablations::run_extremes(ctx)),
        "ablation-distortion" => out.table(&exp::ablations::run_distortion_polish(ctx)),
        "all" => {
            for c in [
                "tab1",
                "tab-signature",
                "tab-hierarchy",
                "fig2",
                "fig3",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "fig13",
                "fig14",
                "fig15",
                "bgp-vs-policy",
                "robustness-snapshots",
                "robustness-incompleteness",
                "ablation-ts",
                "ablation-extremes",
                "ablation-distortion",
            ] {
                eprintln!(">>> {c}");
                run_cmd(c, ctx, out);
            }
        }
        other => {
            eprintln!("unknown experiment {other:?}; run `repro list`");
            std::process::exit(2);
        }
    }
}
