//! Property tests for the daemon's HTTP/1.1 parser: arbitrary
//! truncations, oversizings, and byte flips of otherwise-valid requests
//! must come out as a clean `400`/`413` classification — never a panic,
//! never a hang. The parser runs over a real loopback socket pair so
//! the byte-boundary behavior (spill past the header read, EOF
//! mid-body) is the production code path, not a mock.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use proptest::prelude::*;
use topogen_bench::serve::http::{
    read_request, status_for_parse_error, HttpRequest, MAX_BODY_BYTES, MAX_HEADER_BYTES,
};

/// Feed `payload` to [`read_request`] over loopback: the client writes
/// the bytes and closes, so a parser waiting for more input sees EOF,
/// not a stall. The read timeout is a backstop — a true hang fails the
/// test in seconds instead of wedging the suite.
fn parse_payload(payload: Vec<u8>) -> std::io::Result<HttpRequest> {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(&payload);
        // Drop closes the socket; the server reads EOF past the bytes.
    });
    let (mut stream, _) = listener.accept().unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let result = read_request(&mut stream);
    client.join().unwrap();
    result
}

/// A well-formed POST with `len` bytes of deterministic body.
fn valid_request(len: usize) -> Vec<u8> {
    let body: Vec<u8> = (0..len).map(|i| b'a' + (i % 26) as u8).collect();
    let mut req = format!(
        "POST /measure HTTP/1.1\r\nHost: topogen\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(&body);
    req
}

/// An `Err` from the parser must classify as 400 or 413 — nothing else
/// reaches the response writer.
fn assert_classified(e: &std::io::Error) {
    let (status, reason) = status_for_parse_error(e);
    assert!(
        status == 400 || status == 413,
        "unexpected classification {status} {reason} for: {e}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn truncated_requests_error_cleanly(len in 0usize..64, cut_frac in 0.0f64..1.0) {
        let full = valid_request(len);
        let cut = ((full.len() as f64) * cut_frac) as usize;
        // Strictly truncated (cut < full.len()), so the parser must
        // error — mid-header or mid-body depending on where the knife
        // landed — and classify clean either way.
        match parse_payload(full[..cut].to_vec()) {
            Ok(req) => prop_assert!(false, "truncated request parsed: {:?}", req.path),
            Err(e) => assert_classified(&e),
        }
    }

    #[test]
    fn byte_flipped_requests_never_panic(seed in any::<u64>(), len in 1usize..48) {
        let mut full = valid_request(len);
        let pos = (seed as usize) % full.len();
        full[pos] = (seed >> 32) as u8;
        // A flip can land anywhere: request line, header name, the
        // Content-Length digits, the terminator, the body. Whatever it
        // hits, the parser returns — Ok when the flip was harmless,
        // a classified Err otherwise. (A flip that inflates
        // Content-Length ends at EOF as "closed mid-body", not a hang.)
        match parse_payload(full) {
            Ok(_) => {}
            Err(e) => assert_classified(&e),
        }
    }

    #[test]
    fn oversized_headers_are_413(over in 1usize..2048) {
        let payload = format!(
            "GET / HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
            "j".repeat(MAX_HEADER_BYTES + over)
        );
        let e = parse_payload(payload.into_bytes()).expect_err("oversized header must be refused");
        prop_assert_eq!(status_for_parse_error(&e).0, 413, "{}", e);
    }

    #[test]
    fn oversized_declared_bodies_are_413_before_any_body_read(over in 1usize..4096) {
        // Only the declaration is oversized — no body bytes are sent,
        // and the parser must refuse up front rather than try to read
        // (or allocate) a megabyte-plus body.
        let payload = format!(
            "POST /measure HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + over
        );
        let e = parse_payload(payload.into_bytes()).expect_err("oversized body must be refused");
        prop_assert_eq!(status_for_parse_error(&e).0, 413, "{}", e);
    }

    #[test]
    fn garbage_prefixes_error_cleanly(seed in any::<u64>(), len in 1usize..256) {
        // Pure noise: bytes from a SplitMix64 stream, no HTTP at all.
        let mut state = seed;
        let payload: Vec<u8> = (0..len)
            .map(|_| {
                state = topogen_par::faults::splitmix64(state);
                state as u8
            })
            .collect();
        match parse_payload(payload) {
            // Vanishingly unlikely, but noise *could* spell a request.
            Ok(_) => {}
            Err(e) => assert_classified(&e),
        }
    }
}
