//! End-to-end tests of the fault-tolerant runner against the
//! deterministic fault-injection harness: deadline expiry through a
//! delay fault, the CI panic-smoke scenario (exactly one failed unit),
//! resume after an injected failure, and degraded table rendering.

use std::sync::Arc;
use std::time::{Duration, Instant};
use topogen_bench::experiments as exp;
use topogen_bench::runner::{run_units, RunLedger, RunnerOptions, Unit, UnitError, UnitStatus};
use topogen_bench::ExpCtx;
use topogen_core::report::FAILED_CELL;
use topogen_par::{cancel, faults};

/// A unit body imitating an engine phase: hit the fault site, then the
/// cooperative cancellation checkpoint — the same order the metrics
/// engine and hierarchy traversal use.
fn phase(site: &'static str, label: &'static str) -> Unit {
    Unit::new(label, move |_| {
        faults::inject(site, label);
        cancel::checkpoint();
        Ok(())
    })
}

#[test]
fn delay_fault_past_deadline_times_out() {
    let _guard = faults::exclusive_for_tests();
    faults::install_spec("metric:delay400:1:7").unwrap();
    let opts = RunnerOptions {
        deadline: Some(Duration::from_millis(50)),
        retries: 2,
        ..Default::default()
    };
    let started = Instant::now();
    let report = run_units(&[phase("metric", "slow-unit")], &opts, 11, "small");
    faults::clear();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timed out promptly, no hang"
    );
    let u = &report.ledger.units[0];
    assert_eq!(u.status, UnitStatus::TimedOut);
    assert_eq!(u.attempts, 1, "deadline expiry is not retried");
    assert_eq!(u.error.as_deref(), Some("deadline exceeded"));
    assert_eq!(report.exit_code, topogen_bench::ExitCode::Failures);
}

#[test]
fn unit_scoped_panic_fails_exactly_one_unit() {
    let _guard = faults::exclusive_for_tests();
    // The CI smoke scenario: a panic pinned to one suite unit via the
    // @scope matcher; every other unit must complete.
    faults::install_spec("build@unit-b:panic:1:1").unwrap();
    let units = vec![
        phase("build", "unit-a"),
        phase("build", "unit-b"),
        phase("build", "unit-c"),
    ];
    let opts = RunnerOptions {
        keep_going: true,
        retries: 0,
        ..Default::default()
    };
    let report = run_units(&units, &opts, 42, "small");
    faults::clear();
    assert_eq!(report.exit_code, topogen_bench::ExitCode::Failures);
    let failed: Vec<&str> = report
        .ledger
        .units
        .iter()
        .filter(|u| !u.status.completed())
        .map(|u| u.id.as_str())
        .collect();
    assert_eq!(failed, vec!["unit-b"], "exactly one failed unit");
    let err = report
        .ledger
        .unit("unit-b")
        .unwrap()
        .error
        .as_deref()
        .unwrap();
    assert!(err.contains("injected fault"), "{err}");
}

#[test]
fn resume_reruns_only_the_faulted_unit() {
    let _guard = faults::exclusive_for_tests();
    let dir = std::env::temp_dir().join(format!("topogen-runner-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run-ledger.json").to_string_lossy().to_string();

    faults::install_spec("build@unit-b:panic:1:1").unwrap();
    let units = vec![
        phase("build", "unit-a"),
        phase("build", "unit-b"),
        phase("build", "unit-c"),
    ];
    let opts = RunnerOptions {
        keep_going: true,
        retries: 0,
        ledger_path: Some(path.clone()),
        ..Default::default()
    };
    let r1 = run_units(&units, &opts, 42, "small");
    assert_eq!(r1.executed.len(), 3);
    assert_eq!(r1.exit_code, topogen_bench::ExitCode::Failures);

    // Faults off: --resume must re-run only unit-b and fully recover.
    faults::clear();
    let units2 = vec![
        phase("build", "unit-a"),
        phase("build", "unit-b"),
        phase("build", "unit-c"),
    ];
    let opts2 = RunnerOptions {
        resume: true,
        ..opts
    };
    let r2 = run_units(&units2, &opts2, 42, "small");
    assert_eq!(r2.executed, vec!["unit-b"], "only the failed unit re-ran");
    assert_eq!(r2.exit_code, topogen_bench::ExitCode::Clean);
    let reloaded = RunLedger::load(&path).unwrap();
    assert!(reloaded.units.iter().all(|u| u.status.completed()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retry_durations_attribute_only_the_terminal_attempt() {
    let _guard = faults::exclusive_for_tests();
    // Every attempt crosses a 300ms injected delay; the first attempt
    // then fails, the reseeded retry succeeds. The ledger's
    // `duration_secs` must cover only the terminal attempt (matching
    // what the `--timings` phase tables measure), with the failed
    // attempt's time kept apart in `duration_total_secs` — not blended.
    faults::install_spec("metric:delay300:1:5").unwrap();
    let unit = Unit::new("flaky", move |attempt| {
        faults::inject("metric", "flaky");
        cancel::checkpoint();
        if attempt == 0 {
            Err(UnitError::Failed("transient failure".into()))
        } else {
            Ok(())
        }
    });
    let opts = RunnerOptions {
        retries: 1,
        ..Default::default()
    };
    let report = run_units(&[unit], &opts, 9, "small");
    faults::clear();
    assert_eq!(report.exit_code, topogen_bench::ExitCode::Clean);
    let u = &report.ledger.units[0];
    assert_eq!(u.status, UnitStatus::Retried);
    assert_eq!(u.attempts, 2);
    let total = u
        .duration_total_secs
        .expect("retried units record the all-attempts total");
    assert!(
        u.duration_secs >= 0.25,
        "terminal attempt crossed the delay: {}",
        u.duration_secs
    );
    assert!(
        total >= u.duration_secs + 0.25,
        "total covers the failed attempt too: total {total}, terminal {}",
        u.duration_secs
    );

    // Single-attempt successes record no separate total.
    let clean = run_units(
        &[phase("metric", "clean-unit")],
        &RunnerOptions::default(),
        9,
        "small",
    );
    assert_eq!(clean.ledger.units[0].attempts, 1);
    assert_eq!(clean.ledger.units[0].duration_total_secs, None);
}

#[test]
fn build_fault_degrades_table_instead_of_aborting() {
    let _guard = faults::exclusive_for_tests();
    // Panic every Mesh build: tab1 must still produce every other row,
    // with Mesh rendered as a failed row and footnoted.
    faults::install_spec("build@Mesh:panic:1:3").unwrap();
    let table = exp::tab1::run(&ExpCtx::default());
    faults::clear();
    assert!(
        !table.failures.is_empty(),
        "the faulted topology is recorded as a failure"
    );
    assert!(table.failures.iter().any(|f| f.label == "Mesh"));
    assert!(table
        .failures
        .iter()
        .all(|f| f.reason.contains("injected fault")));
    // Other topologies still have real rows; Mesh's row is degraded.
    let random = table.rows.iter().find(|r| r[0] == "Random").unwrap();
    assert!(random[1].parse::<usize>().is_ok(), "real node count");
    let mesh = table.rows.iter().find(|r| r[0] == "Mesh").unwrap();
    assert!(mesh[1..].iter().all(|c| c == FAILED_CELL), "{mesh:?}");
    // Rendering shows the degraded cell and the footnote.
    let rendered = table.render();
    assert!(rendered.contains(FAILED_CELL), "{rendered}");
    assert!(rendered.contains("Mesh"), "{rendered}");
}

#[test]
fn fractional_rate_is_deterministic_across_runs() {
    let _guard = faults::exclusive_for_tests();
    // A 50% panic rate must fire at the same unit indices on every run:
    // run the same 8-unit suite twice and compare ledgers.
    let run_once = || {
        faults::install_spec("build:panic:0.5:99").unwrap();
        let units: Vec<Unit> = (0..8)
            .map(|i| {
                let id = format!("u{i}");
                let label: Arc<str> = Arc::from(id.as_str());
                Unit::new(id, move |_| {
                    faults::inject("build", &label);
                    Ok(())
                })
            })
            .collect();
        let opts = RunnerOptions {
            keep_going: true,
            retries: 0,
            ..Default::default()
        };
        let r = run_units(&units, &opts, 1, "small");
        faults::clear();
        r.ledger
            .units
            .iter()
            .map(|u| (u.id.clone(), u.status.completed()))
            .collect::<Vec<_>>()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "fault firing pattern is reproducible");
    assert!(a.iter().any(|(_, ok)| !ok), "some unit failed at rate 0.5");
    assert!(a.iter().any(|(_, ok)| *ok), "some unit passed at rate 0.5");
}
