//! End-to-end kernel-equivalence tests: the batched bitset BFS kernels
//! must produce byte-identical suite outputs to the scalar per-center
//! path at every scale — the bit-identity contract the archived JSONs
//! and the perf gate both lean on.

use proptest::prelude::*;
use topogen_bench::ExpCtx;
use topogen_check::gen::arb_graph;
use topogen_core::ctx::RunCtx;
use topogen_core::suite::{run_suite_in, SuiteResult};
use topogen_core::zoo::{build, Scale, TopologySpec};
use topogen_graph::NodeId;
use topogen_metrics::balls::PlainBalls;
use topogen_metrics::engine::{BallPlan, KernelPolicy, PlanResult, ResilienceMetric};

/// One metric curve as exact bit patterns: (radius, avg_size, value).
type CurveBits = Vec<(u32, u64, u64)>;

/// Bitwise fingerprint of everything an archived suite JSON contains.
fn fingerprint(r: &SuiteResult) -> (Vec<u64>, CurveBits, CurveBits, String) {
    (
        r.expansion.iter().map(|v| v.to_bits()).collect(),
        r.resilience
            .iter()
            .map(|p| (p.radius, p.avg_size.to_bits(), p.value.to_bits()))
            .collect(),
        r.distortion
            .iter()
            .map(|p| (p.radius, p.avg_size.to_bits(), p.value.to_bits()))
            .collect(),
        r.signature.to_string(),
    )
}

fn run_with(
    t: &topogen_core::zoo::BuiltTopology,
    ctx: &ExpCtx,
    policy: KernelPolicy,
) -> SuiteResult {
    let rctx = RunCtx::new().with_kernel(policy);
    run_suite_in(&rctx, t, &ctx.suite_params())
}

/// The acceptance contract of the kernel layer: at the calibration
/// scale, forcing the bitset kernels reproduces the scalar path's
/// archived curves bit-for-bit on every Figure-1 topology (seed 42).
#[test]
fn bitset_suite_matches_scalar_across_figure1_zoo_at_small() {
    let ctx = ExpCtx::default(); // small, seed 42, quick
    for spec in TopologySpec::figure1_zoo(Scale::Small) {
        let t = build(&spec, Scale::Small, ctx.seed);
        let scalar = run_with(&t, &ctx, KernelPolicy::Scalar);
        let bitset = run_with(&t, &ctx, KernelPolicy::Bitset);
        assert_eq!(
            fingerprint(&scalar),
            fingerprint(&bitset),
            "{}: bitset kernels diverged from the scalar path",
            t.name
        );
        assert_eq!(
            scalar.timings.words_scanned, 0,
            "{}: scalar path must not touch bitset counters",
            t.name
        );
        assert!(
            bitset.timings.words_scanned > 0,
            "{}: forced bitset run recorded no kernel work",
            t.name
        );
    }
}

/// The sampled-center tier: Mesh at `Scale::Large` (414 x 414 =
/// 171,396 nodes) runs the suite under Auto — which must pick the
/// bitset kernels at this size — and agree with a forced-scalar run
/// exactly. The signature is pinned so silent heuristic or budget
/// drift at the large tier shows up as a test diff, not as a quietly
/// different archive.
#[test]
fn large_scale_mesh_signature_pinned_and_kernel_identical() {
    let ctx = ExpCtx {
        scale: Scale::Large,
        seed: 42,
        quick: true,
    };
    let t = build(&TopologySpec::Mesh { side: 414 }, Scale::Large, ctx.seed);
    assert_eq!(t.graph.node_count(), 414 * 414);
    let auto = run_with(&t, &ctx, KernelPolicy::Auto);
    assert!(
        auto.timings.words_scanned > 0,
        "Auto must select the bitset kernels at 171k nodes"
    );
    let scalar = run_with(&t, &ctx, KernelPolicy::Scalar);
    assert_eq!(fingerprint(&auto), fingerprint(&scalar));
    // Not the paper-scale "LHH": at 171k nodes the sampled 40-hop
    // window sees only the locally-flat neighborhood, which reads as
    // high expansion. Pinned so tier drift is loud, not silent.
    assert_eq!(
        auto.signature.to_string(),
        "HHH",
        "large-tier Mesh signature"
    );
}

/// A plan result as exact bit patterns, for whole-plan comparison.
fn plan_bits(r: &PlanResult) -> (Vec<u64>, Vec<CurveBits>) {
    (
        r.expansion.iter().map(|v| v.to_bits()).collect(),
        r.curves
            .iter()
            .map(|c| {
                c.iter()
                    .map(|p| (p.radius, p.avg_size.to_bits(), p.value.to_bits()))
                    .collect()
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The zoo tests above pin the forced kernels; this pins the *Auto*
    /// heuristic on arbitrary (possibly disconnected) graphs from the
    /// shared `topogen-check` generators: whatever kernel Auto picks,
    /// the curves must match the forced-scalar reference bit-for-bit.
    #[test]
    fn auto_policy_matches_forced_scalar_on_arbitrary_graphs(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = g.nodes().collect();
        let metric = ResilienceMetric { restarts: 1, max_ball_nodes: 500 };
        let run = |policy: KernelPolicy| {
            BallPlan::new(&src, 6, seed)
                .ball_centers(centers.clone())
                .expansion_centers(centers.clone())
                .kernel(policy)
                .metric(&metric)
                .run()
        };
        prop_assert_eq!(
            plan_bits(&run(KernelPolicy::Auto)),
            plan_bits(&run(KernelPolicy::Scalar))
        );
    }
}
